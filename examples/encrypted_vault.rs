//! Encrypted vault: DRM-protected video on approximate storage (paper §5).
//!
//! Splits the coded video into reliability streams, encrypts each with an
//! approximation-compatible cipher mode (CTR) and a per-stream derived IV,
//! simulates storage errors **on the ciphertext**, then decrypts and
//! decodes. The paper's requirement #3 holds: errors on encrypted content
//! cost exactly as much quality as the same errors on plaintext.
//!
//! ```text
//! cargo run --release --example encrypted_vault
//! ```

use vapp_codec::{decode, Encoder, EncoderConfig};
use vapp_crypto::CipherMode;
use vapp_metrics::video_psnr;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{merge_streams, split_streams, DependencyGraph, ImportanceMap, PivotTable};

fn main() {
    let key = [0xD2u8; 16];
    let master_iv = [0x31u8; 16];
    let video = ClipSpec::new(160, 96, 36, SceneKind::Panning)
        .seed(88)
        .generate();
    let result = Encoder::new(EncoderConfig::default()).encode(&video);
    let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &importance, &[8.0, 128.0]);

    // Encrypt the reliability streams (CTR; per-stream IVs per §5.3).
    let mut protected = split_streams(&result.stream, &table);
    protected.encrypt(CipherMode::Ctr, &key, &master_iv);
    println!(
        "encrypted {} streams ({} payload bits total)",
        protected.level_data.len(),
        protected.total_bits()
    );

    // Simulate raw storage errors on the *ciphertext* of the weakest
    // stream (as approximate storage would deliver them).
    let mut rng = StdRng::seed_from_u64(2026);
    let bits = protected.level_bits[0];
    let flips = vapp_sim::pick_positions(&[0..bits], 2e-3, &mut rng);
    for &pos in &flips {
        let byte = (pos / 8) as usize;
        protected.level_data[0][byte] ^= 1 << (7 - (pos % 8));
    }
    println!(
        "injected {} bit flips into the level-0 ciphertext",
        flips.len()
    );

    // Decrypt, merge, decode.
    protected.decrypt(CipherMode::Ctr, &key, &master_iv);
    let merged = merge_streams(&result.stream, &table, &protected);
    let decoded = decode(&merged);
    let base = video_psnr(&video, &result.reconstruction);
    let got = video_psnr(&video, &decoded);
    println!(
        "quality: {got:.2} dB vs {base:.2} dB error-free ({:+.2} dB)",
        got - base
    );

    // Requirement #3 check: the same flips on *plaintext* streams cost the
    // same quality.
    let mut plain = split_streams(&result.stream, &table);
    for &pos in &flips {
        let byte = (pos / 8) as usize;
        plain.level_data[0][byte] ^= 1 << (7 - (pos % 8));
    }
    let merged_plain = merge_streams(&result.stream, &table, &plain);
    let decoded_plain = decode(&merged_plain);
    assert_eq!(
        decoded, decoded_plain,
        "CTR must be transparent to approximation (requirement #3)"
    );
    println!("requirement #3 verified: encrypted and plaintext damage are identical.");
    println!("(ECB/CBC would fail here — see `cargo run -p vapp-bench --bin crypto_modes`)");

    if vapp_obs::stderr_level().is_some() {
        eprint!("{}", vapp_obs::current().snapshot().render_text(40));
    }
    vapp_obs::maybe_write_run_snapshot("encrypted_vault");
}
