//! Quickstart: the whole VideoApp flow on one synthetic clip.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vapp_codec::{decode, Encoder, EncoderConfig};
use vapp_metrics::video_psnr;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{
    mlc_pcm, ApproxStore, DependencyGraph, EcScheme, ImportanceMap, PivotTable, StoragePolicy,
};

fn main() {
    // 1. A raw clip (stand-in for camera footage).
    let video = ClipSpec::new(160, 96, 48, SceneKind::MovingBlocks)
        .seed(42)
        .generate();
    println!(
        "raw video: {}x{}x{} frames",
        video.width(),
        video.height(),
        video.len()
    );

    // 2. Encode with dependency recording (H.264-style, CABAC).
    let encoder = Encoder::new(EncoderConfig::default());
    let result = encoder.encode(&video);
    let bits = result.stream.payload_bits();
    println!(
        "encoded: {} payload bits ({:.1}x compression), PSNR {:.2} dB",
        bits,
        (video.total_pixels() * 8) as f64 / bits as f64,
        video_psnr(&video, &result.reconstruction),
    );

    // 3. VideoApp importance analysis (the paper's §4 algorithm).
    let graph = DependencyGraph::from_analysis(&result.analysis);
    let importance = ImportanceMap::compute(&graph);
    println!(
        "importance range: 1 .. {:.0} (2^{:.1})",
        importance.max(),
        importance.max().log2()
    );

    // 4. Partition by importance into protection levels (pivots, §4.4).
    let thresholds = [8.0, 128.0, 2048.0];
    let table = PivotTable::build(&result.analysis, &importance, &thresholds);
    println!(
        "pivot table: {} pivots total, {} bits of bookkeeping",
        table.pivot_count(),
        table.bookkeeping_bits()
    );

    // 5. Store on the approximate MLC substrate with variable BCH.
    let policy = StoragePolicy {
        ladder_levels: vec![
            EcScheme::Bch(6),
            EcScheme::Bch(7),
            EcScheme::Bch(9),
            EcScheme::Bch(11),
        ],
        thresholds: thresholds.to_vec(),
        substrate: mlc_pcm(1e-3),
        exact_bch: false,
    };
    let store = ApproxStore::new(policy);
    let report = store.report(&result.stream, &table, video.total_pixels() as u64);
    println!(
        "storage: {:.4} cells/pixel, {:.2}x denser than SLC, {:.1}% cheaper than uniform BCH-16",
        report.cells_per_pixel(),
        report.density_vs_slc(),
        report.savings_vs_uniform() * 100.0,
    );

    // 6. Read back (with simulated cell errors) and decode.
    let mut rng = StdRng::seed_from_u64(7);
    let loaded = store.store_load(&result.stream, &table, &mut rng);
    let decoded = decode(&loaded);
    println!(
        "after approximate storage: PSNR {:.2} dB (quality change {:+.3} dB)",
        video_psnr(&video, &decoded),
        video_psnr(&video, &decoded) - video_psnr(&video, &result.reconstruction),
    );

    // Observability: summarize to stderr only when VAPP_OBS enables the
    // sink; write OBS_quickstart.json when VAPP_OBS_OUT names a directory.
    if vapp_obs::stderr_level().is_some() {
        eprint!("{}", vapp_obs::current().snapshot().render_text(40));
    }
    vapp_obs::maybe_write_run_snapshot("quickstart");
}
