//! Action camera: high-motion footage at very high quality — the paper's
//! "most error-intolerant encoder settings" (§7.3), where it reports its
//! headline 47% ECC reduction. Also demonstrates the §7.3 observation
//! that *higher* quality slightly reduces approximability.
//!
//! ```text
//! cargo run --release --example action_camera
//! ```

use vapp_codec::{Encoder, EncoderConfig};
use vapp_metrics::video_psnr;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{classes, DependencyGraph, ImportanceMap};

fn main() {
    let footage = ClipSpec::new(160, 96, 48, SceneKind::FastMotion)
        .seed(360)
        .generate();
    println!(
        "action footage: {}x{}, {} frames of fast motion\n",
        footage.width(),
        footage.height(),
        footage.len()
    );

    println!(
        "{:>5}  {:>9}  {:>10}  {:>13}  {:>16}",
        "CRF", "PSNR dB", "bits/px", "max imp 2^x", "low-imp bits %"
    );
    for crf in [16u8, 20, 24] {
        let result = Encoder::new(EncoderConfig {
            crf,
            keyint: 24,
            bframes: 2,
            ..EncoderConfig::default()
        })
        .encode(&footage);
        let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));

        // Fraction of bits in low importance classes (tolerant bits).
        let total = result.stream.payload_bits();
        let low: u64 = classes::mb_bit_ranges(&result.analysis, &importance)
            .into_iter()
            .filter(|(imp, _)| *imp <= 16.0)
            .map(|(_, r)| r.end - r.start)
            .sum();

        println!(
            "{:>5}  {:>9.2}  {:>10.3}  {:>13.1}  {:>16.1}",
            crf,
            video_psnr(&footage, &result.reconstruction),
            total as f64 / footage.total_pixels() as f64,
            importance.max().log2(),
            100.0 * low as f64 / total as f64,
        );
    }
    println!();
    println!("higher quality (lower CRF) inflates every frame, so a fixed error rate");
    println!("hits more frames per video — the paper's §7.3 counter-intuition: better");
    println!("quality means slightly *less* approximability for CABAC streams.");

    if vapp_obs::stderr_level().is_some() {
        eprint!("{}", vapp_obs::current().snapshot().render_text(40));
    }
    vapp_obs::maybe_write_run_snapshot("action_camera");
}
