//! Surveillance archive: the paper's motivating economics.
//!
//! A mostly-static camera produces months of footage that must be kept
//! cheaply; most macroblocks are skips with tiny importance, so variable
//! error correction eliminates most of the ECC overhead. This example
//! archives a "camera feed" at several retention qualities and prints the
//! cells-per-pixel economics against SLC and uniformly-corrected MLC.
//!
//! The archive medium is pluggable: pass a substrate name as the first
//! argument or set `VAPP_SUBSTRATE` to rerun the same economics on a
//! bursty page-erasure channel or on data-stored-as-video.
//!
//! ```text
//! cargo run --release --example surveillance_archive            # MLC PCM
//! cargo run --release --example surveillance_archive -- burst
//! VAPP_SUBSTRATE=video cargo run --release --example surveillance_archive
//! ```

use std::sync::Arc;
use vapp_codec::{decode, Encoder, EncoderConfig};
use vapp_metrics::video_psnr;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{
    burst_erasure, data_in_video, mlc_pcm, ApproxStore, BurstConfig, DependencyGraph, EcScheme,
    ImportanceMap, PivotTable, StoragePolicy, Substrate, VideoChannelConfig,
};

/// Substrate from argv[1] or `VAPP_SUBSTRATE` (default: the paper's MLC).
fn pick_substrate() -> (String, Arc<dyn Substrate>) {
    let name = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("VAPP_SUBSTRATE").ok())
        .unwrap_or_else(|| "mlc".to_string());
    let substrate: Arc<dyn Substrate> = match name.as_str() {
        "mlc" => mlc_pcm(1e-3),
        "burst" => burst_erasure(BurstConfig::default()),
        "video" => data_in_video(VideoChannelConfig::default()),
        other => {
            eprintln!("unknown substrate `{other}` (expected mlc, burst or video); using mlc");
            mlc_pcm(1e-3)
        }
    };
    (name, substrate)
}

fn main() {
    let (substrate_name, substrate) = pick_substrate();
    let feed = ClipSpec::new(160, 96, 72, SceneKind::LocalMotion)
        .seed(1207)
        .generate();
    println!(
        "camera feed: {}x{}, {} frames — archived on `{}` (raw BER {:.1e})",
        feed.width(),
        feed.height(),
        feed.len(),
        substrate_name,
        substrate.raw_ber(),
    );
    println!();
    println!(
        "{:>5}  {:>10}  {:>10}  {:>9}  {:>9}  {:>9}",
        "CRF", "bits/px", "cells/px", "vs SLC", "vs unif.", "PSNR dB"
    );

    for crf in [20u8, 26, 32] {
        let result = Encoder::new(EncoderConfig {
            crf,
            keyint: 36,
            bframes: 2,
            ..EncoderConfig::default()
        })
        .encode(&feed);
        let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));

        // Skip-heavy content polarises importance; a short ladder suffices.
        let thresholds = [4.0, 64.0, 1024.0];
        let table = PivotTable::build(&result.analysis, &importance, &thresholds);
        let store = ApproxStore::new(StoragePolicy {
            ladder_levels: vec![
                EcScheme::Bch(6),
                EcScheme::Bch(7),
                EcScheme::Bch(9),
                EcScheme::Bch(11),
            ],
            thresholds: thresholds.to_vec(),
            substrate: substrate.clone(),
            exact_bch: false,
        });
        let report = store.report(&result.stream, &table, feed.total_pixels() as u64);

        let mut rng = StdRng::seed_from_u64(crf as u64);
        let decoded = decode(&store.store_load(&result.stream, &table, &mut rng));
        println!(
            "{:>5}  {:>10.3}  {:>10.4}  {:>8.2}x  {:>8.1}%  {:>9.2}",
            crf,
            result.stream.payload_bits() as f64 / feed.total_pixels() as f64,
            report.cells_per_pixel(),
            report.density_vs_slc(),
            report.savings_vs_uniform() * 100.0,
            video_psnr(&feed, &decoded),
        );
    }
    println!();
    println!("static scenes skip aggressively: most bits sit in low importance classes,");
    println!("so the variable scheme strips ECC from the bulk of the archive.");

    if vapp_obs::stderr_level().is_some() {
        eprint!("{}", vapp_obs::current().snapshot().render_text(40));
    }
    vapp_obs::maybe_write_run_snapshot("surveillance_archive");
}
