//! Peak signal-to-noise ratio.

use vapp_media::{Frame, Video};

/// PSNR value reported for identical content (infinite in theory).
///
/// The paper's plots top out well below this; using a finite cap keeps
/// averages well-defined, matching common tooling (e.g. VQMT caps at
/// 100 dB).
pub const PSNR_CAP: f64 = 100.0;

/// PSNR, in dB, between a reference frame and a distorted frame.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn frame_psnr(reference: &Frame, distorted: &Frame) -> f64 {
    let sse = reference.plane().sse(distorted.plane());
    let n = (reference.width() * reference.height()) as f64;
    mse_to_psnr(sse as f64 / n)
}

/// Converts a mean squared error to PSNR for 8-bit content.
fn mse_to_psnr(mse: f64) -> f64 {
    if mse <= 0.0 {
        return PSNR_CAP;
    }
    (10.0 * ((255.0 * 255.0) / mse).log10()).min(PSNR_CAP)
}

/// Average PSNR across frames (the paper's headline quality metric, §6.1).
///
/// Follows established practice: PSNR is computed per frame and the dB
/// values are averaged.
///
/// # Panics
///
/// Panics if the videos differ in geometry or length, or are empty.
pub fn video_psnr(reference: &Video, distorted: &Video) -> f64 {
    let per = video_psnr_per_frame(reference, distorted);
    per.iter().sum::<f64>() / per.len() as f64
}

/// Per-frame PSNR series (used by the Fig. 3 experiment, which looks at a
/// single damaged frame at a time).
///
/// # Panics
///
/// Panics if the videos differ in geometry or length, or are empty.
pub fn video_psnr_per_frame(reference: &Video, distorted: &Video) -> Vec<f64> {
    assert_eq!(reference.len(), distorted.len(), "video length mismatch");
    assert!(!reference.is_empty(), "cannot compare empty videos");
    reference
        .iter()
        .zip(distorted.iter())
        .map(|(r, d)| frame_psnr(r, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapp_media::Plane;

    #[test]
    fn identical_frames_hit_cap() {
        let f = Frame::filled(16, 16, 42);
        assert_eq!(frame_psnr(&f, &f), PSNR_CAP);
    }

    #[test]
    fn known_mse_gives_expected_psnr() {
        // Uniform difference of 1 => MSE 1 => PSNR = 20*log10(255) ≈ 48.13 dB.
        let a = Frame::filled(16, 16, 100);
        let b = Frame::filled(16, 16, 101);
        let p = frame_psnr(&a, &b);
        assert!((p - 48.1308).abs() < 1e-3, "psnr = {p}");
    }

    #[test]
    fn worse_distortion_means_lower_psnr() {
        let a = Frame::filled(16, 16, 100);
        let b = Frame::filled(16, 16, 105);
        let c = Frame::filled(16, 16, 120);
        assert!(frame_psnr(&a, &b) > frame_psnr(&a, &c));
    }

    #[test]
    fn video_average_is_mean_of_frames() {
        let r = Video::from_frames(vec![Frame::filled(8, 8, 10); 2], 25.0);
        let mut d1 = Frame::filled(8, 8, 10);
        d1.plane_mut().set(0, 0, 20);
        let d = Video::from_frames(vec![Frame::filled(8, 8, 10), d1], 25.0);
        let per = video_psnr_per_frame(&r, &d);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0], PSNR_CAP);
        assert!(per[1] < PSNR_CAP);
        let avg = video_psnr(&r, &d);
        assert!((avg - (per[0] + per[1]) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_is_symmetric() {
        let mut pa = Plane::new(8, 8);
        let mut pb = Plane::new(8, 8);
        for i in 0..64 {
            pa.data_mut()[i] = (i * 3 % 256) as u8;
            pb.data_mut()[i] = (i * 7 % 256) as u8;
        }
        let a = Frame::from_plane(pa);
        let b = Frame::from_plane(pb);
        assert_eq!(frame_psnr(&a, &b), frame_psnr(&b, &a));
    }
}
