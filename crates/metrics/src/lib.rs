//! Video quality metrics for the VideoApp reproduction.
//!
//! The paper's evaluation (§6.1) reports **average PSNR across frames** and
//! cross-checks against SSIM/MS-SSIM from the VQMT tool. This crate
//! implements:
//!
//! * [`frame_psnr`] / [`video_psnr`] — peak-signal-to-noise ratio,
//! * [`frame_ssim`] / [`video_ssim`] — structural similarity (8x8 windows,
//!   the standard constants `K1 = 0.01`, `K2 = 0.03`),
//! * [`video_ms_ssim`] — a multi-scale SSIM variant (dyadic downsampling,
//!   standard five-scale weights),
//! * [`video_vifp`] — pixel-domain Visual Information Fidelity,
//! * [`QualityChange`] — the "quality change in dB" bookkeeping that
//!   Figures 9–11 of the paper are expressed in.
//!
//! # Example
//!
//! ```
//! use vapp_media::{Frame, Video};
//! use vapp_metrics::video_psnr;
//!
//! let a = Video::from_frames(vec![Frame::filled(32, 32, 100); 4], 25.0);
//! let mut damaged = a.clone();
//! damaged.frames();
//! // Identical videos compare at the PSNR cap.
//! assert_eq!(video_psnr(&a, &a), vapp_metrics::PSNR_CAP);
//! ```

mod psnr;
mod quality;
mod ssim;
mod vif;

pub use psnr::{frame_psnr, video_psnr, video_psnr_per_frame, PSNR_CAP};
pub use quality::{prob_any_flip, QualityChange};
pub use ssim::{frame_ssim, video_ms_ssim, video_ssim};
pub use vif::{frame_vifp, video_vifp};
