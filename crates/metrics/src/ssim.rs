//! Structural similarity metrics (SSIM, MS-SSIM).

use vapp_media::{Frame, Plane, Video};

const K1: f64 = 0.01;
const K2: f64 = 0.03;
const L: f64 = 255.0;
const WINDOW: usize = 8;

/// Standard five-scale MS-SSIM weights (Wang et al. 2003).
const MS_WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// SSIM between two frames, using non-overlapping 8x8 windows.
///
/// Returns a value in `[-1, 1]`; 1 means identical.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn frame_ssim(reference: &Frame, distorted: &Frame) -> f64 {
    plane_ssim(reference.plane(), distorted.plane())
}

fn plane_ssim(a: &Plane, b: &Plane) -> f64 {
    assert_eq!(a.width(), b.width(), "frame width mismatch");
    assert_eq!(a.height(), b.height(), "frame height mismatch");
    let c1 = (K1 * L) * (K1 * L);
    let c2 = (K2 * L) * (K2 * L);

    let mut total = 0.0;
    let mut windows = 0usize;
    let mut wy = 0;
    while wy < a.height() {
        let h = WINDOW.min(a.height() - wy);
        let mut wx = 0;
        while wx < a.width() {
            let w = WINDOW.min(a.width() - wx);
            let n = (w * h) as f64;
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for y in wy..wy + h {
                for x in wx..wx + w {
                    let pa = a.get(x, y) as f64;
                    let pb = b.get(x, y) as f64;
                    sa += pa;
                    sb += pb;
                    saa += pa * pa;
                    sbb += pb * pb;
                    sab += pa * pb;
                }
            }
            let ma = sa / n;
            let mb = sb / n;
            let va = (saa / n - ma * ma).max(0.0);
            let vb = (sbb / n - mb * mb).max(0.0);
            let cov = sab / n - ma * mb;
            let ssim = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                / ((ma * ma + mb * mb + c1) * (va + vb + c2));
            total += ssim;
            windows += 1;
            wx += WINDOW;
        }
        wy += WINDOW;
    }
    total / windows as f64
}

/// Average SSIM across frames.
///
/// # Panics
///
/// Panics if the videos differ in geometry or length, or are empty.
pub fn video_ssim(reference: &Video, distorted: &Video) -> f64 {
    assert_eq!(reference.len(), distorted.len(), "video length mismatch");
    assert!(!reference.is_empty(), "cannot compare empty videos");
    reference
        .iter()
        .zip(distorted.iter())
        .map(|(r, d)| frame_ssim(r, d))
        .sum::<f64>()
        / reference.len() as f64
}

/// Downsamples a plane by 2x with a 2x2 box filter.
fn downsample(p: &Plane) -> Plane {
    let w = (p.width() / 2).max(1);
    let h = (p.height() / 2).max(1);
    let mut out = Plane::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut sum = 0u32;
            for dy in 0..2 {
                for dx in 0..2 {
                    sum += p.sample((2 * x + dx) as isize, (2 * y + dy) as isize) as u32;
                }
            }
            out.set(x, y, (sum / 4) as u8);
        }
    }
    out
}

/// Multi-scale SSIM averaged across frames.
///
/// Uses up to five dyadic scales (fewer when the frame is small) with the
/// standard weights renormalised over the scales actually used. This is the
/// cross-check metric the paper mentions alongside PSNR (§6.1).
///
/// # Panics
///
/// Panics if the videos differ in geometry or length, or are empty.
pub fn video_ms_ssim(reference: &Video, distorted: &Video) -> f64 {
    assert_eq!(reference.len(), distorted.len(), "video length mismatch");
    assert!(!reference.is_empty(), "cannot compare empty videos");
    let mut total = 0.0;
    for (r, d) in reference.iter().zip(distorted.iter()) {
        total += frame_ms_ssim(r, d);
    }
    total / reference.len() as f64
}

fn frame_ms_ssim(reference: &Frame, distorted: &Frame) -> f64 {
    let mut a = reference.plane().clone();
    let mut b = distorted.plane().clone();
    let mut scores = Vec::new();
    for _ in 0..MS_WEIGHTS.len() {
        scores.push(plane_ssim(&a, &b));
        if a.width() / 2 < WINDOW || a.height() / 2 < WINDOW {
            break;
        }
        a = downsample(&a);
        b = downsample(&b);
    }
    let weights = &MS_WEIGHTS[..scores.len()];
    let wsum: f64 = weights.iter().sum();
    // Weighted geometric mean over the scales used; clamp negatives, which
    // can only arise from heavy distortion, to a tiny positive number.
    let mut acc = 0.0;
    for (s, w) in scores.iter().zip(weights) {
        acc += (w / wsum) * s.max(1e-6).ln();
    }
    acc.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(width: usize, height: usize, seed: u8) -> Frame {
        let mut f = Frame::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let v = (x * 13 + y * 31 + seed as usize * 7) % 256;
                f.plane_mut().set(x, y, v as u8);
            }
        }
        f
    }

    #[test]
    fn identical_frames_score_one() {
        let f = textured(32, 32, 1);
        assert!((frame_ssim(&f, &f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distortion_lowers_ssim() {
        let a = textured(32, 32, 1);
        let mut b = a.clone();
        for i in 0..256 {
            let v = b.plane().data()[i * 4];
            b.plane_mut().data_mut()[i * 4] = v.wrapping_add(60);
        }
        let s = frame_ssim(&a, &b);
        assert!(s < 0.99, "ssim = {s}");
        assert!(s > -1.0);
    }

    #[test]
    fn ssim_handles_non_multiple_sizes() {
        let a = textured(20, 13, 2);
        assert!((frame_ssim(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ms_ssim_identical_is_one() {
        let v = Video::from_frames(vec![textured(64, 64, 3); 2], 25.0);
        assert!((video_ms_ssim(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ms_ssim_orders_like_ssim() {
        let a = Video::from_frames(vec![textured(64, 64, 3); 2], 25.0);
        let mut light = a.clone();
        let mut heavy = a.clone();
        // Rebuild with perturbed frames.
        light = {
            let mut frames: Vec<Frame> = light.frames().to_vec();
            for f in &mut frames {
                f.plane_mut().data_mut()[0] ^= 0x40;
            }
            Video::from_frames(frames, 25.0)
        };
        heavy = {
            let mut frames: Vec<Frame> = heavy.frames().to_vec();
            for f in &mut frames {
                for p in f.plane_mut().data_mut().iter_mut().step_by(2) {
                    *p = p.wrapping_add(80);
                }
            }
            Video::from_frames(frames, 25.0)
        };
        let sl = video_ms_ssim(&a, &light);
        let sh = video_ms_ssim(&a, &heavy);
        assert!(sl > sh, "light {sl} vs heavy {sh}");
    }

    #[test]
    fn downsample_halves_dimensions() {
        let p = Plane::filled(16, 10, 50);
        let d = downsample(&p);
        assert_eq!(d.width(), 8);
        assert_eq!(d.height(), 5);
        assert_eq!(d.get(3, 3), 50);
    }
}
