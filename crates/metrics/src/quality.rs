//! Quality-change bookkeeping in dB.
//!
//! The paper's Figures 9–11 express results as a *quality change* relative
//! to the error-free decode (a negative number of dB), and §6.4 reports the
//! **maximum** (worst) loss per video across Monte Carlo trials, scaled by
//! the error probability when the rate is so low that a flip had to be
//! forced. [`QualityChange`] encapsulates these rules.

/// Accumulates quality-change observations (in dB, negative = loss) across
/// Monte Carlo trials and reports the paper's conservative statistics.
///
/// # Example
///
/// ```
/// use vapp_metrics::QualityChange;
///
/// let mut q = QualityChange::new();
/// q.record(-0.5);
/// q.record(-2.0);
/// q.record(-0.1);
/// assert_eq!(q.worst(), -2.0);
/// assert!((q.mean() + 0.8666).abs() < 1e-3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QualityChange {
    samples: Vec<f64>,
}

impl QualityChange {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial's quality change (dB; negative = loss).
    pub fn record(&mut self, delta_db: f64) {
        self.samples.push(delta_db);
    }

    /// Number of recorded trials.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no trials have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The worst (most negative) observed change; `0.0` if empty.
    ///
    /// The paper reports the maximum loss per video (§6.4) as a highly
    /// conservative estimate.
    pub fn worst(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::min)
    }

    /// Mean observed change; `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Scales every statistic by the probability that any error occurs, for
    /// the paper's very-low-error-rate protocol (§6.4: force at least one
    /// flip, then multiply the loss by the probability that a flip happens
    /// within a video of this size).
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn scaled_worst(&self, probability: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0,1]"
        );
        self.worst() * probability
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Probability that at least one of `bits` independent bits flips at
/// per-bit error rate `p`: `1 - (1-p)^bits`, computed stably.
///
/// Used to scale forced-flip measurements at very low error rates (§6.4).
pub fn prob_any_flip(bits: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if p == 0.0 || bits == 0 {
        return 0.0;
    }
    // 1 - exp(bits * ln(1-p)) via ln_1p for numerical stability at tiny p.
    -f64::exp_m1(bits as f64 * f64::ln_1p(-p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_and_mean() {
        let mut q = QualityChange::new();
        assert!(q.is_empty());
        assert_eq!(q.worst(), 0.0);
        q.record(-1.0);
        q.record(-3.0);
        q.record(0.0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.worst(), -3.0);
        assert!((q.mean() + 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_rule() {
        let mut q = QualityChange::new();
        q.record(-4.0);
        assert_eq!(q.scaled_worst(0.25), -1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        QualityChange::new().scaled_worst(1.5);
    }

    #[test]
    fn prob_any_flip_behaves() {
        assert_eq!(prob_any_flip(0, 0.5), 0.0);
        assert_eq!(prob_any_flip(100, 0.0), 0.0);
        let p = prob_any_flip(1, 1e-3);
        assert!((p - 1e-3).abs() < 1e-9);
        // Large-bit behaviour approaches 1.
        assert!(prob_any_flip(10_000_000, 1e-3) > 0.999);
        // Monotone in bits.
        assert!(prob_any_flip(2000, 1e-6) > prob_any_flip(1000, 1e-6));
    }
}
