//! Pixel-domain Visual Information Fidelity (VIF-P).
//!
//! The fourth metric of the paper's quality tool (§6.1, VQMT). VIF models
//! the reference and distorted images as passing through a noisy channel
//! and measures the ratio of mutual information preserved. This is the
//! standard pixel-domain simplification over four dyadic scales.

use vapp_media::{Frame, Plane, Video};

/// Visual-noise variance of the VIF model.
const SIGMA_N2: f64 = 2.0;
const WINDOW: usize = 8;
const SCALES: usize = 4;

/// VIF-P between two frames; 1 = identical, 0 = no information preserved
/// (values can slightly exceed 1 when the "distorted" image is sharper).
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn frame_vifp(reference: &Frame, distorted: &Frame) -> f64 {
    let mut r = reference.plane().clone();
    let mut d = distorted.plane().clone();
    let mut num = 0.0;
    let mut den = 0.0;
    for scale in 0..SCALES {
        if scale > 0 {
            if r.width() < 2 * WINDOW || r.height() < 2 * WINDOW {
                break;
            }
            r = downsample2(&r);
            d = downsample2(&d);
        }
        let (n, dn) = vif_scale(&r, &d);
        num += n;
        den += dn;
    }
    if den <= 0.0 {
        return 1.0;
    }
    num / den
}

fn vif_scale(r: &Plane, d: &Plane) -> (f64, f64) {
    assert_eq!(r.width(), d.width(), "frame width mismatch");
    assert_eq!(r.height(), d.height(), "frame height mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    let mut wy = 0;
    while wy + WINDOW <= r.height() {
        let mut wx = 0;
        while wx + WINDOW <= r.width() {
            let n = (WINDOW * WINDOW) as f64;
            let (mut sr, mut sd, mut srr, mut sdd, mut srd) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for y in wy..wy + WINDOW {
                for x in wx..wx + WINDOW {
                    let pr = r.get(x, y) as f64;
                    let pd = d.get(x, y) as f64;
                    sr += pr;
                    sd += pd;
                    srr += pr * pr;
                    sdd += pd * pd;
                    srd += pr * pd;
                }
            }
            let mr = sr / n;
            let md = sd / n;
            let var_r = (srr / n - mr * mr).max(0.0);
            let var_d = (sdd / n - md * md).max(0.0);
            let cov = srd / n - mr * md;
            let g = if var_r > 1e-10 { cov / var_r } else { 0.0 };
            let sv2 = (var_d - g * cov).max(0.0);
            num += (1.0 + g * g * var_r / (sv2 + SIGMA_N2)).log2();
            den += (1.0 + var_r / SIGMA_N2).log2();
            wx += WINDOW;
        }
        wy += WINDOW;
    }
    (num, den)
}

fn downsample2(p: &Plane) -> Plane {
    let w = (p.width() / 2).max(1);
    let h = (p.height() / 2).max(1);
    let mut out = Plane::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut sum = 0u32;
            for dy in 0..2 {
                for dx in 0..2 {
                    sum += p.sample((2 * x + dx) as isize, (2 * y + dy) as isize) as u32;
                }
            }
            out.set(x, y, (sum / 4) as u8);
        }
    }
    out
}

/// Average VIF-P across frames.
///
/// # Panics
///
/// Panics if the videos differ in geometry or length, or are empty.
pub fn video_vifp(reference: &Video, distorted: &Video) -> f64 {
    assert_eq!(reference.len(), distorted.len(), "video length mismatch");
    assert!(!reference.is_empty(), "cannot compare empty videos");
    reference
        .iter()
        .zip(distorted.iter())
        .map(|(r, d)| frame_vifp(r, d))
        .sum::<f64>()
        / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(seed: u8) -> Frame {
        let mut f = Frame::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                f.plane_mut()
                    .set(x, y, ((x * 11 + y * 17 + seed as usize * 5) % 256) as u8);
            }
        }
        f
    }

    #[test]
    fn identical_frames_score_one() {
        let f = textured(1);
        let v = frame_vifp(&f, &f);
        assert!((v - 1.0).abs() < 1e-9, "vif = {v}");
    }

    #[test]
    fn distortion_lowers_vif() {
        let a = textured(1);
        let mut light = a.clone();
        for p in light.plane_mut().data_mut().iter_mut().step_by(16) {
            *p = p.wrapping_add(20);
        }
        let mut heavy = a.clone();
        for p in heavy.plane_mut().data_mut().iter_mut().step_by(2) {
            *p = p.wrapping_add(90);
        }
        let vl = frame_vifp(&a, &light);
        let vh = frame_vifp(&a, &heavy);
        assert!(vl < 1.0);
        assert!(vh < vl, "heavy {vh} must score below light {vl}");
        assert!(vh >= 0.0);
    }

    #[test]
    fn constant_frames_are_degenerate_but_defined() {
        let a = Frame::filled(32, 32, 100);
        let b = Frame::filled(32, 32, 100);
        let v = frame_vifp(&a, &b);
        assert!(v.is_finite());
    }

    #[test]
    fn video_average_works() {
        let v = Video::from_frames(vec![textured(3); 3], 25.0);
        assert!((video_vifp(&v, &v) - 1.0).abs() < 1e-9);
    }
}
