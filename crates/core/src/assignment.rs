//! Error-correction assignment under a quality-loss budget (paper §7.2,
//! Table 1).
//!
//! The paper sizes the quality-loss budget at **0.3 dB** so approximation
//! always beats deterministic compression (which loses 0.4–0.6 dB for the
//! same 10–15% storage reduction), distributes the budget across
//! importance classes proportionally to the storage they occupy, and then
//! gives each class — lowest importance first — the *weakest* scheme whose
//! incremental quality loss fits the class's share.

use std::fmt;
use vapp_storage::bch::Bch;
use vapp_storage::uber;

/// The paper's quality-loss budget in dB (§7.2).
pub const QUALITY_BUDGET_DB: f64 = 0.3;

/// One rung of the error-correction ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EcScheme {
    /// No correction: bits see the raw substrate error rate.
    None,
    /// A BCH code correcting the given number of errors per 512-bit block.
    Bch(u8),
}

impl fmt::Display for EcScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcScheme::None => write!(f, "None"),
            EcScheme::Bch(t) => write!(f, "BCH-{t}"),
        }
    }
}

impl EcScheme {
    /// The paper's ladder (Table 1): nothing, BCH-6 … BCH-11, and BCH-16
    /// for precise storage.
    pub const LADDER: [EcScheme; 8] = [
        EcScheme::None,
        EcScheme::Bch(6),
        EcScheme::Bch(7),
        EcScheme::Bch(8),
        EcScheme::Bch(9),
        EcScheme::Bch(10),
        EcScheme::Bch(11),
        EcScheme::Bch(16),
    ];

    /// The precise-storage scheme used for headers (10^-16 class).
    pub const PRECISE: EcScheme = EcScheme::Bch(16);

    /// Storage overhead (parity/data).
    pub fn overhead(self) -> f64 {
        match self {
            EcScheme::None => 0.0,
            EcScheme::Bch(t) => Bch::new(t as usize).overhead(),
        }
    }

    /// Effective residual bit error rate delivered to the data when the
    /// substrate's raw BER is `raw_ber`.
    pub fn residual_ber(self, raw_ber: f64) -> f64 {
        match self {
            EcScheme::None => raw_ber,
            EcScheme::Bch(t) => uber::residual_ber(&Bch::new(t as usize), raw_ber),
        }
    }

    /// Correctable errors per block (0 for no protection).
    pub fn t(self) -> usize {
        match self {
            EcScheme::None => 0,
            EcScheme::Bch(t) => t as usize,
        }
    }
}

/// A measured cumulative quality-loss curve for one importance class:
/// quality change (dB, ≤ 0) as a function of the per-bit error rate
/// applied to all bits of importance ≤ the class bound (Fig. 10a).
#[derive(Clone, Debug, PartialEq)]
pub struct LossCurve {
    points: Vec<(f64, f64)>,
}

impl LossCurve {
    /// Creates a curve from `(error rate, loss dB)` samples.
    ///
    /// # Panics
    ///
    /// Panics if no points are given or any rate is non-positive.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "a loss curve needs samples");
        assert!(
            points.iter().all(|&(r, _)| r > 0.0),
            "rates must be positive"
        );
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite rates"));
        LossCurve { points }
    }

    /// Loss (dB, ≤ 0) at an error rate, log-linear interpolation; rates
    /// below the sampled range report no loss, above it the worst sample.
    pub fn loss_at(&self, rate: f64) -> f64 {
        if rate <= 0.0 || rate < self.points[0].0 {
            return 0.0;
        }
        let last = self.points.last().expect("non-empty");
        if rate >= last.0 {
            return last.1;
        }
        let idx = self
            .points
            .windows(2)
            .position(|w| rate >= w[0].0 && rate < w[1].0)
            .expect("rate within sampled range");
        let (r0, l0) = self.points[idx];
        let (r1, l1) = self.points[idx + 1];
        let t = (rate.ln() - r0.ln()) / (r1.ln() - r0.ln());
        l0 + t * (l1 - l0)
    }
}

/// The produced assignment: one scheme per importance class (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// `(class exponent, bits in class, chosen scheme)` ascending by
    /// class.
    pub per_class: Vec<(u32, u64, EcScheme)>,
    /// Scheme for frame headers and pivot metadata: always precise.
    pub header_scheme: EcScheme,
    /// The budget that was distributed.
    pub budget_db: f64,
}

impl Assignment {
    /// Runs the paper's §7.2 algorithm.
    ///
    /// * `classes` — `(exponent, bits)` per importance class, ascending;
    /// * `curves` — cumulative loss curve per class (same order);
    /// * `budget_db` — total allowed worst-case loss (positive dB);
    /// * `raw_ber` — the substrate's raw bit error rate.
    ///
    /// # Panics
    ///
    /// Panics if inputs are inconsistent or empty.
    pub fn compute(
        classes: &[(u32, u64)],
        curves: &[LossCurve],
        budget_db: f64,
        raw_ber: f64,
    ) -> Assignment {
        assert_eq!(classes.len(), curves.len(), "one curve per class");
        assert!(!classes.is_empty(), "need at least one class");
        assert!(budget_db > 0.0, "budget must be positive");
        let total_bits: u64 = classes.iter().map(|&(_, b)| b).sum();
        assert!(total_bits > 0, "classes hold no bits");

        let mut per_class = Vec::with_capacity(classes.len());
        let mut min_rung = 0usize; // protection never weakens with class
        for (i, &(exp, bits)) in classes.iter().enumerate() {
            // Budget share proportional to storage occupied (§7.2).
            let share = budget_db * bits as f64 / total_bits as f64;
            // Incremental loss of protecting class i at scheme `s`: the
            // cumulative curve at the scheme's residual rate, minus the
            // part already attributed to weaker classes at their chosen
            // rates ("the quality loss excludes the bits covered by the
            // previous class").
            let prev_loss = if i == 0 {
                0.0
            } else {
                let (_, _, prev_scheme) = per_class[i - 1];
                let prev: &LossCurve = &curves[i - 1];
                prev.loss_at(EcScheme::residual_ber(prev_scheme, raw_ber))
            };
            let mut chosen = *EcScheme::LADDER.last().expect("ladder non-empty");
            let mut chosen_rung = EcScheme::LADDER.len() - 1;
            for (rung, &scheme) in EcScheme::LADDER.iter().enumerate().skip(min_rung) {
                let rate = scheme.residual_ber(raw_ber);
                let incremental = (curves[i].loss_at(rate) - prev_loss).min(0.0);
                if -incremental <= share {
                    chosen = scheme;
                    chosen_rung = rung;
                    break;
                }
            }
            min_rung = chosen_rung;
            vapp_obs::debug!(
                "core.assignment.class",
                "class 2^{exp}: {bits} bits, share {share:.3} dB -> {chosen:?}"
            );
            per_class.push((exp, bits, chosen));
        }
        Assignment {
            per_class,
            header_scheme: EcScheme::PRECISE,
            budget_db,
        }
    }

    /// Average payload overhead under this assignment, weighted by bits.
    pub fn average_overhead(&self) -> f64 {
        let total: u64 = self.per_class.iter().map(|&(_, b, _)| b).sum();
        if total == 0 {
            return 0.0;
        }
        self.per_class
            .iter()
            .map(|&(_, b, s)| s.overhead() * b as f64)
            .sum::<f64>()
            / total as f64
    }

    /// The importance thresholds implied by the assignment, suitable for
    /// [`crate::pivots::PivotTable::build`]: one per level transition, in
    /// ladder order. The pivot level of a macroblock is then an index
    /// into the returned level list.
    pub fn thresholds(&self) -> (Vec<f64>, Vec<EcScheme>) {
        // Collapse consecutive classes with the same scheme.
        let mut levels: Vec<EcScheme> = Vec::new();
        let mut thresholds = Vec::new();
        for &(exp, _, scheme) in &self.per_class {
            match levels.last() {
                Some(&last) if last == scheme => {}
                Some(_) => {
                    // The new level starts where importance exceeds the
                    // previous class bound: 2^(exp-1).
                    thresholds.push(2f64.powi(exp as i32 - 1));
                    levels.push(scheme);
                }
                None => levels.push(scheme),
            }
        }
        (thresholds, levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_properties_match_paper_table() {
        assert_eq!(EcScheme::None.overhead(), 0.0);
        assert!((EcScheme::Bch(6).overhead() - 0.117).abs() < 0.001);
        assert!((EcScheme::Bch(16).overhead() - 0.3125).abs() < 1e-9);
        assert_eq!(EcScheme::None.residual_ber(1e-3), 1e-3);
        let b16 = EcScheme::Bch(16).residual_ber(1e-3);
        assert!(b16 < 1e-15, "BCH-16 residual {b16:e}");
    }

    #[test]
    fn ladder_is_strength_ordered() {
        let rates: Vec<f64> = EcScheme::LADDER
            .iter()
            .map(|s| s.residual_ber(1e-3))
            .collect();
        assert!(rates.windows(2).all(|w| w[0] > w[1]), "{rates:?}");
        let overheads: Vec<f64> = EcScheme::LADDER.iter().map(|s| s.overhead()).collect();
        assert!(overheads.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn loss_curve_interpolates_logarithmically() {
        let c = LossCurve::new(vec![(1e-6, -0.1), (1e-2, -4.1)]);
        assert_eq!(c.loss_at(1e-6), -0.1);
        assert_eq!(c.loss_at(1e-2), -4.1);
        let mid = c.loss_at(1e-4);
        assert!((mid - (-2.1)).abs() < 1e-9, "mid {mid}");
        assert_eq!(c.loss_at(1e-9), 0.0);
        assert_eq!(c.loss_at(1.0), -4.1);
    }

    /// Synthetic curves emulating Fig. 10: low classes tolerate high
    /// rates, high classes need tiny rates.
    fn synthetic_inputs() -> (Vec<(u32, u64)>, Vec<LossCurve>) {
        let exps = [1u32, 4, 8, 12, 16, 20];
        let mut classes = Vec::new();
        let mut curves = Vec::new();
        for (i, &exp) in exps.iter().enumerate() {
            classes.push((exp, 1_000_000));
            // Class i starts losing quality around rate 10^-(1.5 i + 2).
            let knee = 10f64.powf(-(1.5 * i as f64 + 2.0));
            curves.push(LossCurve::new(vec![
                (knee * 1e-3, -0.001 * (i + 1) as f64),
                (knee, -0.04 * (i + 1) as f64),
                (knee * 1e2, -2.0 * (i + 1) as f64),
            ]));
        }
        (classes, curves)
    }

    #[test]
    fn assignment_is_monotone_and_within_budget() {
        let (classes, curves) = synthetic_inputs();
        let a = Assignment::compute(&classes, &curves, QUALITY_BUDGET_DB, 1e-3);
        assert_eq!(a.per_class.len(), classes.len());
        // Protection strength never decreases with importance.
        let rungs: Vec<usize> = a
            .per_class
            .iter()
            .map(|&(_, _, s)| {
                EcScheme::LADDER
                    .iter()
                    .position(|&l| l == s)
                    .expect("in ladder")
            })
            .collect();
        assert!(rungs.windows(2).all(|w| w[0] <= w[1]), "{rungs:?}");
        // Least important class gets weak or no protection; most important
        // gets strong protection.
        assert!(
            rungs[0] <= 1,
            "lowest class over-protected: {:?}",
            a.per_class[0].2
        );
        assert!(
            rungs[rungs.len() - 1] >= 4,
            "highest class under-protected: {:?}",
            a.per_class.last().unwrap().2
        );
        // Average overhead lands strictly between none and uniform BCH-16.
        let avg = a.average_overhead();
        assert!(avg > 0.0 && avg < EcScheme::Bch(16).overhead(), "avg {avg}");
    }

    #[test]
    fn bigger_budget_weakens_protection() {
        let (classes, curves) = synthetic_inputs();
        let tight = Assignment::compute(&classes, &curves, 0.05, 1e-3);
        let loose = Assignment::compute(&classes, &curves, 1.5, 1e-3);
        assert!(loose.average_overhead() <= tight.average_overhead());
    }

    #[test]
    fn thresholds_collapse_equal_schemes() {
        let (classes, curves) = synthetic_inputs();
        let a = Assignment::compute(&classes, &curves, QUALITY_BUDGET_DB, 1e-3);
        let (thresholds, levels) = a.thresholds();
        assert_eq!(thresholds.len() + 1, levels.len());
        assert!(thresholds.windows(2).all(|w| w[0] < w[1]));
        // Levels are distinct consecutive schemes.
        assert!(levels.windows(2).all(|w| w[0] != w[1]));
    }
}
