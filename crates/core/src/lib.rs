//! # VideoApp — bit-level reliability partitioning for encoded video
//!
//! Reproduction of the core contribution of *"Approximate Storage of
//! Compressed and Encrypted Videos"* (ASPLOS 2017): accept an encoded
//! video, order all of its bits by the visual damage a flip would cause,
//! and map them onto an error-prone multi-level-cell substrate with
//! *variable* error correction so that density is maximised under a
//! quality-loss budget.
//!
//! The flow mirrors the paper:
//!
//! 1. encode with dependency recording ([`vapp_codec`]),
//! 2. build the weighted dependency graph ([`graph::DependencyGraph`]),
//! 3. compute per-macroblock **importance** ([`importance::ImportanceMap`],
//!    the paper's §4.3 eight-step algorithm),
//! 4. group bits into equal-storage bins (§7.1 validation) and log2
//!    importance classes (§7.2) ([`classes`]),
//! 5. derive per-frame **pivots** ([`pivots`]) exploiting the
//!    monotone importance order within each frame (§4.4),
//! 6. assign the weakest admissible BCH scheme per class under a 0.3 dB
//!    budget ([`assignment`]),
//! 7. split the payload into per-reliability streams, optionally
//!    encrypted with an approximation-compatible cipher mode
//!    ([`streams`]),
//! 8. store, corrupt, correct, decode and measure ([`pipeline`]).

pub mod assignment;
pub mod classes;
pub mod facade;
pub mod graph;
pub mod importance;
pub mod pipeline;
pub mod pivots;
pub mod streams;

pub use assignment::{Assignment, EcScheme, LossCurve, QUALITY_BUDGET_DB};
pub use classes::{equal_storage_bins, importance_classes, payload_layout, Bin, Class};
pub use facade::{Processed, VideoApp};
pub use graph::{DependencyGraph, NodeId};
pub use importance::ImportanceMap;
pub use pipeline::{ApproxStore, PipelineReport, StoragePolicy};
pub use pivots::{FramePivots, Pivot, PivotTable};
pub use streams::{merge_streams, split_streams, ProtectedStreams};
pub use vapp_storage::channel::{
    burst_erasure, data_in_video, mlc_pcm, slc, BurstConfig, CorruptTally, Substrate,
    VideoChannelConfig,
};
