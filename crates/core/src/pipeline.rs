//! The end-to-end approximate video store: split → protect → store on the
//! MLC substrate → corrupt → correct → merge → decode → measure.
//!
//! Storage simulation runs per protection stream in 512-bit blocks. Two
//! block simulators are available: `exact` drives the real BCH
//! encoder/decoder bit by bit (used in tests and small runs), while the
//! default analytic simulator draws block failures from the binomial-tail
//! failure rate — statistically equivalent and orders of magnitude
//! faster, which matters at 30 Monte Carlo trials per data point (§6.4).

use crate::assignment::{Assignment, EcScheme};
use crate::pivots::PivotTable;
use crate::streams::{merge_streams, split_streams};
use std::ops::Range;
use vapp_codec::{bitstream, decode, EncodedVideo};
use vapp_media::Video;
use vapp_metrics::{prob_any_flip, video_psnr};
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_sim::{derive_subseeds, pick_k_positions, pick_positions, pick_positions_forced};
use vapp_storage::batch::{self, BlockBatch};
use vapp_storage::bch::{Bch, DecodeOutcome, DATA_BITS};
use vapp_storage::density;

/// How and where the payload is stored.
#[derive(Clone, Debug, PartialEq)]
pub struct StoragePolicy {
    /// Scheme per pivot level (weakest first).
    pub ladder_levels: Vec<EcScheme>,
    /// Importance thresholds between levels (for pivot construction).
    pub thresholds: Vec<f64>,
    /// Raw bit error rate of the substrate (the paper's 1e-3).
    pub raw_ber: f64,
    /// Use the exact BCH machinery instead of the analytic block model.
    pub exact_bch: bool,
}

impl StoragePolicy {
    /// Builds the policy implied by a §7.2 assignment.
    pub fn from_assignment(a: &Assignment, raw_ber: f64) -> Self {
        let (thresholds, ladder_levels) = a.thresholds();
        StoragePolicy {
            ladder_levels,
            thresholds,
            raw_ber,
            exact_bch: true,
        }
    }

    /// Uniform protection: every payload bit gets `scheme` (the paper's
    /// baseline design in Fig. 11).
    pub fn uniform(scheme: EcScheme, raw_ber: f64) -> Self {
        StoragePolicy {
            ladder_levels: vec![scheme],
            thresholds: Vec::new(),
            raw_ber,
            exact_bch: true,
        }
    }

    /// Scheme for a pivot level index.
    pub fn scheme_for_level(&self, level: usize) -> EcScheme {
        self.ladder_levels[level.min(self.ladder_levels.len() - 1)]
    }
}

/// Names of the four per-level observability counters, precomputed once
/// per store so `store_load` does not allocate format strings per call.
#[derive(Clone, Debug)]
struct LevelCounterNames {
    stored_bits: String,
    flips: String,
    corrected: String,
    uncorrectable: String,
}

impl LevelCounterNames {
    fn new(level: usize) -> Self {
        LevelCounterNames {
            stored_bits: format!("core.level.{level}.stored_bits"),
            flips: format!("core.level.{level}.flips"),
            corrected: format!("core.level.{level}.corrected"),
            uncorrectable: format!("core.level.{level}.uncorrectable"),
        }
    }
}

/// The approximate store.
#[derive(Clone, Debug)]
pub struct ApproxStore {
    policy: StoragePolicy,
    /// One entry per ladder level (extra pivot levels fall back to an
    /// on-the-spot build in `store_load`, a cold path).
    level_names: Vec<LevelCounterNames>,
}

impl ApproxStore {
    /// Creates a store with a policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy has no levels or an invalid error rate.
    pub fn new(policy: StoragePolicy) -> Self {
        assert!(!policy.ladder_levels.is_empty(), "policy needs levels");
        assert!(
            (0.0..=1.0).contains(&policy.raw_ber),
            "raw BER must be a probability"
        );
        let level_names = (0..policy.ladder_levels.len())
            .map(LevelCounterNames::new)
            .collect();
        ApproxStore {
            policy,
            level_names,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> &StoragePolicy {
        &self.policy
    }

    /// Simulates one store/load round trip: returns the (possibly
    /// corrupted) stream a reader would decode. Headers and pivots are
    /// precise by construction and pass through untouched (§4.4).
    pub fn store_load(
        &self,
        stream: &EncodedVideo,
        table: &PivotTable,
        rng: &mut StdRng,
    ) -> EncodedVideo {
        let raw_ber = self.policy.raw_ber;
        let exact_bch = self.policy.exact_bch;
        let _span = vapp_obs::span!("core.store.load", raw_ber, exact_bch);
        let mut streams = split_streams(stream, table);
        // One sub-seed per protection level, derived up front from a
        // single master draw: each level's corruption is a pure function
        // of `(master, level)`, so the levels can run on any number of
        // workers — and in any order — with byte-identical results.
        let master = rng.random::<u64>();
        let level_seeds = derive_subseeds(master, streams.level_data.len());
        let level_bits = streams.level_bits.clone();
        let stats: Vec<CorruptStats> = vapp_par::par_map(
            streams.level_data.iter_mut().enumerate().collect(),
            |_, (level, data)| {
                let scheme = self.policy.scheme_for_level(level);
                let bits = level_bits[level];
                let _lvl_span = vapp_obs::span!("core.level.corrupt", level, scheme, bits);
                corrupt_stream_bits(data, bits, scheme, raw_ber, exact_bch, level_seeds[level])
            },
        );
        let reg = vapp_obs::current();
        for (level, st) in stats.iter().enumerate() {
            let extra; // fallback for pivot levels beyond the ladder
            let names = match self.level_names.get(level) {
                Some(n) => n,
                None => {
                    extra = LevelCounterNames::new(level);
                    &extra
                }
            };
            reg.counter(&names.stored_bits).add(level_bits[level]);
            reg.counter(&names.flips).add(st.flips);
            reg.counter(&names.corrected).add(st.corrected);
            reg.counter(&names.uncorrectable).add(st.uncorrectable);
            reg.counter("core.flips.injected").add(st.flips);
        }
        merge_streams(stream, table, &streams)
    }

    /// Storage accounting for Fig. 11 and the headline numbers.
    pub fn report(&self, stream: &EncodedVideo, table: &PivotTable, pixels: u64) -> PipelineReport {
        let level_bits = table.level_bits();
        let level_schemes: Vec<EcScheme> = (0..level_bits.len())
            .map(|l| self.policy.scheme_for_level(l))
            .collect();
        let payload_bits: u64 = level_bits.iter().sum();
        let header_bits = stream.header_bits();
        let pivot_bits = table.bookkeeping_bits();
        let precise_overhead = EcScheme::PRECISE.overhead();

        let payload_cells: f64 = level_bits
            .iter()
            .zip(&level_schemes)
            .map(|(&b, s)| density::cells_for(b, s.overhead(), 3))
            .sum();
        let meta_cells = density::cells_for(header_bits + pivot_bits, precise_overhead, 3);
        let total_cells_mlc = payload_cells + meta_cells;

        let all_bits = payload_bits + header_bits;
        let cells_slc = density::cells_for(all_bits, 0.0, 1);
        let cells_ideal = density::cells_for(all_bits, 0.0, 3);
        let cells_uniform = density::cells_for(payload_bits, precise_overhead, 3)
            + density::cells_for(header_bits, precise_overhead, 3);

        let avg_payload_overhead = if payload_bits == 0 {
            0.0
        } else {
            level_bits
                .iter()
                .zip(&level_schemes)
                .map(|(&b, s)| s.overhead() * b as f64)
                .sum::<f64>()
                / payload_bits as f64
        };

        PipelineReport {
            pixels,
            payload_bits,
            header_bits,
            pivot_bits,
            level_bits,
            level_schemes,
            avg_payload_overhead,
            total_cells_mlc,
            cells_slc,
            cells_ideal,
            cells_uniform,
        }
    }
}

/// Per-stream corruption tally produced by [`corrupt_stream_bits`] and
/// folded into the per-level observability counters by `store_load`.
#[derive(Clone, Copy, Debug, Default)]
struct CorruptStats {
    /// Raw bit flips injected into the substrate (codeword space for BCH).
    flips: u64,
    /// 512-bit blocks decoded clean.
    clean: u64,
    /// Blocks with errors fully corrected.
    corrected: u64,
    /// Blocks past the code's correction radius.
    uncorrectable: u64,
}

/// Corrupts one protection stream in place (MSB-first bit order, matching
/// the codec payloads) and returns the corruption tally. The stream's
/// whole corruption derives from `seed`: the unprotected and analytic
/// paths run one private `StdRng` off it, and the exact-BCH path expands
/// it into one sub-seed per 512-bit block so blocks corrupt in parallel
/// with thread-count-invariant results.
fn corrupt_stream_bits(
    data: &mut [u8],
    bits: u64,
    scheme: EcScheme,
    raw_ber: f64,
    exact: bool,
    seed: u64,
) -> CorruptStats {
    let mut stats = CorruptStats::default();
    if bits == 0 || raw_ber == 0.0 {
        return stats;
    }
    match scheme {
        EcScheme::None => {
            let mut rng = StdRng::seed_from_u64(seed);
            for pos in pick_positions(&[0..bits], raw_ber, &mut rng) {
                bitstream::flip_bit(data, pos);
                stats.flips += 1;
            }
        }
        EcScheme::Bch(t) if !exact => {
            // Analytic block model: each 512-bit block fails independently
            // with the binomial-tail probability; a failed block keeps
            // t + 1 raw errors (the dominant tail term).
            let code = Bch::cached(t as usize);
            // One hash lookup after the first call: the binomial tails
            // behind these rates cost ~100 µs of `ln_gamma` sums, which
            // used to dominate analytic-mode `store_load`.
            let (q, p_corr) = vapp_storage::uber::cached_block_rates(code, raw_ber);
            let blocks = bits.div_ceil(DATA_BITS as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            for b in 0..blocks {
                if !rng.random_bool(q) {
                    continue;
                }
                stats.uncorrectable += 1;
                let start = b * DATA_BITS as u64;
                let end = ((b + 1) * DATA_BITS as u64).min(bits);
                for pos in pick_k_positions(&[start..end], t as u64 + 1, &mut rng) {
                    bitstream::flip_bit(data, pos);
                    stats.flips += 1;
                }
            }
            // Corrected-block tally for this mode is the binomial
            // expectation, computed deterministically — no extra draws.
            stats.corrected =
                ((blocks as f64 * p_corr).round() as u64).min(blocks - stats.uncorrectable);
            stats.clean = blocks - stats.uncorrectable - stats.corrected;
            let reg = vapp_obs::current();
            reg.counter("storage.bch.blocks").add(blocks);
            reg.counter("storage.bch.clean").add(stats.clean);
            reg.counter("storage.bch.corrected").add(stats.corrected);
            reg.counter("storage.bch.uncorrectable")
                .add(stats.uncorrectable);
        }
        EcScheme::Bch(t) => {
            // Exact model, bitsliced: sub-seeds stay per 512-bit block, but
            // blocks decode in 64-lane batches on the `vapp-storage` batch
            // engine, fed the bare injected *error patterns*. That is
            // outcome-equivalent to encode+flip+decode of the real content:
            // syndromes are linear and vanish on codewords, so
            // syndromes(cw + e) = syndromes(e), decode outcomes depend only
            // on syndromes, and the stream bytes change only on
            // Uncorrectable — where the decoder applies no corrections and
            // the damage delivered is exactly the injected flips that land
            // inside the block's live data bits (property-pinned in
            // `crates/storage/tests/batch_equivalence.rs`).
            let code = Bch::cached(t as usize);
            let blocks = bits.div_ceil(DATA_BITS as u64) as usize;
            vapp_obs::counter!("storage.bch.blocks", blocks as u64);
            let block_seeds = derive_subseeds(seed, blocks);
            let used = (bits.div_ceil(8) as usize).min(data.len());
            let group_bytes = (DATA_BITS / 8) * batch::LANES;
            let per_group = vapp_par::par_chunks(&mut data[..used], group_bytes, |g, chunk| {
                let base = g * batch::LANES;
                let group_blocks = (blocks - base).min(batch::LANES);
                let mut st = CorruptStats::default();
                // Flip positions depend only on each block's sub-seed,
                // never its contents, so they draw first: blocks with no
                // flips (the common case at realistic BERs) round-trip
                // clean without touching the code at all.
                let mut dirty: Vec<(usize, Vec<u64>)> = Vec::new();
                for lb in 0..group_blocks {
                    let mut rng = StdRng::seed_from_u64(block_seeds[base + lb]);
                    let flips =
                        pick_positions(&[0..code.codeword_bits() as u64], raw_ber, &mut rng);
                    if flips.is_empty() {
                        st.clean += 1;
                    } else {
                        st.flips += flips.len() as u64;
                        dirty.push((lb, flips));
                    }
                }
                if st.clean > 0 {
                    vapp_obs::counter!("storage.bch.clean", st.clean);
                }
                if dirty.is_empty() {
                    return st;
                }
                // One batch lane per dirty block, holding just its error
                // pattern; the batch decoder tallies the `storage.bch.*`
                // outcome counters itself.
                let mut errs = BlockBatch::zeroed(code, dirty.len());
                for (lane, (_, flips)) in dirty.iter().enumerate() {
                    for &f in flips {
                        errs.flip(lane, f as usize);
                    }
                }
                let outcomes = code.decode_batch(&mut errs);
                for ((lb, flips), outcome) in dirty.iter().zip(&outcomes) {
                    match outcome {
                        DecodeOutcome::Clean => st.clean += 1,
                        DecodeOutcome::Corrected(_) => st.corrected += 1,
                        DecodeOutcome::Uncorrectable => {
                            st.uncorrectable += 1;
                            // Deliver the damage as read: injected flips in
                            // the block's live data bits (MSB-first stream
                            // byte order); parity-region and padding flips
                            // are never part of the stored payload.
                            let start = (base + lb) as u64 * DATA_BITS as u64;
                            let nbits = (start + DATA_BITS as u64).min(bits) - start;
                            let block = &mut chunk[lb * (DATA_BITS / 8)..];
                            for &f in flips {
                                if f < nbits {
                                    block[(f / 8) as usize] ^= 0x80u8 >> (f % 8);
                                }
                            }
                        }
                    }
                }
                st
            });
            for st in per_group {
                stats.flips += st.flips;
                stats.clean += st.clean;
                stats.corrected += st.corrected;
                stats.uncorrectable += st.uncorrectable;
            }
        }
    }
    stats
}

/// Density/overhead accounting for one stored video (Fig. 11 inputs).
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineReport {
    /// Raw pixel count of the video.
    pub pixels: u64,
    /// Approximable payload bits.
    pub payload_bits: u64,
    /// Precise header bits (stream + frame headers).
    pub header_bits: u64,
    /// Precise pivot bookkeeping bits.
    pub pivot_bits: u64,
    /// Payload bits per protection level.
    pub level_bits: Vec<u64>,
    /// Scheme per protection level.
    pub level_schemes: Vec<EcScheme>,
    /// Bit-weighted average payload ECC overhead.
    pub avg_payload_overhead: f64,
    /// Cells used by this (variable-correction) design.
    pub total_cells_mlc: f64,
    /// Cells used by the SLC baseline (1 bit/cell, no ECC).
    pub cells_slc: f64,
    /// Cells used by an ideal error-free 3-bit/cell design.
    pub cells_ideal: f64,
    /// Cells used by uniform BCH-16 on the same MLC substrate.
    pub cells_uniform: f64,
}

impl PipelineReport {
    /// Fig. 11's x-axis: storage cells per encoded pixel.
    pub fn cells_per_pixel(&self) -> f64 {
        density::cells_per_pixel(self.total_cells_mlc, self.pixels)
    }

    /// Density relative to the SLC design (the paper reports 2.57x).
    pub fn density_vs_slc(&self) -> f64 {
        density::relative_density(self.total_cells_mlc, self.cells_slc)
    }

    /// Storage saved relative to uniformly corrected MLC (paper: 12.5%).
    pub fn savings_vs_uniform(&self) -> f64 {
        1.0 - self.total_cells_mlc / self.cells_uniform
    }

    /// Fraction of the error-correction overhead eliminated (paper: 47%).
    pub fn ec_overhead_reduction(&self) -> f64 {
        density::overhead_reduction(EcScheme::PRECISE.overhead(), self.avg_payload_overhead)
    }

    /// Serializes the report as a JSON object (the `vapp --report-json`
    /// payload). Schemes are rendered as their `Debug` strings (e.g.
    /// `"Bch(6)"`); derived ratios are included so downstream tooling
    /// does not re-implement the density arithmetic.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        use vapp_obs::json::{escape, fmt_f64};
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"pixels\":{},\"payload_bits\":{},\"header_bits\":{},\"pivot_bits\":{},",
            self.pixels, self.payload_bits, self.header_bits, self.pivot_bits
        );
        let _ = write!(
            s,
            "\"level_bits\":[{}],",
            self.level_bits
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = write!(
            s,
            "\"level_schemes\":[{}],",
            self.level_schemes
                .iter()
                .map(|sc| format!("\"{}\"", escape(&format!("{sc:?}"))))
                .collect::<Vec<_>>()
                .join(",")
        );
        for (key, v) in [
            ("avg_payload_overhead", self.avg_payload_overhead),
            ("total_cells_mlc", self.total_cells_mlc),
            ("cells_slc", self.cells_slc),
            ("cells_ideal", self.cells_ideal),
            ("cells_uniform", self.cells_uniform),
            ("cells_per_pixel", self.cells_per_pixel()),
            ("density_vs_slc", self.density_vs_slc()),
            ("savings_vs_uniform", self.savings_vs_uniform()),
            ("ec_overhead_reduction", self.ec_overhead_reduction()),
        ] {
            let _ = write!(s, "\"{key}\":{},", fmt_f64(v));
        }
        s.pop(); // trailing comma
        s.push('}');
        s
    }
}

/// Flips payload bits of a stream at *global* payload positions (the
/// address space of [`crate::classes::payload_layout`]). Positions at or
/// past the total payload size are an explicit no-op — they belong to no
/// frame, and clamping them onto the last frame would flip past its
/// payload.
pub fn flip_global_bits(stream: &mut EncodedVideo, positions: &[u64]) {
    let mut bases = Vec::with_capacity(stream.frames.len() + 1);
    let mut acc = 0u64;
    for f in &stream.frames {
        bases.push(acc);
        acc += f.payload_bits();
    }
    bases.push(acc);
    for &pos in positions {
        if pos >= acc {
            continue;
        }
        // Last frame whose base is <= pos; `partition_point` (unlike
        // `binary_search` on duplicate bases from zero-payload frames)
        // always lands on the frame that actually owns the bit.
        let frame = bases.partition_point(|&b| b <= pos) - 1;
        bitstream::flip_bit(&mut stream.frames[frame].payload, pos - bases[frame]);
    }
}

/// Measures a cumulative quality-loss curve (Fig. 9a / Fig. 10a style):
/// injects errors at each rate into `ranges` (global payload bit space),
/// decodes, and records the worst quality change across trials —
/// `PSNR(original, damaged) − PSNR(original, error-free)`, the paper's
/// "quality change (dB)" — applying the §6.4 forced-flip scaling at very
/// low rates.
pub fn measure_loss_curve(
    stream: &EncodedVideo,
    original: &Video,
    ranges: &[Range<u64>],
    rates: &[f64],
    trials: vapp_sim::Trials,
) -> crate::assignment::LossCurve {
    let n_rates = rates.len();
    let _span = vapp_obs::span!("core.loss.curve", n_rates);
    let error_free = decode(stream);
    let baseline = video_psnr(original, &error_free);
    let mut points = Vec::with_capacity(rates.len());
    let total_bits = vapp_sim::total_bits(ranges);
    for &rate in rates {
        let losses = trials.run(|_, rng| {
            let draw = pick_positions_forced(ranges, rate, rng);
            if draw.positions.is_empty() {
                return 0.0;
            }
            let mut dirty = stream.clone();
            flip_global_bits(&mut dirty, &draw.positions);
            let decoded = decode(&dirty);
            let delta = (video_psnr(original, &decoded) - baseline).min(0.0);
            if draw.forced {
                delta * prob_any_flip(total_bits, rate)
            } else {
                delta
            }
        });
        let worst = losses.iter().copied().fold(0.0f64, f64::min);
        points.push((rate, worst));
    }
    crate::assignment::LossCurve::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use crate::importance::ImportanceMap;
    use vapp_codec::{Encoder, EncoderConfig};
    use vapp_rand::SeedableRng;
    use vapp_workloads::{ClipSpec, SceneKind};

    fn setup() -> (EncodedVideo, Video, PivotTable) {
        let video = ClipSpec::new(64, 48, 6, SceneKind::MovingBlocks)
            .seed(11)
            .generate();
        let result = Encoder::new(EncoderConfig {
            keyint: 3,
            bframes: 1,
            ..Default::default()
        })
        .encode(&video);
        let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
        let table = PivotTable::build(&result.analysis, &imp, &[8.0, 64.0]);
        (result.stream, result.reconstruction, table)
    }

    #[test]
    fn precise_policy_is_lossless_in_practice() {
        let (stream, recon, table) = setup();
        let policy = StoragePolicy {
            ladder_levels: vec![EcScheme::Bch(16); 3],
            thresholds: vec![8.0, 64.0],
            raw_ber: 1e-3,
            exact_bch: false,
        };
        let store = ApproxStore::new(policy);
        let mut rng = StdRng::seed_from_u64(3);
        let loaded = store.store_load(&stream, &table, &mut rng);
        // Block failure at 1e-17.8: zero failures, stream byte-identical.
        assert_eq!(loaded, stream);
        assert_eq!(decode(&loaded), recon);
    }

    #[test]
    fn unprotected_policy_corrupts_and_still_decodes() {
        let (stream, recon, table) = setup();
        let store = ApproxStore::new(StoragePolicy::uniform(EcScheme::None, 1e-2));
        let mut rng = StdRng::seed_from_u64(4);
        let loaded = store.store_load(&stream, &table, &mut rng);
        assert_ne!(loaded, stream, "1e-2 over thousands of bits must flip");
        let decoded = decode(&loaded);
        assert_eq!(decoded.len(), recon.len());
        assert!(video_psnr(&recon, &decoded) < vapp_metrics::PSNR_CAP);
    }

    #[test]
    fn exact_bch_agrees_with_analytic_at_extremes() {
        let (stream, _, table) = setup();
        // At a raw BER so high BCH-6 almost always fails, both simulators
        // corrupt; at raw 0 both are clean.
        for &(raw, expect_dirty) in &[(0.0f64, false), (0.08, true)] {
            for exact in [false, true] {
                let mut policy = StoragePolicy::uniform(EcScheme::Bch(6), raw);
                policy.exact_bch = exact;
                let store = ApproxStore::new(policy);
                let mut rng = StdRng::seed_from_u64(5);
                let loaded = store.store_load(&stream, &table, &mut rng);
                assert_eq!(loaded != stream, expect_dirty, "raw {raw} exact {exact}");
            }
        }
    }

    #[test]
    fn report_arithmetic_is_consistent() {
        let (stream, _, table) = setup();
        let policy = StoragePolicy {
            ladder_levels: vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)],
            thresholds: vec![8.0, 64.0],
            raw_ber: 1e-3,
            exact_bch: false,
        };
        let store = ApproxStore::new(policy);
        let report = store.report(&stream, &table, 64 * 48 * 6);
        assert_eq!(report.payload_bits, stream.payload_bits());
        assert!(report.avg_payload_overhead > 0.0);
        assert!(report.avg_payload_overhead < EcScheme::Bch(16).overhead());
        assert!(report.total_cells_mlc < report.cells_uniform);
        assert!(report.total_cells_mlc > report.cells_ideal);
        assert!(report.density_vs_slc() > 2.0);
        assert!(report.ec_overhead_reduction() > 0.0);
        assert!(report.savings_vs_uniform() > 0.0);
        assert!(report.cells_per_pixel() > 0.0);
    }

    #[test]
    fn flip_global_bits_lands_in_the_right_frame() {
        let (stream, _, _) = setup();
        let mut dirty = stream.clone();
        let base1 = stream.payload_base_bits(1);
        flip_global_bits(&mut dirty, &[base1]); // first bit of frame 1
        assert_eq!(dirty.frames[0].payload, stream.frames[0].payload);
        assert_ne!(dirty.frames[1].payload, stream.frames[1].payload);
    }

    #[test]
    fn flip_global_bits_ignores_out_of_range_positions() {
        let (stream, _, _) = setup();
        let total = stream.payload_bits();
        let mut dirty = stream.clone();
        // One position exactly at the end of the payload space, one past
        // it: both must be no-ops (the old clamp flipped bits past the
        // last frame's payload).
        flip_global_bits(&mut dirty, &[total, total + 17, u64::MAX]);
        assert_eq!(dirty, stream);
        // In-range positions still land, alongside out-of-range ones.
        flip_global_bits(&mut dirty, &[total - 1, total]);
        assert_ne!(dirty, stream);
    }

    #[test]
    fn loss_curve_is_monotone_in_rate() {
        let (stream, recon, _) = setup();
        let error_free = decode(&stream);
        assert_eq!(error_free, recon);
        let total = stream.payload_bits();
        // Use the reconstruction as the "original" — the baseline is then
        // the PSNR cap, and damage pushes it down.
        let curve = measure_loss_curve(
            &stream,
            &recon,
            &[0..total],
            &[1e-5, 1e-3, 1e-2],
            vapp_sim::Trials::new(3, 77),
        );
        let l_low = curve.loss_at(1e-5);
        let l_high = curve.loss_at(1e-2);
        assert!(l_high <= l_low, "low {l_low} high {l_high}");
        assert!(l_high < 0.0, "1e-2 must hurt");
    }
}
