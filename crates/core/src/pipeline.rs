//! The end-to-end approximate video store: split → protect → store on an
//! error substrate → corrupt → correct → merge → decode → measure.
//!
//! The error channel is pluggable: a [`StoragePolicy`] carries an
//! `Arc<dyn Substrate>` (see [`vapp_storage::channel`]) and `store_load`
//! hands each protection stream to it with the level's ladder strength
//! `t` and a derived sub-seed. The paper's MLC PCM channel
//! (`mlc_pcm(1e-3)`) reproduces the pre-trait behaviour bit for bit; the
//! burst-erasure and data-in-video substrates rerun the same pipeline
//! under bursty and content-dependent damage.
//!
//! On the i.i.d. channels, storage simulation runs per protection stream
//! in 512-bit blocks with two simulators: `exact` drives the real BCH
//! encoder/decoder (used in tests and small runs), while the analytic
//! simulator draws block failures from the binomial-tail failure rate —
//! statistically equivalent and orders of magnitude faster, which
//! matters at 30 Monte Carlo trials per data point (§6.4).

use crate::assignment::{Assignment, EcScheme};
use crate::pivots::PivotTable;
use crate::streams::{merge_streams, split_streams};
use std::ops::Range;
use std::sync::Arc;
use vapp_codec::{bitstream, decode, EncodedVideo};
use vapp_media::Video;
use vapp_metrics::{prob_any_flip, video_psnr};
use vapp_rand::rngs::StdRng;
use vapp_rand::RngExt;
use vapp_sim::{derive_subseeds, pick_positions_forced};
use vapp_storage::channel::{mlc_pcm, CorruptTally, Substrate};
use vapp_storage::density;

/// How and where the payload is stored: the protection ladder plus the
/// error [`Substrate`] underneath it.
#[derive(Clone, Debug)]
pub struct StoragePolicy {
    /// Scheme per pivot level (weakest first). Each substrate realizes
    /// a scheme's strength `t` with its own code (BCH for i.i.d. MLC,
    /// interleaved Reed–Solomon for bursty channels).
    pub ladder_levels: Vec<EcScheme>,
    /// Importance thresholds between levels (for pivot construction).
    pub thresholds: Vec<f64>,
    /// The error channel the streams are stored on.
    pub substrate: Arc<dyn Substrate>,
    /// Use the exact block machinery instead of an analytic model where
    /// the substrate offers both (the MLC/SLC i.i.d. channels do).
    pub exact_bch: bool,
}

impl PartialEq for StoragePolicy {
    fn eq(&self, other: &Self) -> bool {
        // Substrates compare by identity surface: trait objects carry no
        // structural equality, and (name, raw BER, density) pins every
        // substrate the workspace constructs.
        self.ladder_levels == other.ladder_levels
            && self.thresholds == other.thresholds
            && self.exact_bch == other.exact_bch
            && self.substrate.name() == other.substrate.name()
            && self.substrate.raw_ber() == other.substrate.raw_ber()
            && self.substrate.bits_per_cell() == other.substrate.bits_per_cell()
    }
}

impl StoragePolicy {
    /// Builds the policy implied by a §7.2 assignment.
    pub fn from_assignment(a: &Assignment, substrate: Arc<dyn Substrate>) -> Self {
        let (thresholds, ladder_levels) = a.thresholds();
        StoragePolicy {
            ladder_levels,
            thresholds,
            substrate,
            exact_bch: true,
        }
    }

    /// The paper's configuration: a §7.2 assignment on MLC PCM at
    /// `raw_ber` (1e-3 at the 3-month scrub interval).
    pub fn from_assignment_mlc(a: &Assignment, raw_ber: f64) -> Self {
        StoragePolicy::from_assignment(a, mlc_pcm(raw_ber))
    }

    /// Uniform protection: every payload bit gets `scheme` (the paper's
    /// baseline design in Fig. 11).
    pub fn uniform(scheme: EcScheme, substrate: Arc<dyn Substrate>) -> Self {
        StoragePolicy {
            ladder_levels: vec![scheme],
            thresholds: Vec::new(),
            substrate,
            exact_bch: true,
        }
    }

    /// Uniform protection on MLC PCM at `raw_ber`.
    pub fn uniform_mlc(scheme: EcScheme, raw_ber: f64) -> Self {
        StoragePolicy::uniform(scheme, mlc_pcm(raw_ber))
    }

    /// Scheme for a pivot level index.
    pub fn scheme_for_level(&self, level: usize) -> EcScheme {
        self.ladder_levels[level.min(self.ladder_levels.len() - 1)]
    }
}

/// Names of the four per-level observability counters, precomputed once
/// per store so `store_load` does not allocate format strings per call.
#[derive(Clone, Debug)]
struct LevelCounterNames {
    stored_bits: String,
    flips: String,
    corrected: String,
    uncorrectable: String,
}

impl LevelCounterNames {
    fn new(level: usize) -> Self {
        LevelCounterNames {
            stored_bits: format!("core.level.{level}.stored_bits"),
            flips: format!("core.level.{level}.flips"),
            corrected: format!("core.level.{level}.corrected"),
            uncorrectable: format!("core.level.{level}.uncorrectable"),
        }
    }
}

/// The approximate store.
#[derive(Clone, Debug)]
pub struct ApproxStore {
    policy: StoragePolicy,
    /// One entry per ladder level (extra pivot levels fall back to an
    /// on-the-spot build in `store_load`, a cold path).
    level_names: Vec<LevelCounterNames>,
}

impl ApproxStore {
    /// Creates a store with a policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy has no levels or an invalid error rate.
    pub fn new(policy: StoragePolicy) -> Self {
        assert!(!policy.ladder_levels.is_empty(), "policy needs levels");
        let level_names = (0..policy.ladder_levels.len())
            .map(LevelCounterNames::new)
            .collect();
        ApproxStore {
            policy,
            level_names,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> &StoragePolicy {
        &self.policy
    }

    /// Simulates one store/load round trip: returns the (possibly
    /// corrupted) stream a reader would decode. Headers and pivots are
    /// precise by construction and pass through untouched (§4.4).
    pub fn store_load(
        &self,
        stream: &EncodedVideo,
        table: &PivotTable,
        rng: &mut StdRng,
    ) -> EncodedVideo {
        let substrate = &self.policy.substrate;
        let raw_ber = substrate.raw_ber();
        let exact_bch = self.policy.exact_bch;
        let _span = vapp_obs::span!("core.store.load", raw_ber, exact_bch);
        let mut streams = split_streams(stream, table);
        // One sub-seed per protection level, derived up front from a
        // single master draw: each level's corruption is a pure function
        // of `(master, level)`, so the levels can run on any number of
        // workers — and in any order — with byte-identical results. The
        // substrate contract (see `vapp_storage::channel`) extends the
        // same rule inside each level.
        let master = rng.random::<u64>();
        let level_seeds = derive_subseeds(master, streams.level_data.len());
        let level_bits = streams.level_bits.clone();
        let stats: Vec<CorruptTally> = vapp_par::par_map(
            streams.level_data.iter_mut().enumerate().collect(),
            |_, (level, data)| {
                let scheme = self.policy.scheme_for_level(level);
                let bits = level_bits[level];
                let _lvl_span = vapp_obs::span!("core.level.corrupt", level, scheme, bits);
                substrate.corrupt_stream(data, bits, scheme.t(), exact_bch, level_seeds[level])
            },
        );
        let reg = vapp_obs::current();
        for (level, st) in stats.iter().enumerate() {
            let extra; // fallback for pivot levels beyond the ladder
            let names = match self.level_names.get(level) {
                Some(n) => n,
                None => {
                    extra = LevelCounterNames::new(level);
                    &extra
                }
            };
            reg.counter(&names.stored_bits).add(level_bits[level]);
            reg.counter(&names.flips).add(st.flips);
            reg.counter(&names.corrected).add(st.corrected);
            reg.counter(&names.uncorrectable).add(st.uncorrectable);
            reg.counter("core.flips.injected").add(st.flips);
        }
        merge_streams(stream, table, &streams)
    }

    /// Storage accounting for Fig. 11 and the headline numbers, on this
    /// policy's substrate: its density (`bits_per_cell`) and its per-`t`
    /// realization overhead (BCH parity for MLC, RS parity for bursty
    /// channels) replace the old hardwired 3-bit/cell BCH math. The SLC
    /// baseline stays 1 bit/cell with no correction by definition.
    pub fn report(&self, stream: &EncodedVideo, table: &PivotTable, pixels: u64) -> PipelineReport {
        let substrate = &self.policy.substrate;
        let bpc = substrate.bits_per_cell();
        let level_bits = table.level_bits();
        let level_schemes: Vec<EcScheme> = (0..level_bits.len())
            .map(|l| self.policy.scheme_for_level(l))
            .collect();
        let payload_bits: u64 = level_bits.iter().sum();
        let header_bits = stream.header_bits();
        let pivot_bits = table.bookkeeping_bits();
        let precise_overhead = substrate.overhead(EcScheme::PRECISE.t());

        let payload_cells: f64 = level_bits
            .iter()
            .zip(&level_schemes)
            .map(|(&b, s)| density::cells_for(b, substrate.overhead(s.t()), bpc))
            .sum();
        let meta_cells = density::cells_for(header_bits + pivot_bits, precise_overhead, bpc);
        let total_cells_mlc = payload_cells + meta_cells;

        // The SLC baseline goes through the same trait surface as every
        // other substrate (1 bit/cell, overhead-free) rather than
        // hardcoded constants.
        let slc_baseline = vapp_storage::SlcSubstrate;
        let all_bits = payload_bits + header_bits;
        let cells_slc = density::cells_for(
            all_bits,
            Substrate::overhead(&slc_baseline, 0),
            Substrate::bits_per_cell(&slc_baseline),
        );
        let cells_ideal = density::cells_for(all_bits, 0.0, bpc);
        let cells_uniform = density::cells_for(payload_bits, precise_overhead, bpc)
            + density::cells_for(header_bits, precise_overhead, bpc);

        let avg_payload_overhead = if payload_bits == 0 {
            0.0
        } else {
            level_bits
                .iter()
                .zip(&level_schemes)
                .map(|(&b, s)| substrate.overhead(s.t()) * b as f64)
                .sum::<f64>()
                / payload_bits as f64
        };

        PipelineReport {
            pixels,
            payload_bits,
            header_bits,
            pivot_bits,
            level_bits,
            level_schemes,
            avg_payload_overhead,
            precise_overhead,
            total_cells_mlc,
            cells_slc,
            cells_ideal,
            cells_uniform,
        }
    }
}

/// Density/overhead accounting for one stored video (Fig. 11 inputs).
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineReport {
    /// Raw pixel count of the video.
    pub pixels: u64,
    /// Approximable payload bits.
    pub payload_bits: u64,
    /// Precise header bits (stream + frame headers).
    pub header_bits: u64,
    /// Precise pivot bookkeeping bits.
    pub pivot_bits: u64,
    /// Payload bits per protection level.
    pub level_bits: Vec<u64>,
    /// Scheme per protection level.
    pub level_schemes: Vec<EcScheme>,
    /// Bit-weighted average payload ECC overhead.
    pub avg_payload_overhead: f64,
    /// Overhead of the substrate's precise (strength-16) realization —
    /// the uniform-protection baseline the reduction is measured against.
    pub precise_overhead: f64,
    /// Cells used by this (variable-correction) design.
    pub total_cells_mlc: f64,
    /// Cells used by the SLC baseline (1 bit/cell, no ECC).
    pub cells_slc: f64,
    /// Cells used by an ideal error-free 3-bit/cell design.
    pub cells_ideal: f64,
    /// Cells used by uniform BCH-16 on the same MLC substrate.
    pub cells_uniform: f64,
}

impl PipelineReport {
    /// Fig. 11's x-axis: storage cells per encoded pixel.
    pub fn cells_per_pixel(&self) -> f64 {
        density::cells_per_pixel(self.total_cells_mlc, self.pixels)
    }

    /// Density relative to the SLC design (the paper reports 2.57x).
    pub fn density_vs_slc(&self) -> f64 {
        density::relative_density(self.total_cells_mlc, self.cells_slc)
    }

    /// Storage saved relative to uniformly corrected MLC (paper: 12.5%).
    pub fn savings_vs_uniform(&self) -> f64 {
        1.0 - self.total_cells_mlc / self.cells_uniform
    }

    /// Fraction of the error-correction overhead eliminated (paper: 47%)
    /// relative to uniform precise protection *on the same substrate*.
    pub fn ec_overhead_reduction(&self) -> f64 {
        density::overhead_reduction(self.precise_overhead, self.avg_payload_overhead)
    }

    /// Serializes the report as a JSON object (the `vapp --report-json`
    /// payload). Schemes are rendered as their `Debug` strings (e.g.
    /// `"Bch(6)"`); derived ratios are included so downstream tooling
    /// does not re-implement the density arithmetic.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        use vapp_obs::json::{escape, fmt_f64};
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"pixels\":{},\"payload_bits\":{},\"header_bits\":{},\"pivot_bits\":{},",
            self.pixels, self.payload_bits, self.header_bits, self.pivot_bits
        );
        let _ = write!(
            s,
            "\"level_bits\":[{}],",
            self.level_bits
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = write!(
            s,
            "\"level_schemes\":[{}],",
            self.level_schemes
                .iter()
                .map(|sc| format!("\"{}\"", escape(&format!("{sc:?}"))))
                .collect::<Vec<_>>()
                .join(",")
        );
        for (key, v) in [
            ("avg_payload_overhead", self.avg_payload_overhead),
            ("precise_overhead", self.precise_overhead),
            ("total_cells_mlc", self.total_cells_mlc),
            ("cells_slc", self.cells_slc),
            ("cells_ideal", self.cells_ideal),
            ("cells_uniform", self.cells_uniform),
            ("cells_per_pixel", self.cells_per_pixel()),
            ("density_vs_slc", self.density_vs_slc()),
            ("savings_vs_uniform", self.savings_vs_uniform()),
            ("ec_overhead_reduction", self.ec_overhead_reduction()),
        ] {
            let _ = write!(s, "\"{key}\":{},", fmt_f64(v));
        }
        s.pop(); // trailing comma
        s.push('}');
        s
    }
}

/// Flips payload bits of a stream at *global* payload positions (the
/// address space of [`crate::classes::payload_layout`]). Positions at or
/// past the total payload size are an explicit no-op — they belong to no
/// frame, and clamping them onto the last frame would flip past its
/// payload.
pub fn flip_global_bits(stream: &mut EncodedVideo, positions: &[u64]) {
    let mut bases = Vec::with_capacity(stream.frames.len() + 1);
    let mut acc = 0u64;
    for f in &stream.frames {
        bases.push(acc);
        acc += f.payload_bits();
    }
    bases.push(acc);
    for &pos in positions {
        if pos >= acc {
            continue;
        }
        // Last frame whose base is <= pos; `partition_point` (unlike
        // `binary_search` on duplicate bases from zero-payload frames)
        // always lands on the frame that actually owns the bit.
        let frame = bases.partition_point(|&b| b <= pos) - 1;
        bitstream::flip_bit(&mut stream.frames[frame].payload, pos - bases[frame]);
    }
}

/// Measures a cumulative quality-loss curve (Fig. 9a / Fig. 10a style):
/// injects errors at each rate into `ranges` (global payload bit space),
/// decodes, and records the worst quality change across trials —
/// `PSNR(original, damaged) − PSNR(original, error-free)`, the paper's
/// "quality change (dB)" — applying the §6.4 forced-flip scaling at very
/// low rates.
pub fn measure_loss_curve(
    stream: &EncodedVideo,
    original: &Video,
    ranges: &[Range<u64>],
    rates: &[f64],
    trials: vapp_sim::Trials,
) -> crate::assignment::LossCurve {
    let n_rates = rates.len();
    let _span = vapp_obs::span!("core.loss.curve", n_rates);
    let error_free = decode(stream);
    let baseline = video_psnr(original, &error_free);
    let mut points = Vec::with_capacity(rates.len());
    let total_bits = vapp_sim::total_bits(ranges);
    for &rate in rates {
        let losses = trials.run(|_, rng| {
            let draw = pick_positions_forced(ranges, rate, rng);
            if draw.positions.is_empty() {
                return 0.0;
            }
            let mut dirty = stream.clone();
            flip_global_bits(&mut dirty, &draw.positions);
            let decoded = decode(&dirty);
            let delta = (video_psnr(original, &decoded) - baseline).min(0.0);
            if draw.forced {
                delta * prob_any_flip(total_bits, rate)
            } else {
                delta
            }
        });
        let worst = losses.iter().copied().fold(0.0f64, f64::min);
        points.push((rate, worst));
    }
    crate::assignment::LossCurve::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use crate::importance::ImportanceMap;
    use vapp_codec::{Encoder, EncoderConfig};
    use vapp_rand::SeedableRng;
    use vapp_workloads::{ClipSpec, SceneKind};

    fn setup() -> (EncodedVideo, Video, PivotTable) {
        let video = ClipSpec::new(64, 48, 6, SceneKind::MovingBlocks)
            .seed(11)
            .generate();
        let result = Encoder::new(EncoderConfig {
            keyint: 3,
            bframes: 1,
            ..Default::default()
        })
        .encode(&video);
        let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
        let table = PivotTable::build(&result.analysis, &imp, &[8.0, 64.0]);
        (result.stream, result.reconstruction, table)
    }

    #[test]
    fn precise_policy_is_lossless_in_practice() {
        let (stream, recon, table) = setup();
        let policy = StoragePolicy {
            ladder_levels: vec![EcScheme::Bch(16); 3],
            thresholds: vec![8.0, 64.0],
            substrate: mlc_pcm(1e-3),
            exact_bch: false,
        };
        let store = ApproxStore::new(policy);
        let mut rng = StdRng::seed_from_u64(3);
        let loaded = store.store_load(&stream, &table, &mut rng);
        // Block failure at 1e-17.8: zero failures, stream byte-identical.
        assert_eq!(loaded, stream);
        assert_eq!(decode(&loaded), recon);
    }

    #[test]
    fn unprotected_policy_corrupts_and_still_decodes() {
        let (stream, recon, table) = setup();
        let store = ApproxStore::new(StoragePolicy::uniform_mlc(EcScheme::None, 1e-2));
        let mut rng = StdRng::seed_from_u64(4);
        let loaded = store.store_load(&stream, &table, &mut rng);
        assert_ne!(loaded, stream, "1e-2 over thousands of bits must flip");
        let decoded = decode(&loaded);
        assert_eq!(decoded.len(), recon.len());
        assert!(video_psnr(&recon, &decoded) < vapp_metrics::PSNR_CAP);
    }

    #[test]
    fn exact_bch_agrees_with_analytic_at_extremes() {
        let (stream, _, table) = setup();
        // At a raw BER so high BCH-6 almost always fails, both simulators
        // corrupt; at raw 0 both are clean.
        for &(raw, expect_dirty) in &[(0.0f64, false), (0.08, true)] {
            for exact in [false, true] {
                let mut policy = StoragePolicy::uniform_mlc(EcScheme::Bch(6), raw);
                policy.exact_bch = exact;
                let store = ApproxStore::new(policy);
                let mut rng = StdRng::seed_from_u64(5);
                let loaded = store.store_load(&stream, &table, &mut rng);
                assert_eq!(loaded != stream, expect_dirty, "raw {raw} exact {exact}");
            }
        }
    }

    #[test]
    fn report_arithmetic_is_consistent() {
        let (stream, _, table) = setup();
        let policy = StoragePolicy {
            ladder_levels: vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)],
            thresholds: vec![8.0, 64.0],
            substrate: mlc_pcm(1e-3),
            exact_bch: false,
        };
        let store = ApproxStore::new(policy);
        let report = store.report(&stream, &table, 64 * 48 * 6);
        assert_eq!(report.payload_bits, stream.payload_bits());
        assert!(report.avg_payload_overhead > 0.0);
        assert!(report.avg_payload_overhead < EcScheme::Bch(16).overhead());
        assert!(report.total_cells_mlc < report.cells_uniform);
        assert!(report.total_cells_mlc > report.cells_ideal);
        assert!(report.density_vs_slc() > 2.0);
        assert!(report.ec_overhead_reduction() > 0.0);
        assert!(report.savings_vs_uniform() > 0.0);
        assert!(report.cells_per_pixel() > 0.0);
    }

    #[test]
    fn flip_global_bits_lands_in_the_right_frame() {
        let (stream, _, _) = setup();
        let mut dirty = stream.clone();
        let base1 = stream.payload_base_bits(1);
        flip_global_bits(&mut dirty, &[base1]); // first bit of frame 1
        assert_eq!(dirty.frames[0].payload, stream.frames[0].payload);
        assert_ne!(dirty.frames[1].payload, stream.frames[1].payload);
    }

    #[test]
    fn flip_global_bits_ignores_out_of_range_positions() {
        let (stream, _, _) = setup();
        let total = stream.payload_bits();
        let mut dirty = stream.clone();
        // One position exactly at the end of the payload space, one past
        // it: both must be no-ops (the old clamp flipped bits past the
        // last frame's payload).
        flip_global_bits(&mut dirty, &[total, total + 17, u64::MAX]);
        assert_eq!(dirty, stream);
        // In-range positions still land, alongside out-of-range ones.
        flip_global_bits(&mut dirty, &[total - 1, total]);
        assert_ne!(dirty, stream);
    }

    #[test]
    fn loss_curve_is_monotone_in_rate() {
        let (stream, recon, _) = setup();
        let error_free = decode(&stream);
        assert_eq!(error_free, recon);
        let total = stream.payload_bits();
        // Use the reconstruction as the "original" — the baseline is then
        // the PSNR cap, and damage pushes it down.
        let curve = measure_loss_curve(
            &stream,
            &recon,
            &[0..total],
            &[1e-5, 1e-3, 1e-2],
            vapp_sim::Trials::new(3, 77),
        );
        let l_low = curve.loss_at(1e-5);
        let l_high = curve.loss_at(1e-2);
        assert!(l_high <= l_low, "low {l_low} high {l_high}");
        assert!(l_high < 0.0, "1e-2 must hurt");
    }
}
