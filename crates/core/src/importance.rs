//! Macroblock importance (paper §4.3).
//!
//! Importance of a macroblock ≈ the number of macroblocks a bit flip
//! there would damage, computed by the paper's eight-step algorithm:
//!
//! 1–4. On the *compensation-only* graph: initialise every node to 1,
//!      topologically sort, then walk the order backwards adding each
//!      node's weighted child importances. Afterwards each node holds the
//!      number of MBs an error would reach through compensation.
//! 5–8. On the *coding-only* graph (the in-slice scan chain, weight 1):
//!      seed with the compensation importances and do the same backward
//!      accumulation.
//!
//! Compensation deps append to coding deps but not vice versa (§4.3),
//! which is why the passes run in this order.

use crate::graph::DependencyGraph;

/// Per-macroblock importance values for a coded video.
#[derive(Clone, Debug, PartialEq)]
pub struct ImportanceMap {
    mbs_per_frame: usize,
    values: Vec<f64>,
}

impl ImportanceMap {
    /// Runs the full eight-step algorithm on a dependency graph.
    ///
    /// # Panics
    ///
    /// Panics if the compensation graph has a cycle (impossible for valid
    /// encoder output).
    pub fn compute(graph: &DependencyGraph) -> Self {
        let comp = compensation_pass(graph);
        let values = coding_pass(graph, comp);
        ImportanceMap {
            mbs_per_frame: graph.mbs_per_frame(),
            values,
        }
    }

    /// Streaming variant (paper §4.3.1): compensation importances are
    /// computed independently per GOP (the connected components between
    /// I-frames), then the coding pass runs per frame. Yields the same
    /// values as [`ImportanceMap::compute`] because no compensation edge
    /// crosses an I-frame boundary.
    pub fn compute_streaming(graph: &DependencyGraph) -> Self {
        let mut comp = vec![1.0f64; graph.node_count()];
        let per = graph.mbs_per_frame();
        let components = graph.gop_components();
        let segments = components.iter().copied().max().map_or(0, |m| m + 1);
        for seg in 0..segments {
            // Nodes of this component in ascending (topological) id order.
            let nodes: Vec<usize> = (0..graph.frames())
                .filter(|&ci| components[ci] == seg)
                .flat_map(|ci| ci * per..(ci + 1) * per)
                .collect();
            // Backward accumulation restricted to this component; closed
            // GOPs guarantee edges stay inside it.
            for &node in nodes.iter().rev() {
                let mut acc = 1.0;
                for &(dest, w) in graph.comp_children(node) {
                    debug_assert_eq!(
                        components[dest / per],
                        seg,
                        "compensation edge escapes its GOP component"
                    );
                    acc += w * comp[dest];
                }
                comp[node] = acc;
            }
        }
        let values = coding_pass(graph, comp);
        ImportanceMap {
            mbs_per_frame: graph.mbs_per_frame(),
            values,
        }
    }

    /// Importance of `(coding frame, mb)`.
    pub fn get(&self, frame: usize, mb: usize) -> f64 {
        self.values[frame * self.mbs_per_frame + mb]
    }

    /// All values, node-id order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Macroblocks per frame.
    pub fn mbs_per_frame(&self) -> usize {
        self.mbs_per_frame
    }

    /// The largest importance in the video.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(1.0, f64::max)
    }

    /// The importance class of a value on the paper's log2 scale: the
    /// smallest `i` with `importance ≤ 2^i` (§7.2).
    pub fn class_of(value: f64) -> u32 {
        assert!(value >= 0.0, "importance cannot be negative");
        value.max(1.0).log2().ceil() as u32
    }
}

/// Steps 1–4 on the full graph (global topological order).
fn compensation_pass(graph: &DependencyGraph) -> Vec<f64> {
    let order = graph
        .topo_sort_comp()
        .expect("compensation graph must be acyclic");
    let mut imp = vec![1.0f64; graph.node_count()];
    for &node in order.iter().rev() {
        let mut acc = 1.0;
        for &(dest, w) in graph.comp_children(node) {
            acc += w * imp[dest];
        }
        imp[node] = acc;
    }
    imp
}

/// Steps 5–8: per-frame coding chains (weight-1 linked lists).
fn coding_pass(graph: &DependencyGraph, seed: Vec<f64>) -> Vec<f64> {
    let mut imp = seed;
    // The chain within each slice: process in reverse node order — every
    // coding child has a higher id.
    for node in (0..graph.node_count()).rev() {
        if let Some(next) = graph.coding_child(node) {
            imp[node] += imp[next];
        }
    }
    imp
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapp_codec::{Encoder, EncoderConfig, FrameType};
    use vapp_workloads::{ClipSpec, SceneKind};

    fn importance_for(keyint: u16, bframes: u8, slices: u8) -> (DependencyGraph, ImportanceMap) {
        let video = ClipSpec::new(64, 48, 12, SceneKind::MovingBlocks)
            .seed(4)
            .generate();
        let rec = Encoder::new(EncoderConfig {
            keyint,
            bframes,
            slices,
            ..Default::default()
        })
        .encode(&video)
        .analysis;
        let g = DependencyGraph::from_analysis(&rec);
        let m = ImportanceMap::compute(&g);
        (g, m)
    }

    #[test]
    fn importance_at_least_one() {
        let (_, m) = importance_for(6, 2, 1);
        assert!(m.values().iter().all(|&v| v >= 1.0 - 1e-12));
        assert!(m.max() > 1.0);
    }

    #[test]
    fn within_frame_importance_is_strictly_decreasing() {
        // Paper §4.4: the coding chain imposes a strictly decreasing order
        // of MBs within a frame (per slice) — the basis for pivots.
        let (g, m) = importance_for(6, 2, 1);
        let per = g.mbs_per_frame();
        for f in 0..g.frames() {
            for mb in 0..per - 1 {
                let a = m.get(f, mb);
                let b = m.get(f, mb + 1);
                assert!(a > b, "frame {f} mb {mb}: {a} !> {b}");
            }
        }
    }

    #[test]
    fn early_frames_matter_more_than_late_b_frames() {
        let (g, m) = importance_for(12, 2, 1);
        let per = g.mbs_per_frame();
        // The I frame's first MB damages (nearly) everything; a B frame's
        // last MB damages only itself.
        let i_first = m.get(0, 0);
        let mut b_last = f64::MAX;
        for (ci, &t) in g.frame_types().iter().enumerate() {
            if t == FrameType::B {
                b_last = b_last.min(m.get(ci, per - 1));
            }
        }
        assert!(i_first > 10.0 * b_last, "I {i_first} vs B {b_last}");
    }

    #[test]
    fn unreferenced_b_frame_tail_has_importance_one() {
        let (g, m) = importance_for(12, 2, 1);
        let per = g.mbs_per_frame();
        // The last MB of a B frame with no intra dependents: importance 1.
        let mut found = false;
        for (ci, &t) in g.frame_types().iter().enumerate() {
            if t != FrameType::B {
                continue;
            }
            let node = ci * per + per - 1;
            if g.comp_children(node).is_empty() {
                assert!((m.get(ci, per - 1) - 1.0).abs() < 1e-9);
                found = true;
            }
        }
        assert!(found, "no unreferenced B-frame tail found");
    }

    #[test]
    fn streaming_matches_global() {
        let video = ClipSpec::new(64, 48, 16, SceneKind::Panning)
            .seed(5)
            .generate();
        let rec = Encoder::new(EncoderConfig {
            keyint: 4,
            bframes: 1,
            ..Default::default()
        })
        .encode(&video)
        .analysis;
        let g = DependencyGraph::from_analysis(&rec);
        let global = ImportanceMap::compute(&g);
        let streaming = ImportanceMap::compute_streaming(&g);
        for (a, b) in global.values().iter().zip(streaming.values()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn class_of_log2_scale() {
        assert_eq!(ImportanceMap::class_of(1.0), 0);
        assert_eq!(ImportanceMap::class_of(2.0), 1);
        assert_eq!(ImportanceMap::class_of(2.1), 2);
        assert_eq!(ImportanceMap::class_of(1000.0), 10);
        assert_eq!(ImportanceMap::class_of(0.5), 0);
    }

    #[test]
    fn shorter_gops_reduce_max_importance() {
        let (_, long_gop) = importance_for(12, 0, 1);
        let (_, short_gop) = importance_for(3, 0, 1);
        assert!(
            long_gop.max() > short_gop.max(),
            "long {} vs short {}",
            long_gop.max(),
            short_gop.max()
        );
    }
}
