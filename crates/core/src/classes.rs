//! Grouping bits by importance: equal-storage bins (§7.1) and log2
//! importance classes (§7.2).

use crate::importance::ImportanceMap;
use std::ops::Range;
use vapp_codec::AnalysisRecord;

/// Bit offset of each coded frame's payload within the concatenation of
/// all payloads (the global approximate-storage address space). One extra
/// entry at the end holds the total.
pub fn payload_layout(rec: &AnalysisRecord) -> Vec<u64> {
    let mut bases = Vec::with_capacity(rec.frames.len() + 1);
    let mut acc = 0u64;
    for f in &rec.frames {
        bases.push(acc);
        acc += f.mbs.last().map_or(0, |m| m.bit_end);
    }
    bases.push(acc);
    bases
}

/// `(importance, global payload bit range)` for every macroblock.
pub fn mb_bit_ranges(rec: &AnalysisRecord, imp: &ImportanceMap) -> Vec<(f64, Range<u64>)> {
    let bases = payload_layout(rec);
    let mut out = Vec::with_capacity(rec.total_mbs());
    for f in &rec.frames {
        let base = bases[f.coding_index];
        for (mb, a) in f.mbs.iter().enumerate() {
            out.push((
                imp.get(f.coding_index, mb),
                base + a.bit_start..base + a.bit_end,
            ));
        }
    }
    out
}

/// One equal-storage bin (paper §7.1): bins are equal in bits so that
/// quality differences between them come from importance, not from flip
/// counts.
#[derive(Clone, Debug, PartialEq)]
pub struct Bin {
    /// Bin number, 0 = least important.
    pub index: usize,
    /// Bits covered.
    pub bits: u64,
    /// Largest macroblock importance in the bin (Fig. 9b's y-value).
    pub max_importance: f64,
    /// Global payload bit ranges belonging to the bin.
    pub ranges: Vec<Range<u64>>,
}

/// Sorts all macroblocks by importance and splits them into `n_bins`
/// bins of (nearly) equal storage. Bin 0 holds the least important bits.
///
/// # Panics
///
/// Panics if `n_bins` is zero.
pub fn equal_storage_bins(rec: &AnalysisRecord, imp: &ImportanceMap, n_bins: usize) -> Vec<Bin> {
    assert!(n_bins > 0, "need at least one bin");
    let mut mbs = mb_bit_ranges(rec, imp);
    mbs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("importances are finite"));
    let total: u64 = mbs.iter().map(|(_, r)| r.end - r.start).sum();

    let mut bins = Vec::with_capacity(n_bins);
    let mut cur = Bin {
        index: 0,
        bits: 0,
        max_importance: 0.0,
        ranges: Vec::new(),
    };
    let mut cumulative = 0u64;
    for (importance, range) in mbs {
        let len = range.end - range.start;
        cur.bits += len;
        cumulative += len;
        cur.max_importance = cur.max_importance.max(importance);
        cur.ranges.push(range);
        // Close the bin once the cumulative total crosses its share — the
        // boundary is cumulative so oversized macroblocks cannot starve
        // later bins.
        let boundary = (bins.len() as u64 + 1) * total / n_bins as u64;
        if cumulative >= boundary && bins.len() < n_bins - 1 {
            let index = cur.index;
            bins.push(std::mem::replace(
                &mut cur,
                Bin {
                    index: index + 1,
                    bits: 0,
                    max_importance: 0.0,
                    ranges: Vec::new(),
                },
            ));
        }
    }
    if cur.bits > 0 || bins.is_empty() {
        bins.push(cur);
    }
    vapp_obs::debug!(
        "core.classes.bins",
        "{} bins over {} bits (requested {})",
        bins.len(),
        total,
        n_bins
    );
    bins
}

/// One log2 importance class (paper §7.2): class `exp` holds macroblocks
/// with `2^(exp-1) < importance ≤ 2^exp` (class 0: importance ≤ 1).
#[derive(Clone, Debug, PartialEq)]
pub struct Class {
    /// The class exponent `i` (importance ≤ 2^i).
    pub exp: u32,
    /// Bits owned by exactly this class.
    pub bits: u64,
    /// Macroblock count in the class.
    pub mbs: usize,
    /// Global payload bit ranges of this class.
    pub ranges: Vec<Range<u64>>,
}

/// Partitions macroblocks into log2 importance classes (ascending `exp`,
/// empty classes omitted). Cumulative views ("all MBs with importance
/// ≤ 2^i", as Fig. 10 plots) are prefix unions of the returned classes.
pub fn importance_classes(rec: &AnalysisRecord, imp: &ImportanceMap) -> Vec<Class> {
    let mut by_exp: std::collections::BTreeMap<u32, Class> = std::collections::BTreeMap::new();
    for (importance, range) in mb_bit_ranges(rec, imp) {
        let exp = ImportanceMap::class_of(importance);
        let class = by_exp.entry(exp).or_insert_with(|| Class {
            exp,
            bits: 0,
            mbs: 0,
            ranges: Vec::new(),
        });
        class.bits += range.end - range.start;
        class.mbs += 1;
        class.ranges.push(range);
    }
    let classes: Vec<Class> = by_exp.into_values().collect();
    vapp_obs::debug!(
        "core.classes.partition",
        "{} log2 classes, exponents {:?}",
        classes.len(),
        classes.iter().map(|c| c.exp).collect::<Vec<_>>()
    );
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use vapp_codec::{Encoder, EncoderConfig};
    use vapp_workloads::{ClipSpec, SceneKind};

    fn setup() -> (AnalysisRecord, ImportanceMap) {
        let video = ClipSpec::new(64, 48, 10, SceneKind::MovingBlocks)
            .seed(6)
            .generate();
        let rec = Encoder::new(EncoderConfig {
            keyint: 5,
            bframes: 1,
            ..Default::default()
        })
        .encode(&video)
        .analysis;
        let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&rec));
        (rec, imp)
    }

    #[test]
    fn layout_accumulates_frame_payloads() {
        let (rec, _) = setup();
        let bases = payload_layout(&rec);
        assert_eq!(bases.len(), rec.frames.len() + 1);
        assert!(bases.windows(2).all(|w| w[0] <= w[1]));
        assert!(*bases.last().unwrap() > 0);
    }

    #[test]
    fn mb_ranges_tile_the_payload() {
        let (rec, imp) = setup();
        let mut ranges: Vec<Range<u64>> = mb_bit_ranges(&rec, &imp)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        ranges.sort_by_key(|r| r.start);
        let total = *payload_layout(&rec).last().unwrap();
        let covered: u64 = ranges.iter().map(|r| r.end - r.start).sum();
        assert_eq!(covered, total, "MB spans must cover the payload exactly");
        for w in ranges.windows(2) {
            assert!(w[0].end <= w[1].start, "MB spans overlap");
        }
    }

    #[test]
    fn bins_are_equal_storage_and_ordered() {
        let (rec, imp) = setup();
        let bins = equal_storage_bins(&rec, &imp, 16);
        assert_eq!(bins.len(), 16);
        let total: u64 = bins.iter().map(|b| b.bits).sum();
        let expect = *payload_layout(&rec).last().unwrap();
        assert_eq!(total, expect);
        // Nearly equal size: every bin within 2x of the ideal share.
        let target = expect / 16;
        for b in &bins[..15] {
            assert!(
                b.bits > target / 2 && b.bits < target * 2,
                "bin {} holds {} bits (target {target})",
                b.index,
                b.bits
            );
        }
        // Max importance must not decrease with bin index.
        for w in bins.windows(2) {
            assert!(w[0].max_importance <= w[1].max_importance);
        }
    }

    #[test]
    fn classes_partition_all_bits() {
        let (rec, imp) = setup();
        let classes = importance_classes(&rec, &imp);
        assert!(!classes.is_empty());
        let total: u64 = classes.iter().map(|c| c.bits).sum();
        assert_eq!(total, *payload_layout(&rec).last().unwrap());
        // Exponents strictly ascending, values plausible.
        for w in classes.windows(2) {
            assert!(w[0].exp < w[1].exp);
        }
        let max_exp = classes.last().unwrap().exp;
        assert_eq!(max_exp, ImportanceMap::class_of(imp.max()));
    }

    #[test]
    fn single_bin_holds_everything() {
        let (rec, imp) = setup();
        let bins = equal_storage_bins(&rec, &imp, 1);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].bits, *payload_layout(&rec).last().unwrap());
    }
}
