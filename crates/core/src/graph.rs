//! The weighted macroblock dependency graph (paper §4).
//!
//! Nodes are macroblocks (one per MB per coded frame); edges carry the
//! visual damage an error in the *source* MB would transfer to the
//! *destination* MB:
//!
//! * **compensation edges** (§4.1) — pixel-domain references: motion
//!   compensation (possibly across several source MBs per block, weights
//!   proportional to referenced pixels) and intra prediction (spatial).
//!   Incoming weights sum to 1 for every predicted MB.
//! * **coding edges** (§4.2) — the static entropy/metadata propagation
//!   pattern: within a slice, each MB damages its scan-order successor
//!   with weight 1 (a weighted linked list).

use vapp_codec::{AnalysisRecord, FrameType};

/// A graph node (one macroblock of one coded frame).
pub type NodeId = usize;

/// The dependency graph in forward (source → dependents) form.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    mbs_per_frame: usize,
    frames: usize,
    /// Compensation dependents of each node: `(destination, weight)`.
    comp_children: Vec<Vec<(NodeId, f64)>>,
    /// Coding dependent of each node (scan-order successor in the slice).
    coding_child: Vec<Option<NodeId>>,
    /// Frame type per coding index (for per-GOP streaming evaluation).
    frame_types: Vec<FrameType>,
    /// Display index per coding index.
    display_indices: Vec<usize>,
}

impl DependencyGraph {
    /// Builds the graph from an encoder analysis record.
    pub fn from_analysis(rec: &AnalysisRecord) -> Self {
        let mbs_per_frame = rec.mbs_per_frame();
        let frames = rec.frames.len();
        let n = mbs_per_frame * frames;
        let mut comp_children: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        let mut coding_child: Vec<Option<NodeId>> = vec![None; n];
        let mut frame_types = Vec::with_capacity(frames);
        let mut display_indices = Vec::with_capacity(frames);

        for f in &rec.frames {
            frame_types.push(f.frame_type);
            display_indices.push(f.display_index);
            let base = f.coding_index * mbs_per_frame;
            // Compensation edges: recorded per destination MB as incoming
            // references; invert to source → destination. Aggregate
            // duplicates (paper: "multiple dependencies from one MB to
            // another can be aggregated by adding up their weights").
            for (mb, a) in f.mbs.iter().enumerate() {
                let dest = base + mb;
                for d in &a.deps {
                    let src = d.frame * mbs_per_frame + d.mb;
                    if let Some(entry) = comp_children[src].iter_mut().find(|(c, _)| *c == dest) {
                        entry.1 += d.weight;
                    } else {
                        comp_children[src].push((dest, d.weight));
                    }
                }
            }
            // Coding edges: a chain in scan order, restarting per slice.
            let mut starts = f.slice_starts.clone();
            starts.sort_unstable();
            for mb in 0..f.mbs.len() {
                let next = mb + 1;
                if next >= f.mbs.len() || starts.contains(&next) {
                    continue;
                }
                coding_child[base + mb] = Some(base + next);
            }
        }
        DependencyGraph {
            mbs_per_frame,
            frames,
            comp_children,
            coding_child,
            frame_types,
            display_indices,
        }
    }

    /// Total nodes.
    pub fn node_count(&self) -> usize {
        self.mbs_per_frame * self.frames
    }

    /// Macroblocks per frame.
    pub fn mbs_per_frame(&self) -> usize {
        self.mbs_per_frame
    }

    /// Number of coded frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Frame types in coding order.
    pub fn frame_types(&self) -> &[FrameType] {
        &self.frame_types
    }

    /// Display index of each coding-order frame.
    pub fn display_indices(&self) -> &[usize] {
        &self.display_indices
    }

    /// Assigns every coded frame to its GOP component: frames whose
    /// display index falls between consecutive I frames belong together.
    /// With closed GOPs no dependency edge crosses these components
    /// (paper §4.3.1).
    pub fn gop_components(&self) -> Vec<usize> {
        // I-frame display positions, sorted.
        let mut i_displays: Vec<usize> = self
            .frame_types
            .iter()
            .zip(&self.display_indices)
            .filter(|(t, _)| **t == FrameType::I)
            .map(|(_, &d)| d)
            .collect();
        i_displays.sort_unstable();
        self.display_indices
            .iter()
            .map(|&d| match i_displays.binary_search(&d) {
                Ok(k) => k,
                Err(k) => k.saturating_sub(1),
            })
            .collect()
    }

    /// Compensation dependents of `node`.
    pub fn comp_children(&self, node: NodeId) -> &[(NodeId, f64)] {
        &self.comp_children[node]
    }

    /// Coding dependent of `node` (the scan-order successor in the slice).
    pub fn coding_child(&self, node: NodeId) -> Option<NodeId> {
        self.coding_child[node]
    }

    /// Sum of incoming compensation weights per node (= 1 for predicted
    /// MBs, 0 for unpredicted ones) — a graph invariant check.
    pub fn incoming_comp_weights(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.node_count()];
        for children in &self.comp_children {
            for &(dest, weight) in children {
                w[dest] += weight;
            }
        }
        w
    }

    /// Kahn topological sort of the *compensation* subgraph.
    ///
    /// The paper's algorithm (§4.3 steps 3/7) sorts topologically; for
    /// this codec, coding order already is topological (references are
    /// coded first, intra sources precede their dependents in scan order),
    /// and this method verifies it while producing the order.
    ///
    /// Returns `None` if a cycle exists (impossible for valid encodes).
    pub fn topo_sort_comp(&self) -> Option<Vec<NodeId>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.node_count();
        let mut indegree = vec![0usize; n];
        for children in &self.comp_children {
            for &(dest, _) in children {
                indegree[dest] += 1;
            }
        }
        // Min-heap on node id for a deterministic order.
        let mut ready: BinaryHeap<Reverse<NodeId>> =
            (0..n).filter(|&i| indegree[i] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(node)) = ready.pop() {
            order.push(node);
            for &(dest, _) in &self.comp_children[node] {
                indegree[dest] -= 1;
                if indegree[dest] == 0 {
                    ready.push(Reverse(dest));
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapp_codec::{Encoder, EncoderConfig};
    use vapp_workloads::{ClipSpec, SceneKind};

    fn analyzed(bframes: u8, slices: u8) -> AnalysisRecord {
        let video = ClipSpec::new(64, 48, 8, SceneKind::MovingBlocks)
            .seed(2)
            .generate();
        Encoder::new(EncoderConfig {
            keyint: 8,
            bframes,
            slices,
            ..Default::default()
        })
        .encode(&video)
        .analysis
    }

    #[test]
    fn incoming_comp_weights_are_one_or_zero() {
        let rec = analyzed(2, 1);
        let g = DependencyGraph::from_analysis(&rec);
        for (node, &w) in g.incoming_comp_weights().iter().enumerate() {
            assert!(
                w.abs() < 1e-9 || (w - 1.0).abs() < 1e-6,
                "node {node}: incoming weight {w}"
            );
        }
    }

    #[test]
    fn coding_chain_covers_each_frame() {
        let rec = analyzed(0, 1);
        let g = DependencyGraph::from_analysis(&rec);
        let per = g.mbs_per_frame();
        for f in 0..g.frames() {
            for mb in 0..per - 1 {
                assert_eq!(g.coding_child(f * per + mb), Some(f * per + mb + 1));
            }
            assert_eq!(g.coding_child(f * per + per - 1), None);
        }
    }

    #[test]
    fn slices_break_the_coding_chain() {
        let rec = analyzed(0, 2);
        let g = DependencyGraph::from_analysis(&rec);
        // With two slices over 3 MB rows (64x48 → 4x3 MBs), the chain must
        // break at the slice boundary (start of row 2 = MB 8).
        let f0 = &rec.frames[0];
        assert_eq!(f0.slice_starts.len(), 2);
        let boundary = f0.slice_starts[1];
        assert_eq!(g.coding_child(boundary - 1), None);
    }

    #[test]
    fn topo_sort_exists_and_matches_natural_order() {
        let rec = analyzed(2, 1);
        let g = DependencyGraph::from_analysis(&rec);
        let order = g.topo_sort_comp().expect("comp graph is a DAG");
        assert_eq!(order.len(), g.node_count());
        // Verify the natural (node id) order is also topological: every
        // comp edge goes from a lower to a higher id.
        for src in 0..g.node_count() {
            for &(dest, _) in g.comp_children(src) {
                assert!(dest > src, "edge {src} -> {dest} violates coding order");
            }
        }
    }

    #[test]
    fn b_frames_have_no_dependents() {
        let rec = analyzed(2, 1);
        let g = DependencyGraph::from_analysis(&rec);
        let per = g.mbs_per_frame();
        for (ci, &ft) in g.frame_types().iter().enumerate() {
            if ft != FrameType::B {
                continue;
            }
            for mb in 0..per {
                // B MBs may have *intra* (same-frame) dependents but no
                // temporal ones: nothing references a B frame.
                for &(dest, _) in g.comp_children(ci * per + mb) {
                    assert_eq!(dest / per, ci, "B frame referenced temporally");
                }
            }
        }
    }
}
