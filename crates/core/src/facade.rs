//! One-call facade over the whole analysis flow.
//!
//! [`VideoApp`] bundles encode → dependency graph → importance, and
//! [`Processed`] exposes the derived views (bins, classes, pivots) so an
//! application can go from raw video to an approximate-storage layout in
//! a handful of lines.

use crate::classes::{equal_storage_bins, importance_classes, Bin, Class};
use crate::graph::DependencyGraph;
use crate::importance::ImportanceMap;
use crate::pivots::PivotTable;
use vapp_codec::{AnalysisRecord, EncodedVideo, Encoder, EncoderConfig};
use vapp_media::Video;

/// The VideoApp analysis front end.
///
/// # Example
///
/// ```
/// use vapp_media::{Frame, Video};
/// use videoapp::VideoApp;
///
/// let video = Video::from_frames(vec![Frame::filled(32, 32, 90); 4], 25.0);
/// let processed = VideoApp::default().process(&video);
/// assert!(processed.importance.max() >= 1.0);
/// let table = processed.pivot_table(&[8.0, 64.0]);
/// assert_eq!(table.levels, 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VideoApp {
    encoder: Encoder,
}

impl VideoApp {
    /// Creates a front end with an encoder configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`vapp_codec::EncoderConfig`]).
    pub fn new(cfg: EncoderConfig) -> Self {
        VideoApp {
            encoder: Encoder::new(cfg),
        }
    }

    /// Encodes a raw video and runs the full importance analysis.
    ///
    /// # Panics
    ///
    /// Panics if `video` is empty.
    pub fn process(&self, video: &Video) -> Processed {
        let frames = video.len();
        let _span = vapp_obs::span!("core.video.process", frames);
        let result = self.encoder.encode(video);
        let graph = {
            let _g = vapp_obs::span!("core.graph.build");
            DependencyGraph::from_analysis(&result.analysis)
        };
        let importance = {
            let _i = vapp_obs::span!("core.importance.compute");
            ImportanceMap::compute(&graph)
        };
        vapp_obs::debug!(
            "core.video.process",
            "{} frames, {} payload bits, max importance {:.1}",
            frames,
            result.stream.payload_bits(),
            importance.max()
        );
        Processed {
            stream: result.stream,
            reconstruction: result.reconstruction,
            analysis: result.analysis,
            graph,
            importance,
        }
    }
}

/// The products of [`VideoApp::process`].
#[derive(Clone, Debug)]
pub struct Processed {
    /// The coded stream (precise headers + approximable payload).
    pub stream: EncodedVideo,
    /// The encoder's reconstruction (= error-free decode), display order.
    pub reconstruction: Video,
    /// Per-macroblock bit spans and dependencies.
    pub analysis: AnalysisRecord,
    /// The weighted dependency graph.
    pub graph: DependencyGraph,
    /// Per-macroblock importance.
    pub importance: ImportanceMap,
}

impl Processed {
    /// Equal-storage importance bins (paper §7.1).
    pub fn bins(&self, n_bins: usize) -> Vec<Bin> {
        equal_storage_bins(&self.analysis, &self.importance, n_bins)
    }

    /// Log2 importance classes (paper §7.2).
    pub fn classes(&self) -> Vec<Class> {
        importance_classes(&self.analysis, &self.importance)
    }

    /// Builds the pivot table for the given importance thresholds.
    pub fn pivot_table(&self, thresholds: &[f64]) -> PivotTable {
        PivotTable::build(&self.analysis, &self.importance, thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapp_workloads::{ClipSpec, SceneKind};

    #[test]
    fn facade_produces_consistent_views() {
        let video = ClipSpec::new(64, 48, 8, SceneKind::MovingBlocks)
            .seed(77)
            .generate();
        let processed = VideoApp::new(EncoderConfig {
            keyint: 4,
            bframes: 1,
            ..Default::default()
        })
        .process(&video);

        assert_eq!(processed.reconstruction.len(), video.len());
        let bins = processed.bins(8);
        assert_eq!(bins.len(), 8);
        let classes = processed.classes();
        let bin_bits: u64 = bins.iter().map(|b| b.bits).sum();
        let class_bits: u64 = classes.iter().map(|c| c.bits).sum();
        assert_eq!(bin_bits, class_bits);
        let table = processed.pivot_table(&[4.0]);
        assert_eq!(table.level_bits().iter().sum::<u64>(), bin_bits);
    }

    #[test]
    fn default_facade_works() {
        let video = ClipSpec::new(48, 32, 3, SceneKind::NoisyStatic)
            .seed(1)
            .generate();
        let processed = VideoApp::default().process(&video);
        assert!(processed.stream.payload_bits() > 0);
    }
}
