//! Splitting a coded video into per-reliability streams (paper §4.4,
//! §5.3) and encrypting them.
//!
//! Each protection level becomes one stream: the pivot table says which
//! payload bit ranges belong to which level, and the split simply
//! concatenates each level's bits across all frames. Frame headers and
//! pivots stay outside (precise storage). Streams can be encrypted
//! independently with an approximation-compatible mode; per-stream IVs
//! derive from a master IV and the stream id (§5.3).

use crate::pivots::PivotTable;
use vapp_codec::bitstream::{read_span, write_span};
use vapp_codec::EncodedVideo;
use vapp_crypto::{derive_stream_iv, Block, CipherMode, Key};

/// Bits moved per [`read_span`]/[`write_span`] step when relocating a
/// bit range between buffers in the generic (head/tail/out-of-bounds)
/// path.
const SPAN_BITS: usize = 48;

/// Copies `count` bits from `src` starting at `src_bit` to `dst` starting
/// at `dst_bit` (MSB-first on both sides). Inherits the span helpers'
/// totality: source bits past the end read as zero, destination bytes
/// past the end are skipped. Whole destination bytes move through a
/// shift-merge bulk path (a `u64` per step); span-sized masked writes
/// handle the unaligned head, the sub-byte tail, and anything near a
/// buffer end.
fn copy_bits(dst: &mut [u8], dst_bit: u64, src: &[u8], src_bit: u64, count: u64) {
    let mut done = 0u64;
    // Head: bring the destination cursor to a byte boundary.
    let head = ((8 - (dst_bit % 8)) % 8).min(count);
    if head > 0 {
        let v = read_span(src, src_bit, head as usize);
        write_span(dst, dst_bit, head as usize, v);
        done = head;
    }
    // Bulk: whole destination bytes while both sides stay in bounds.
    let mut d = ((dst_bit + done) / 8) as usize;
    let mut p = ((src_bit + done) / 8) as usize;
    let s = ((src_bit + done) % 8) as u32;
    let mut full = ((count - done) / 8) as usize;
    if s == 0 {
        let n = full
            .min(dst.len().saturating_sub(d))
            .min(src.len().saturating_sub(p));
        if n > 0 {
            dst[d..d + n].copy_from_slice(&src[p..p + n]);
            done += 8 * n as u64;
        }
    } else {
        // Each output byte straddles two source bytes; move eight at a
        // time by shift-merging a u64 window with its trailing byte.
        while full >= 8 && p + 9 <= src.len() && d + 8 <= dst.len() {
            let w = u64::from_be_bytes(src[p..p + 8].try_into().expect("window is 8 bytes"));
            let out = (w << s) | (src[p + 8] as u64 >> (8 - s));
            dst[d..d + 8].copy_from_slice(&out.to_be_bytes());
            d += 8;
            p += 8;
            full -= 8;
            done += 64;
        }
        while full > 0 && p + 1 < src.len() && d < dst.len() {
            dst[d] = (src[p] << s) | (src[p + 1] >> (8 - s));
            d += 1;
            p += 1;
            full -= 1;
            done += 8;
        }
    }
    // Tail (and any out-of-bounds remainder): masked span moves.
    while done < count {
        let n = ((count - done).min(SPAN_BITS as u64)) as usize;
        let v = read_span(src, src_bit + done, n);
        write_span(dst, dst_bit + done, n, v);
        done += n as u64;
    }
}

/// The per-reliability streams of one video.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtectedStreams {
    /// One byte buffer per protection level (level = index).
    pub level_data: Vec<Vec<u8>>,
    /// Exact bit length of each stream (buffers are zero-padded).
    pub level_bits: Vec<u64>,
}

impl ProtectedStreams {
    /// Total payload bits across streams.
    pub fn total_bits(&self) -> u64 {
        self.level_bits.iter().sum()
    }

    /// Encrypts every stream in place with per-stream derived IVs.
    ///
    /// # Panics
    ///
    /// Panics if the mode is not approximation compatible — using ECB or
    /// CBC here would defeat the whole scheme (paper §5.2).
    pub fn encrypt(&mut self, mode: CipherMode, key: &Key, master_iv: &Block) {
        assert!(
            mode.approximation_compatible(),
            "mode {mode:?} is not usable over approximate storage"
        );
        let _span = vapp_obs::span!("core.streams.encrypt", mode);
        for (id, data) in self.level_data.iter_mut().enumerate() {
            let iv = derive_stream_iv(key, master_iv, id as u64);
            *data = mode.encrypt(key, &iv, data);
        }
    }

    /// Decrypts every stream in place (inverse of
    /// [`ProtectedStreams::encrypt`]).
    pub fn decrypt(&mut self, mode: CipherMode, key: &Key, master_iv: &Block) {
        assert!(
            mode.approximation_compatible(),
            "mode {mode:?} is not usable over approximate storage"
        );
        let _span = vapp_obs::span!("core.streams.decrypt", mode);
        for (id, data) in self.level_data.iter_mut().enumerate() {
            let iv = derive_stream_iv(key, master_iv, id as u64);
            *data = mode.decrypt(key, &iv, data);
        }
    }
}

/// Splits the payloads of `stream` into per-level bit streams according
/// to the pivot table.
///
/// # Panics
///
/// Panics if the pivot table does not match the stream's frame count.
pub fn split_streams(stream: &EncodedVideo, table: &PivotTable) -> ProtectedStreams {
    assert_eq!(
        stream.frames.len(),
        table.frames.len(),
        "pivot table / stream mismatch"
    );
    let levels = table.levels as usize;
    let _span = vapp_obs::span!("core.streams.split", levels);
    // Levels extract independently: each worker walks the span list once,
    // copying its own level's bits and skipping foreign spans in O(1), so
    // the per-worker cost is its stream's bits plus the span count.
    let per_level = vapp_par::par_map((0..levels).collect(), |_, li| {
        // Size first, then move whole spans with 48-bit word copies.
        let mut nbits = 0u64;
        for fp in &table.frames {
            for (range, level) in fp.level_spans() {
                if (level as usize).min(levels - 1) == li {
                    nbits += range.end - range.start;
                }
            }
        }
        let mut bytes = vec![0u8; (nbits as usize).div_ceil(8)];
        let mut out = 0u64;
        for (frame, fp) in stream.frames.iter().zip(&table.frames) {
            for (range, level) in fp.level_spans() {
                if (level as usize).min(levels - 1) != li {
                    continue;
                }
                let count = range.end - range.start;
                copy_bits(&mut bytes, out, &frame.payload, range.start, count);
                out += count;
            }
        }
        (bytes, nbits)
    });
    let mut level_data = Vec::with_capacity(levels);
    let mut level_bits = Vec::with_capacity(levels);
    for (bytes, nbits) in per_level {
        level_data.push(bytes);
        level_bits.push(nbits);
    }
    ProtectedStreams {
        level_data,
        level_bits,
    }
}

/// Rebuilds a coded video from per-level streams: the inverse of
/// [`split_streams`]. `template` supplies headers and payload sizes (all
/// precise storage).
///
/// # Panics
///
/// Panics if the streams or the pivot table disagree with the template's
/// geometry.
pub fn merge_streams(
    template: &EncodedVideo,
    table: &PivotTable,
    streams: &ProtectedStreams,
) -> EncodedVideo {
    assert_eq!(
        template.frames.len(),
        table.frames.len(),
        "pivot table / stream mismatch"
    );
    let levels = table.levels as usize;
    assert_eq!(streams.level_data.len(), levels, "level count mismatch");
    let _span = vapp_obs::span!("core.streams.merge", levels);
    // Frames write disjoint payloads, so they merge in parallel once a
    // cheap sequential prefix pass has fixed each frame's starting cursor
    // into every level stream.
    let mut cursors = vec![0u64; levels];
    let mut frame_starts = Vec::with_capacity(table.frames.len());
    for fp in &table.frames {
        frame_starts.push(cursors.clone());
        for (range, level) in fp.level_spans() {
            cursors[(level as usize).min(levels - 1)] += range.end - range.start;
        }
    }
    for (li, &used) in cursors.iter().enumerate() {
        assert_eq!(
            used, streams.level_bits[li],
            "stream {li} length mismatch on merge"
        );
    }
    let mut out = template.clone();
    vapp_par::par_map(
        out.frames
            .iter_mut()
            .zip(&table.frames)
            .zip(frame_starts)
            .collect(),
        |_, ((frame, fp), mut cur)| {
            for (range, level) in fp.level_spans() {
                let li = (level as usize).min(levels - 1);
                let count = range.end - range.start;
                copy_bits(
                    &mut frame.payload,
                    range.start,
                    &streams.level_data[li],
                    cur[li],
                    count,
                );
                cur[li] += count;
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use crate::importance::ImportanceMap;
    use vapp_codec::{Encoder, EncoderConfig};
    use vapp_workloads::{ClipSpec, SceneKind};

    /// Reads payload bit `i` (MSB-first), false past the end.
    fn get_bit(bytes: &[u8], i: u64) -> bool {
        let byte = (i / 8) as usize;
        byte < bytes.len() && (bytes[byte] >> (7 - (i % 8))) & 1 == 1
    }

    fn setup() -> (EncodedVideo, PivotTable) {
        let video = ClipSpec::new(64, 48, 8, SceneKind::MovingBlocks)
            .seed(9)
            .generate();
        let result = Encoder::new(EncoderConfig {
            keyint: 4,
            bframes: 1,
            ..Default::default()
        })
        .encode(&video);
        let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
        let table = PivotTable::build(&result.analysis, &imp, &[4.0, 32.0, 256.0]);
        (result.stream, table)
    }

    #[test]
    fn copy_bits_matches_bitwise_reference() {
        use vapp_check::RngExt;
        vapp_check::check("copy_bits_matches_bitwise_reference", 64, |rng| {
            let src: Vec<u8> = (0..rng.random_range(1..40usize))
                .map(|_| rng.random())
                .collect();
            let dst0: Vec<u8> = (0..rng.random_range(1..40usize))
                .map(|_| rng.random())
                .collect();
            let src_bit = rng.random_range(0..8 * src.len() as u64 + 16);
            let dst_bit = rng.random_range(0..8 * dst0.len() as u64 + 16);
            let count = rng.random_range(0..300u64);
            let mut fast = dst0.clone();
            copy_bits(&mut fast, dst_bit, &src, src_bit, count);
            // Reference: move one bit at a time through the span helpers.
            let mut slow = dst0.clone();
            for i in 0..count {
                let v = read_span(&src, src_bit + i, 1);
                write_span(&mut slow, dst_bit + i, 1, v);
            }
            assert_eq!(
                fast, slow,
                "src_bit={src_bit} dst_bit={dst_bit} count={count}"
            );
        });
    }

    #[test]
    fn split_merge_is_identity() {
        let (stream, table) = setup();
        let streams = split_streams(&stream, &table);
        assert_eq!(streams.total_bits(), stream.payload_bits());
        let merged = merge_streams(&stream, &table, &streams);
        assert_eq!(merged, stream);
    }

    #[test]
    fn encrypted_split_merge_roundtrip() {
        let (stream, table) = setup();
        let key = [0x33u8; 16];
        let iv = [0x44u8; 16];
        for mode in [CipherMode::Ofb, CipherMode::Ctr] {
            let mut streams = split_streams(&stream, &table);
            streams.encrypt(mode, &key, &iv);
            // Ciphertext differs from plaintext.
            let plain = split_streams(&stream, &table);
            assert_ne!(streams.level_data, plain.level_data);
            streams.decrypt(mode, &key, &iv);
            let merged = merge_streams(&stream, &table, &streams);
            assert_eq!(merged, stream, "{mode:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not usable over approximate storage")]
    fn cbc_rejected_for_streams() {
        let (stream, table) = setup();
        let mut streams = split_streams(&stream, &table);
        streams.encrypt(CipherMode::Cbc, &[0u8; 16], &[0u8; 16]);
    }

    #[test]
    fn corrupting_one_stream_touches_only_its_spans() {
        let (stream, table) = setup();
        let mut streams = split_streams(&stream, &table);
        // Flip every bit of the weakest stream (level 0).
        for b in streams.level_data[0].iter_mut() {
            *b = !*b;
        }
        let merged = merge_streams(&stream, &table, &streams);
        for ((orig, dirty), fp) in stream.frames.iter().zip(&merged.frames).zip(&table.frames) {
            for (range, level) in fp.level_spans() {
                for i in range {
                    let same = get_bit(&orig.payload, i) == get_bit(&dirty.payload, i);
                    if level == 0 {
                        assert!(!same, "level-0 bit {i} unchanged");
                    } else {
                        assert!(same, "level-{level} bit {i} changed");
                    }
                }
            }
        }
    }
}
