//! Pivot-based reliability bookkeeping (paper §4.4, Fig. 6).
//!
//! Within a frame (per slice), the coding-error chain makes macroblock
//! importance strictly decreasing in scan order, so the per-MB protection
//! level is a step function describable by a handful of *pivots* — bit
//! offsets where the error-correction scheme changes. Pivots live in the
//! frame header (precise storage) and cost a few bytes per frame instead
//! of per-MB bookkeeping as large as the video itself.

use crate::importance::ImportanceMap;
use std::ops::Range;
use vapp_codec::AnalysisRecord;

/// Bits to encode one pivot in the frame header (32-bit offset + 8-bit
/// level).
pub const PIVOT_BITS: u64 = 40;
/// Fixed per-frame pivot bookkeeping (count byte + initial level byte).
pub const FRAME_PIVOT_HEADER_BITS: u64 = 16;

/// A protection-level change point within a frame payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pivot {
    /// Payload bit offset where the new level takes effect.
    pub bit_offset: u64,
    /// Protection level from this offset on (index into the scheme
    /// ladder; higher = stronger).
    pub level: u8,
}

/// The pivots of one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FramePivots {
    /// Coding-order frame index.
    pub coding_index: usize,
    /// Protection level at payload offset 0.
    pub initial_level: u8,
    /// Level changes in ascending offset order.
    pub pivots: Vec<Pivot>,
    /// Total payload bits of the frame (end of the last span).
    pub payload_bits: u64,
}

impl FramePivots {
    /// Expands the pivots into contiguous `(bit range, level)` spans
    /// covering the whole payload.
    pub fn level_spans(&self) -> Vec<(Range<u64>, u8)> {
        let mut out = Vec::with_capacity(self.pivots.len() + 1);
        let mut start = 0u64;
        let mut level = self.initial_level;
        for p in &self.pivots {
            if p.bit_offset > start {
                out.push((start..p.bit_offset, level));
            }
            start = p.bit_offset;
            level = p.level;
        }
        if self.payload_bits > start {
            out.push((start..self.payload_bits, level));
        }
        out
    }
}

/// The pivot table of a whole video.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PivotTable {
    /// Per-frame pivots, coding order.
    pub frames: Vec<FramePivots>,
    /// Number of protection levels in the ladder this table indexes.
    pub levels: u8,
}

impl PivotTable {
    /// Builds the pivot table: macroblock `level = number of thresholds
    /// met`, where `thresholds[k]` is the minimum importance required for
    /// protection level `k+1` (ascending). Level 0 needs no threshold.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is not ascending or overflows `u8` levels.
    pub fn build(rec: &AnalysisRecord, imp: &ImportanceMap, thresholds: &[f64]) -> Self {
        assert!(
            thresholds.windows(2).all(|w| w[0] <= w[1]),
            "thresholds must be ascending"
        );
        assert!(thresholds.len() < 255, "too many levels");
        let level_of = |importance: f64| -> u8 {
            thresholds.iter().take_while(|&&t| importance >= t).count() as u8
        };
        let mut frames = Vec::with_capacity(rec.frames.len());
        for f in &rec.frames {
            let payload_bits = f.mbs.last().map_or(0, |m| m.bit_end);
            let mut initial_level = 0u8;
            let mut pivots = Vec::new();
            let mut prev: Option<u8> = None;
            for (mb, a) in f.mbs.iter().enumerate() {
                let level = level_of(imp.get(f.coding_index, mb));
                match prev {
                    None => initial_level = level,
                    Some(p) if p != level => pivots.push(Pivot {
                        bit_offset: a.bit_start,
                        level,
                    }),
                    _ => {}
                }
                prev = Some(level);
            }
            frames.push(FramePivots {
                coding_index: f.coding_index,
                initial_level,
                pivots,
                payload_bits,
            });
        }
        let table = PivotTable {
            frames,
            levels: thresholds.len() as u8 + 1,
        };
        vapp_obs::debug!(
            "core.pivots.build",
            "{} levels, {} pivots, {} bookkeeping bits",
            table.levels,
            table.pivot_count(),
            table.bookkeeping_bits()
        );
        table
    }

    /// Bookkeeping bits this table adds to the (precisely stored) frame
    /// headers — the paper's "few bytes per frame".
    pub fn bookkeeping_bits(&self) -> u64 {
        self.frames
            .iter()
            .map(|f| FRAME_PIVOT_HEADER_BITS + f.pivots.len() as u64 * PIVOT_BITS)
            .sum()
    }

    /// Total pivot count across frames.
    pub fn pivot_count(&self) -> usize {
        self.frames.iter().map(|f| f.pivots.len()).sum()
    }

    /// Bits assigned to each protection level across the whole video.
    pub fn level_bits(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.levels as usize];
        for f in &self.frames {
            for (range, level) in f.level_spans() {
                let idx = (level as usize).min(self.levels as usize - 1);
                out[idx] += range.end - range.start;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use vapp_codec::{Encoder, EncoderConfig};
    use vapp_workloads::{ClipSpec, SceneKind};

    fn setup() -> (AnalysisRecord, ImportanceMap) {
        let video = ClipSpec::new(64, 48, 10, SceneKind::MovingBlocks)
            .seed(8)
            .generate();
        let rec = Encoder::new(EncoderConfig {
            keyint: 5,
            bframes: 1,
            ..Default::default()
        })
        .encode(&video)
        .analysis;
        let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&rec));
        (rec, imp)
    }

    #[test]
    fn spans_cover_payload_and_respect_pivots() {
        let (rec, imp) = setup();
        let max = imp.max();
        let table = PivotTable::build(&rec, &imp, &[4.0, 16.0, max / 4.0]);
        assert_eq!(table.levels, 4);
        for (f, fp) in rec.frames.iter().zip(&table.frames) {
            let spans = fp.level_spans();
            let covered: u64 = spans.iter().map(|(r, _)| r.end - r.start).sum();
            assert_eq!(covered, f.mbs.last().unwrap().bit_end);
            // Spans contiguous and levels decreasing in offset order
            // (importance decreases within a slice; with one slice per
            // frame this is global).
            for w in spans.windows(2) {
                assert_eq!(w[0].0.end, w[1].0.start);
            }
        }
    }

    #[test]
    fn single_slice_levels_never_increase_along_the_frame() {
        let (rec, imp) = setup();
        let table = PivotTable::build(&rec, &imp, &[2.0, 8.0, 64.0]);
        for fp in &table.frames {
            let spans = fp.level_spans();
            for w in spans.windows(2) {
                assert!(
                    w[0].1 >= w[1].1,
                    "frame {}: level rose {} -> {}",
                    fp.coding_index,
                    w[0].1,
                    w[1].1
                );
            }
        }
    }

    #[test]
    fn few_pivots_per_frame() {
        // The paper's point: pivots cost a few bytes per frame.
        let (rec, imp) = setup();
        let table = PivotTable::build(&rec, &imp, &[2.0, 8.0, 64.0, 512.0]);
        let per_frame = table.pivot_count() as f64 / table.frames.len() as f64;
        assert!(per_frame <= 4.0, "too many pivots: {per_frame}/frame");
        // "A few bytes per frame": under 32 bytes of bookkeeping per
        // frame. (Relative to payload the ratio shrinks with resolution;
        // this test video is tiny.)
        let per_frame_bits = table.bookkeeping_bits() as f64 / table.frames.len() as f64;
        assert!(
            per_frame_bits <= 256.0,
            "bookkeeping {per_frame_bits} bits/frame"
        );
    }

    #[test]
    fn level_bits_sum_to_payload() {
        let (rec, imp) = setup();
        let table = PivotTable::build(&rec, &imp, &[8.0]);
        let total: u64 = table.level_bits().iter().sum();
        let payload: u64 = table.frames.iter().map(|f| f.payload_bits).sum();
        assert_eq!(total, payload);
    }

    #[test]
    fn no_thresholds_means_single_level() {
        let (rec, imp) = setup();
        let table = PivotTable::build(&rec, &imp, &[]);
        assert_eq!(table.levels, 1);
        assert_eq!(table.pivot_count(), 0);
        assert_eq!(table.level_bits().len(), 1);
    }
}
