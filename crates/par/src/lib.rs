//! Deterministic data parallelism on `std::thread::scope`.
//!
//! Every hot loop in this workspace fans out through [`par_map`] /
//! [`par_chunks`]: order-preserving, panic-propagating, and — because the
//! units they run are seeded with sub-seeds derived *up front* — the
//! results are a pure function of the inputs, byte-identical at any
//! worker count. Parallelism here changes wall-clock only, never output;
//! the tier-1 determinism tests lock that invariant in.
//!
//! # Worker count
//!
//! Resolution order (first match wins):
//!
//! 1. a [`with_threads`] scope on the calling thread (tests, scaling
//!    benches);
//! 2. a process-wide [`set_threads`] override (the `vapp --threads`
//!    flag);
//! 3. the `VAPP_THREADS` environment variable (read once; invalid or
//!    `0` means "auto");
//! 4. [`std::thread::available_parallelism`].
//!
//! A resolved count of `1` disables spawning entirely — the closure runs
//! inline on the caller, so single-threaded runs have zero threading
//! overhead and identical stack traces.
//!
//! # Observability inheritance
//!
//! Workers install the parent thread's current scoped registry
//! ([`vapp_obs::registry::with_registry`]) before running any unit, so
//! counters and spans recorded inside a parallel region land in the same
//! registry the caller sees — `vapp-check` cases and test-local
//! registries keep working. Workers also install the caller's open-span
//! path as a prefix ([`vapp_obs::span::with_path_prefix`]), so spans
//! opened inside a unit fold into the spawning span's subtree and the
//! call-path profile is identical at any thread count. Counter totals
//! are thread-count-invariant (atomics commute); only span timeline
//! *order* may vary.
//!
//! When a region actually fans out, each worker additionally records
//! utilization counters — `par.worker.<w>.tasks` (units claimed),
//! `par.worker.<w>.busy_ns` (time inside units) and
//! `par.worker.<w>.idle_ns` (region wall minus busy) — consumed by
//! `obs_report` and `scaling_check --obs`. These are wall-clock-derived
//! and scheduling-dependent, so snapshot diffing treats the `par.`
//! namespace as unstable; none are recorded on the inline (1-worker)
//! path.
//!
//! # Nesting
//!
//! A `par_map` issued from inside a worker runs sequentially: the outer
//! fan-out already owns the cores, and nested spawning would oversubscribe
//! without changing any result (by the determinism invariant above).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static SCOPED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside workers so nested parallel calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide override (0 = unset). Set by the `vapp --threads` flag.
static PROCESS_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `VAPP_THREADS`, parsed once. `None` when unset, empty, invalid or `0`.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("VAPP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Hardware parallelism, defaulting to 1 when unknown. Cached on first
/// use: `available_parallelism` re-reads affinity masks and cgroup
/// quotas on every call (microseconds of syscalls and /sys reads), which
/// used to tax every parallel region entered with no explicit override.
pub fn available() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Sets (or with `None` clears) the process-wide worker-count override.
pub fn set_threads(n: Option<usize>) {
    PROCESS_THREADS.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Runs `f` with the worker count pinned to `n` on this thread (and any
/// parallel region it opens). Scopes nest; the innermost wins.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPED_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SCOPED_THREADS.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Whether a parallel region opened here would actually fan out — false
/// with one effective worker or from inside a worker (nested regions run
/// inline). Callers use this to gate *speculative* precomputation that
/// only pays for itself when spread across workers; gating it never
/// changes results, only where the same values get computed.
pub fn would_parallelize() -> bool {
    effective_threads() > 1 && !IN_WORKER.with(Cell::get)
}

/// The worker count a parallel region opened here would use.
pub fn effective_threads() -> usize {
    if let Some(n) = SCOPED_THREADS.with(Cell::get) {
        return n.max(1);
    }
    let p = PROCESS_THREADS.load(Ordering::Relaxed);
    if p > 0 {
        return p;
    }
    env_threads().unwrap_or_else(available)
}

/// Maps `f` over `items` on up to [`effective_threads`] workers,
/// returning results in input order. `f` receives the item's index and
/// the item. Workers inherit the caller's current obs registry; a panic
/// in any unit aborts the region and is re-raised on the caller with its
/// original payload.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = effective_threads().min(n);
    if workers <= 1 || IN_WORKER.with(Cell::get) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let reg = vapp_obs::current();
    // Captured on the caller so worker-side spans fold into the spawning
    // span's subtree (profile paths thread-count invariant).
    let prefix = vapp_obs::span::current_path_parts();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|s| {
        for w in 0..workers {
            let reg = reg.clone();
            let prefix = &prefix;
            let slots = &slots;
            let results = &results;
            let cursor = &cursor;
            let poisoned = &poisoned;
            let panic_payload = &panic_payload;
            let f = &f;
            s.spawn(move || {
                vapp_obs::registry::with_registry(reg, || {
                    vapp_obs::span::with_path_prefix(prefix, || {
                        IN_WORKER.with(|c| c.set(true));
                        let region_start = std::time::Instant::now();
                        let mut tasks: u64 = 0;
                        let mut busy_ns: u64 = 0;
                        loop {
                            if poisoned.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= slots.len() {
                                break;
                            }
                            let item = slots[i]
                                .lock()
                                .expect("item slot lock")
                                .take()
                                .expect("each item is claimed exactly once");
                            tasks += 1;
                            let unit_start = std::time::Instant::now();
                            let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                            busy_ns =
                                busy_ns.saturating_add(unit_start.elapsed().as_nanos() as u64);
                            match outcome {
                                Ok(r) => *results[i].lock().expect("result slot lock") = Some(r),
                                Err(p) => {
                                    poisoned.store(true, Ordering::Relaxed);
                                    let mut first = panic_payload.lock().expect("panic slot lock");
                                    if first.is_none() {
                                        *first = Some(p);
                                    }
                                    break;
                                }
                            }
                        }
                        let wall_ns = region_start.elapsed().as_nanos() as u64;
                        let r = vapp_obs::current();
                        r.counter(&format!("par.worker.{w}.tasks")).add(tasks);
                        r.counter(&format!("par.worker.{w}.busy_ns")).add(busy_ns);
                        r.counter(&format!("par.worker.{w}.idle_ns"))
                            .add(wall_ns.saturating_sub(busy_ns));
                    });
                });
            });
        }
    });

    if let Some(p) = panic_payload.into_inner().expect("panic slot lock") {
        resume_unwind(p);
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock")
                .expect("every unit produced a result")
        })
        .collect()
}

/// Splits `data` into disjoint chunks of `chunk_size` (the last may be
/// shorter) and maps `f` over them in parallel, returning per-chunk
/// results in chunk order. `f` receives the chunk index and the chunk.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
pub fn par_chunks<T, R, F>(data: &mut [T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    par_map(data.chunks_mut(chunk_size).collect(), |i, chunk| {
        f(i, chunk)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || {
                par_map(items.clone(), |i, x| {
                    assert_eq!(i as u64, x);
                    x * x + 1
                })
            });
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn par_chunks_sees_disjoint_chunks_in_order() {
        let mut data: Vec<u32> = (0..100).collect();
        let sums = with_threads(4, || {
            par_chunks(&mut data, 7, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
                (i, chunk.iter().map(|&v| u64::from(v)).sum::<u64>())
            })
        });
        assert_eq!(sums.len(), 100usize.div_ceil(7));
        assert!(sums.iter().enumerate().all(|(i, &(j, _))| i == j));
        let expect: Vec<u32> = (1..101).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn panic_payload_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map((0..64).collect::<Vec<u32>>(), |_, x| {
                    assert!(x != 17, "unit seventeen exploded");
                    x
                })
            })
        });
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("seventeen"), "payload lost: {msg}");
    }

    #[test]
    fn workers_inherit_scoped_registry() {
        let reg = Arc::new(vapp_obs::Registry::new());
        vapp_obs::registry::with_registry(reg.clone(), || {
            with_threads(4, || {
                par_map((0..40).collect::<Vec<u32>>(), |_, _| {
                    vapp_obs::current().counter("par.test.units").add(1);
                })
            });
        });
        assert_eq!(reg.counter("par.test.units").get(), 40);
        // The parallel region recorded into the scoped registry, not the
        // global one.
        assert_eq!(vapp_obs::global().counter("par.test.units").get(), 0);
    }

    #[test]
    fn worker_spans_fold_into_the_callers_subtree() {
        let reg = Arc::new(vapp_obs::Registry::new());
        vapp_obs::registry::with_registry(reg.clone(), || {
            let _outer = vapp_obs::span!("par.test.region");
            with_threads(4, || {
                par_map((0..12).collect::<Vec<u32>>(), |_, _| {
                    let _s = vapp_obs::span!("par.test.unit");
                })
            });
        });
        let snap = reg.snapshot();
        let unit = snap
            .profile
            .iter()
            .find(|p| p.path == "par.test.region>par.test.unit")
            .expect("worker span nests under the caller's open span");
        assert_eq!(unit.count, 12);
        // No stray root-level `par.test.unit` path from worker threads.
        assert!(!snap.profile.iter().any(|p| p.path == "par.test.unit"));
    }

    #[test]
    fn fanned_out_regions_record_worker_utilization() {
        let reg = Arc::new(vapp_obs::Registry::new());
        vapp_obs::registry::with_registry(reg.clone(), || {
            with_threads(4, || {
                par_map((0..32).collect::<Vec<u32>>(), |_, _| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                })
            });
        });
        let snap = reg.snapshot();
        let tasks: u64 = (0..4)
            .map(|w| snap.counter(&format!("par.worker.{w}.tasks")))
            .sum();
        assert_eq!(tasks, 32, "every unit claimed exactly once");
        let busy: u64 = (0..4)
            .map(|w| snap.counter(&format!("par.worker.{w}.busy_ns")))
            .sum();
        // 32 units × ≥200 µs of sleep is a hard lower bound on busy time.
        assert!(busy >= 32 * 200_000, "busy {busy} ns too small");
        for w in 0..4 {
            assert!(snap
                .counters
                .iter()
                .any(|(n, _)| *n == format!("par.worker.{w}.idle_ns")));
        }
    }

    #[test]
    fn inline_regions_record_no_worker_counters() {
        let reg = Arc::new(vapp_obs::Registry::new());
        vapp_obs::registry::with_registry(reg.clone(), || {
            with_threads(1, || par_map((0..8).collect::<Vec<u32>>(), |_, x| x * 2));
        });
        let snap = reg.snapshot();
        assert!(
            !snap
                .counters
                .iter()
                .any(|(n, _)| n.starts_with("par.worker.")),
            "inline path must stay utilization-free: {:?}",
            snap.counters
        );
    }

    #[test]
    fn nested_par_map_runs_inline_and_stays_correct() {
        let got = with_threads(4, || {
            par_map((0..8u64).collect::<Vec<_>>(), |_, outer| {
                par_map((0..8u64).collect::<Vec<_>>(), |_, inner| outer * 10 + inner)
                    .into_iter()
                    .sum::<u64>()
            })
        });
        let expect: Vec<u64> = (0..8).map(|o| (0..8).map(|i| o * 10 + i).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn thread_count_resolution_order() {
        set_threads(Some(3));
        assert_eq!(effective_threads(), 3);
        // A scope beats the process override.
        with_threads(5, || assert_eq!(effective_threads(), 5));
        assert_eq!(effective_threads(), 3);
        set_threads(None);
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, |_, x: u32| x).is_empty());
        assert_eq!(
            with_threads(8, || par_map(vec![9], |i, x| (i, x))),
            vec![(0, 9)]
        );
    }
}
