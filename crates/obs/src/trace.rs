//! chrome://tracing export: renders a snapshot's timeline as a
//! [Trace Event Format] JSON document, loadable in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! Each completed [`crate::registry::SpanRecord`] becomes one complete
//! event (`"ph": "X"`) with microsecond `ts`/`dur` on the registry's
//! epoch axis and the recording thread's stable id
//! ([`crate::span::current_tid`]) as `tid`; span fields and nesting
//! depth ride along in `args`. Metadata events (`"ph": "M"`) name the
//! process after the run label and each thread `vapp-worker-<tid>` so
//! the viewer's track labels are meaningful.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Enabled either explicitly (`vapp --trace out.json`) or ambiently via
//! the `VAPP_OBS_TRACE=<file>` environment variable, which
//! [`maybe_write_trace`] honours from every snapshot-emitting entry
//! point (the CLI, examples, bench bins).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::json::escape;
use crate::snapshot::Snapshot;

/// Renders the snapshot's timeline as a trace-event JSON document.
/// `run` labels the process track.
pub fn to_trace_json(snap: &Snapshot, run: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };

    let mut tids = BTreeSet::new();
    for r in &snap.timeline {
        tids.insert(r.tid);
        sep(&mut out);
        // ts/dur are microseconds (f64); sub-µs precision survives as
        // fractional digits.
        let _ = write!(
            out,
            "  {{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"span\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"fields\": \"{}\", \"depth\": {}}}}}",
            escape(&r.name),
            r.tid,
            r.start_ns as f64 / 1e3,
            r.dur_ns as f64 / 1e3,
            escape(&r.fields),
            r.depth
        );
    }

    sep(&mut out);
    let _ = write!(
        out,
        "  {{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"args\": {{\"name\": \"vapp:{}\"}}}}",
        escape(run)
    );
    for tid in tids {
        sep(&mut out);
        let _ = write!(
            out,
            "  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": \"vapp-worker-{tid}\"}}}}"
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Writes the *current* registry's timeline as trace-event JSON to
/// `path`, returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable parent, full disk).
pub fn write_trace(path: &Path, run: &str) -> std::io::Result<PathBuf> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let snap = crate::registry::current().snapshot();
    std::fs::write(path, to_trace_json(&snap, run))?;
    Ok(path.to_path_buf())
}

/// Honours the `VAPP_OBS_TRACE` environment contract: when the variable
/// names a file path, writes the current registry's trace there and
/// returns the path; a no-op (`None`) otherwise. Write failures are
/// reported on stderr rather than propagated — observability must not
/// fail the run.
pub fn maybe_write_trace(run: &str) -> Option<PathBuf> {
    let path = std::env::var_os("VAPP_OBS_TRACE")?;
    match write_trace(Path::new(&path), run) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!(
                "vapp-obs: cannot write trace {}: {e}",
                path.to_string_lossy()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::registry::{with_registry, Registry};
    use std::sync::Arc;

    fn sample() -> Snapshot {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            let _outer = crate::span!("trace.outer.run");
            let n = 3u32;
            let _inner = crate::span!("trace.inner.run", n);
        });
        reg.snapshot()
    }

    #[test]
    fn trace_json_has_complete_and_metadata_events() {
        let snap = sample();
        let doc = Value::parse(&to_trace_json(&snap, "unit")).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        // Two spans + process_name + one thread_name (single thread).
        assert_eq!(events.len(), 4);
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in &complete {
            assert!(e.get("name").and_then(Value::as_str).is_some());
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("dur").and_then(Value::as_f64).is_some());
            assert_eq!(e.get("pid").and_then(Value::as_u64), Some(1));
            assert!(e.get("tid").and_then(Value::as_u64).unwrap() >= 1);
        }
        // The inner span carries its field and depth in args.
        let inner = complete
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("trace.inner.run"))
            .expect("inner event");
        let args = inner.get("args").expect("args");
        assert_eq!(args.get("fields").and_then(Value::as_str), Some("n=3"));
        assert_eq!(args.get("depth").and_then(Value::as_u64), Some(2));
        // Metadata names the process after the run label.
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert!(meta.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("process_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    == Some("vapp:unit")
        }));
        assert!(meta
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("thread_name")));
    }

    #[test]
    fn empty_timeline_still_renders_valid_trace() {
        let doc = Value::parse(&to_trace_json(&Snapshot::default(), "empty")).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert_eq!(events.len(), 1); // process_name only
    }

    #[test]
    fn write_trace_creates_parent_and_file() {
        let dir = std::env::temp_dir().join("vapp-obs-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("trace.json");
        let reg = Arc::new(Registry::new());
        let written = with_registry(reg, || {
            {
                let _s = crate::span!("trace.file.write");
            }
            write_trace(&path, "filetest").expect("writable temp dir")
        });
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).expect("file exists");
        assert!(Value::parse(&text).is_ok());
        assert!(text.contains("trace.file.write"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
