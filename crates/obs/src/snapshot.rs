//! Point-in-time snapshots of a [`crate::Registry`] and their sinks: a
//! machine-readable JSON document (`OBS_<run>.json`, the same
//! shape-discipline as the bench harness's `BENCH_*.json`) and a compact
//! human-readable text rendering.
//!
//! JSON schema **2.0** (stable compatibility surface — `obs_report`
//! diffs these files across runs and CI gates on them; see DESIGN.md §7
//! for the field-by-field contract):
//!
//! ```json
//! {
//!   "obs": "vapp-obs",
//!   "schema_version": "2.0",
//!   "run": "store",
//!   "epoch_base": "registry-creation",
//!   "captured_ns": 48123456,
//!   "counters": { "core.level.0.stored_bits": 57344, ... },
//!   "histograms": {
//!     "sim.flips.per_draw": {
//!       "count": 30, "sum": 171, "min": 2, "max": 11,
//!       "buckets": [[2, 7], [3, 14], [4, 9]],
//!       "quantiles": {"p50": 5.7, "p90": 9.2, "p95": 10.1, "p99": 11.0, "p999": 11.0},
//!       "sketch": [[34, 7], [52, 14], [71, 9]]
//!     }
//!   },
//!   "spans": {
//!     "codec.frame.encode": {
//!       "count": 48, "total_ns": 81234567,
//!       "min_ns": 901234, "max_ns": 3456789, "mean_ns": 1692386.8
//!     }
//!   },
//!   "profile": {
//!     "core.store.load": {"count": 1, "total_ns": 81234567,
//!       "self_ns": 1234567, "min_ns": 81234567, "max_ns": 81234567},
//!     "core.store.load>core.level.corrupt": {"count": 3, ...}
//!   },
//!   "timeline": [
//!     {"span": "codec.frame.encode", "fields": "coding=0,ft=I",
//!      "depth": 2, "start_ns": 1200, "dur_ns": 3456789, "tid": 1}
//!   ],
//!   "timeline_dropped": 0
//! }
//! ```
//!
//! All `*_ns` timestamps are **offsets from the registry epoch** (its
//! creation instant — `epoch_base`); `captured_ns` is the snapshot
//! instant on the same axis. Histogram `buckets` entries are the legacy
//! `[bit_length, count]` pairs (bucket `b > 0` counts values in
//! `[2^(b-1), 2^b - 1]`, bucket 0 exact zeros), reconstructed exactly
//! from the finer `sketch` pairs (`[sketch_bucket_index, count]`, see
//! [`crate::sketch`]); only non-empty buckets appear in either.
//! `quantiles` are derived from the sketch at snapshot time.
//!
//! [`Snapshot::from_json`] rejects documents whose `schema_version`
//! major differs from [`SCHEMA_MAJOR`] — consumers must never silently
//! misread a future layout.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::json::{escape, fmt_f64, Value};
use crate::profile::ProfileEntry;
use crate::registry::SpanRecord;
use crate::sketch::Sketch;

/// Snapshot JSON schema version written by this crate.
pub const SCHEMA_VERSION: &str = "2.0";

/// Major version accepted by [`Snapshot::from_json`].
pub const SCHEMA_MAJOR: u64 = 2;

/// Snapshot of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Legacy `(bit_length, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u32, u64)>,
    /// The full log-bucketed distribution (quantile queries, exact
    /// merging).
    pub sketch: Sketch,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The estimated `q`-quantile (see [`Sketch::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        self.sketch.quantile(q)
    }
}

/// Snapshot of one span name's aggregate timings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed instances.
    pub count: u64,
    /// Total wall-clock time across instances, nanoseconds.
    pub total_ns: u64,
    /// Fastest instance (0 when empty).
    pub min_ns: u64,
    /// Slowest instance (0 when empty).
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean duration per instance, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A consistent copy of a registry's state.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Snapshot instant as nanoseconds since the registry epoch.
    pub captured_ns: u64,
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// The call-path profile, sorted by path (see [`crate::profile`]).
    pub profile: Vec<ProfileEntry>,
    /// Individual completed spans in completion order (bounded; see
    /// [`crate::registry::TIMELINE_CAP`]).
    pub timeline: Vec<SpanRecord>,
    /// Spans that no longer fit on the timeline.
    pub timeline_dropped: u64,
}

impl Snapshot {
    /// The value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The histogram named `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The span aggregate named `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The profile entry for the exact call path, if recorded.
    pub fn profile_path(&self, path: &str) -> Option<&ProfileEntry> {
        self.profile.iter().find(|p| p.path == path)
    }

    /// Renders the snapshot as a JSON document (see the module docs for
    /// the schema). `run` labels the snapshot, e.g. the CLI subcommand
    /// or example name.
    pub fn to_json(&self, run: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"obs\": \"vapp-obs\",");
        let _ = writeln!(out, "  \"schema_version\": \"{SCHEMA_VERSION}\",");
        let _ = writeln!(out, "  \"run\": \"{}\",", escape(run));
        // Offset-base note: every *_ns timestamp below counts from the
        // registry's creation instant.
        let _ = writeln!(out, "  \"epoch_base\": \"registry-creation\",");
        let _ = writeln!(out, "  \"captured_ns\": {},", self.captured_ns);

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {v}", escape(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| format!("[{b}, {c}]"))
                .collect();
            let quantiles: Vec<String> = h
                .sketch
                .snapshot_quantiles()
                .iter()
                .map(|(name, v)| format!("\"{name}\": {}", fmt_f64(*v)))
                .collect();
            let sketch: Vec<String> = h
                .sketch
                .nonzero_buckets()
                .map(|(b, c)| format!("[{b}, {c}]"))
                .collect();
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}], \"quantiles\": {{{}}}, \"sketch\": [{}]}}",
                escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(", "),
                quantiles.join(", "),
                sketch.join(", ")
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                escape(&s.name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                fmt_f64(s.mean_ns())
            );
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"profile\": {");
        for (i, p) in self.profile.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                escape(&p.path),
                p.count,
                p.total_ns,
                p.self_ns,
                p.min_ns,
                p.max_ns
            );
        }
        out.push_str(if self.profile.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"timeline\": [");
        for (i, r) in self.timeline.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"span\": \"{}\", \"fields\": \"{}\", \"depth\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"tid\": {}}}",
                escape(&r.name),
                escape(&r.fields),
                r.depth,
                r.start_ns,
                r.dur_ns,
                r.tid
            );
        }
        out.push_str(if self.timeline.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        let _ = writeln!(out, "  \"timeline_dropped\": {}", self.timeline_dropped);
        out.push_str("}\n");
        out
    }

    /// Parses an `OBS_*.json` document back into a snapshot, returning
    /// `(run_label, snapshot)`.
    ///
    /// # Errors
    ///
    /// Rejects non-JSON input, documents that are not `vapp-obs`
    /// snapshots, schemata whose major version differs from
    /// [`SCHEMA_MAJOR`], and structurally torn fields (e.g. sketch
    /// bucket counts that contradict the histogram count).
    pub fn from_json(text: &str) -> Result<(String, Snapshot), String> {
        let doc = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        if doc.get("obs").and_then(Value::as_str) != Some("vapp-obs") {
            return Err("not a vapp-obs snapshot (missing `obs` marker)".into());
        }
        let version = doc
            .get("schema_version")
            .and_then(Value::as_str)
            .ok_or("missing `schema_version` (pre-2.0 snapshot?)")?;
        let major: u64 = version
            .split('.')
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| format!("unparseable schema_version `{version}`"))?;
        if major != SCHEMA_MAJOR {
            return Err(format!(
                "unsupported schema_version `{version}` (this reader understands major {SCHEMA_MAJOR})"
            ));
        }
        let run = doc
            .get("run")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let need_u64 = |v: &Value, key: &str, ctx: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{ctx}: missing numeric `{key}`"))
        };

        let mut snap = Snapshot {
            captured_ns: doc.get("captured_ns").and_then(Value::as_u64).unwrap_or(0),
            timeline_dropped: doc
                .get("timeline_dropped")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            ..Snapshot::default()
        };

        if let Some(counters) = doc.get("counters").and_then(Value::as_obj) {
            for (name, v) in counters {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("counter `{name}`: not a number"))?;
                snap.counters.push((name.clone(), v));
            }
        }

        if let Some(histograms) = doc.get("histograms").and_then(Value::as_obj) {
            for (name, h) in histograms {
                let ctx = format!("histogram `{name}`");
                let count = need_u64(h, "count", &ctx)?;
                let sum = need_u64(h, "sum", &ctx)?;
                let min = need_u64(h, "min", &ctx)?;
                let max = need_u64(h, "max", &ctx)?;
                let pairs = |key: &str| -> Result<Vec<(u64, u64)>, String> {
                    h.get(key)
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("{ctx}: missing `{key}` array"))?
                        .iter()
                        .map(|p| {
                            let p = p.as_arr().filter(|p| p.len() == 2);
                            let b = p.and_then(|p| p[0].as_u64());
                            let c = p.and_then(|p| p[1].as_u64());
                            b.zip(c)
                                .ok_or_else(|| format!("{ctx}: malformed `{key}` pair"))
                        })
                        .collect()
                };
                let sketch_pairs: Vec<(usize, u64)> = pairs("sketch")?
                    .into_iter()
                    .map(|(b, c)| (b as usize, c))
                    .collect();
                let sketch = Sketch::from_parts(&sketch_pairs, count, sum, min, max)
                    .map_err(|e| format!("{ctx}: {e}"))?;
                snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    count,
                    sum,
                    min,
                    max,
                    buckets: pairs("buckets")?
                        .into_iter()
                        .map(|(b, c)| (b as u32, c))
                        .collect(),
                    sketch,
                });
            }
        }

        if let Some(spans) = doc.get("spans").and_then(Value::as_obj) {
            for (name, s) in spans {
                let ctx = format!("span `{name}`");
                snap.spans.push(SpanSnapshot {
                    name: name.clone(),
                    count: need_u64(s, "count", &ctx)?,
                    total_ns: need_u64(s, "total_ns", &ctx)?,
                    min_ns: need_u64(s, "min_ns", &ctx)?,
                    max_ns: need_u64(s, "max_ns", &ctx)?,
                });
            }
        }

        if let Some(profile) = doc.get("profile").and_then(Value::as_obj) {
            for (path, p) in profile {
                let ctx = format!("profile `{path}`");
                snap.profile.push(ProfileEntry {
                    path: path.clone(),
                    count: need_u64(p, "count", &ctx)?,
                    total_ns: need_u64(p, "total_ns", &ctx)?,
                    self_ns: need_u64(p, "self_ns", &ctx)?,
                    min_ns: need_u64(p, "min_ns", &ctx)?,
                    max_ns: need_u64(p, "max_ns", &ctx)?,
                });
            }
        }

        if let Some(timeline) = doc.get("timeline").and_then(Value::as_arr) {
            for (i, r) in timeline.iter().enumerate() {
                let ctx = format!("timeline[{i}]");
                snap.timeline.push(SpanRecord {
                    name: r
                        .get("span")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("{ctx}: missing `span`"))?
                        .to_string(),
                    fields: r
                        .get("fields")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    depth: need_u64(r, "depth", &ctx)? as u32,
                    start_ns: need_u64(r, "start_ns", &ctx)?,
                    dur_ns: need_u64(r, "dur_ns", &ctx)?,
                    tid: need_u64(r, "tid", &ctx)?,
                });
            }
        }

        Ok((run, snap))
    }

    /// Renders a compact human-readable summary (the `--stats` output
    /// and the vapp-check failure context). At most `max_lines` lines;
    /// the timeline is summarised, not listed.
    pub fn render_text(&self, max_lines: usize) -> String {
        fn ms(ns: f64) -> String {
            if ns >= 1e6 {
                format!("{:.2} ms", ns / 1e6)
            } else {
                format!("{:.1} µs", ns / 1e3)
            }
        }
        let mut lines = Vec::new();
        if !self.spans.is_empty() {
            lines.push("spans (count, total, mean, min..max):".to_string());
            for s in &self.spans {
                lines.push(format!(
                    "  {:<32} x{:<5} {:>10}  mean {:>10}  [{} .. {}]",
                    s.name,
                    s.count,
                    ms(s.total_ns as f64),
                    ms(s.mean_ns()),
                    ms(s.min_ns as f64),
                    ms(s.max_ns as f64),
                ));
            }
        }
        if !self.counters.is_empty() {
            lines.push("counters:".to_string());
            for (name, v) in &self.counters {
                lines.push(format!("  {name:<40} {v}"));
            }
        }
        if !self.histograms.is_empty() {
            lines.push("histograms (count, mean, p50/p99, min..max):".to_string());
            for h in &self.histograms {
                lines.push(format!(
                    "  {:<32} x{:<7} mean {:>10.1}  p50 {:.1} p99 {:.1}  [{} .. {}]",
                    h.name,
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.min,
                    h.max
                ));
            }
        }
        if self.timeline_dropped > 0 {
            lines.push(format!(
                "(timeline: {} kept, {} dropped past cap)",
                self.timeline.len(),
                self.timeline_dropped
            ));
        }
        let total = lines.len();
        if total > max_lines && max_lines > 0 {
            lines.truncate(max_lines - 1);
            lines.push(format!("... ({} more lines)", total - (max_lines - 1)));
        }
        lines.join("\n")
    }
}

/// Writes `OBS_<run>.json` for the *current* registry into `dir`
/// (creating it), returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, full disk).
pub fn write_run_snapshot(dir: &Path, run: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("OBS_{run}.json"));
    std::fs::write(&path, crate::registry::current().snapshot().to_json(run))?;
    Ok(path)
}

/// Honours the `VAPP_OBS_OUT` environment contract: when the variable
/// names a directory, writes `OBS_<run>.json` there and returns the
/// path; a no-op (`None`) otherwise. Also honours `VAPP_OBS_TRACE`
/// ([`crate::trace::maybe_write_trace`]) so every snapshot-emitting
/// entry point doubles as a trace-export point. Write failures are
/// reported on stderr rather than propagated — observability must not
/// fail the run.
pub fn maybe_write_run_snapshot(run: &str) -> Option<PathBuf> {
    crate::trace::maybe_write_trace(run);
    let dir = std::env::var_os("VAPP_OBS_OUT")?;
    match write_run_snapshot(Path::new(&dir), run) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("vapp-obs: cannot write OBS_{run}.json: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::registry::{with_registry, Registry};
    use std::sync::Arc;

    fn sample() -> Snapshot {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            crate::counter!("a.b.c", 7u64);
            crate::histogram!("h.i.j", 3u64);
            crate::histogram!("h.i.j", 0u64);
            let _s = crate::span!("s.p.q");
        });
        reg.snapshot()
    }

    #[test]
    fn json_snapshot_parses_and_reflects_values() {
        let snap = sample();
        let json = snap.to_json("unit \"test\"");
        let doc = Value::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("obs").and_then(Value::as_str), Some("vapp-obs"));
        assert_eq!(
            doc.get("schema_version").and_then(Value::as_str),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("run").and_then(Value::as_str),
            Some("unit \"test\"")
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("a.b.c"))
                .and_then(Value::as_u64),
            Some(7)
        );
        let h = doc.get("histograms").and_then(|h| h.get("h.i.j")).unwrap();
        assert_eq!(h.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(h.get("sum").and_then(Value::as_u64), Some(3));
        let buckets = h.get("buckets").and_then(Value::as_arr).unwrap();
        assert_eq!(buckets.len(), 2); // zero bucket + bit-length-2 bucket
        assert!(h.get("quantiles").and_then(|q| q.get("p99")).is_some());
        assert_eq!(
            h.get("sketch").and_then(Value::as_arr).map(<[_]>::len),
            Some(2)
        );
        let s = doc.get("spans").and_then(|s| s.get("s.p.q")).unwrap();
        assert_eq!(s.get("count").and_then(Value::as_u64), Some(1));
        let p = doc.get("profile").and_then(|p| p.get("s.p.q")).unwrap();
        assert_eq!(p.get("count").and_then(Value::as_u64), Some(1));
        let tl = doc.get("timeline").and_then(Value::as_arr).unwrap();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].get("span").and_then(Value::as_str), Some("s.p.q"));
        assert!(tl[0].get("tid").and_then(Value::as_u64).unwrap() >= 1);
        assert_eq!(doc.get("timeline_dropped").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn snapshot_round_trips_through_from_json() {
        let snap = sample();
        let (run, parsed) = Snapshot::from_json(&snap.to_json("roundtrip")).expect("parses");
        assert_eq!(run, "roundtrip");
        assert_eq!(parsed.captured_ns, snap.captured_ns);
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.histograms, snap.histograms);
        assert_eq!(parsed.spans, snap.spans);
        assert_eq!(parsed.profile, snap.profile);
        assert_eq!(parsed.timeline, snap.timeline);
        assert_eq!(parsed.timeline_dropped, snap.timeline_dropped);
    }

    #[test]
    fn from_json_rejects_unknown_major_versions() {
        let json = sample().to_json("vgate");
        let future = json.replacen(
            "\"schema_version\": \"2.0\"",
            "\"schema_version\": \"3.0\"",
            1,
        );
        let err = Snapshot::from_json(&future).expect_err("major 3 must be rejected");
        assert!(err.contains("3.0"), "{err}");
        // Minor bumps within the major are fine.
        let minor = json.replacen(
            "\"schema_version\": \"2.0\"",
            "\"schema_version\": \"2.9\"",
            1,
        );
        assert!(Snapshot::from_json(&minor).is_ok());
        // Pre-2.0 documents (no version field) are rejected, not guessed at.
        let legacy = json.replacen("  \"schema_version\": \"2.0\",\n", "", 1);
        assert!(Snapshot::from_json(&legacy).is_err());
        assert!(Snapshot::from_json("{\"x\": 1}").is_err());
        assert!(Snapshot::from_json("not json").is_err());
    }

    #[test]
    fn empty_snapshot_is_still_valid_json() {
        let snap = Snapshot::default();
        let doc = Value::parse(&snap.to_json("empty")).expect("valid JSON");
        assert!(doc
            .get("counters")
            .and_then(Value::as_obj)
            .unwrap()
            .is_empty());
        assert!(doc
            .get("timeline")
            .and_then(Value::as_arr)
            .unwrap()
            .is_empty());
        let (_, parsed) = Snapshot::from_json(&snap.to_json("empty")).expect("parses");
        assert!(parsed.counters.is_empty() && parsed.profile.is_empty());
    }

    #[test]
    fn text_rendering_truncates_to_line_budget() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            for i in 0..50 {
                crate::counter!(&format!("many.counter.{i:02}"), 1u64);
            }
        });
        let text = reg.snapshot().render_text(10);
        assert_eq!(text.lines().count(), 10);
        assert!(text.lines().last().unwrap().contains("more lines"));
        let full = reg.snapshot().render_text(1000);
        assert!(full.lines().count() > 50);
    }

    #[test]
    fn run_snapshot_writes_named_file() {
        let dir = std::env::temp_dir().join("vapp-obs-snapshot-test");
        let reg = Arc::new(Registry::new());
        let path = with_registry(reg, || {
            crate::counter!("file.write.test");
            write_run_snapshot(&dir, "selftest").expect("writable temp dir")
        });
        assert!(path.ends_with("OBS_selftest.json"));
        let text = std::fs::read_to_string(&path).expect("file exists");
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("file.write.test"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let _ = std::fs::remove_file(path);
    }
}
