//! Point-in-time snapshots of a [`crate::Registry`] and their sinks: a
//! machine-readable JSON document (`OBS_<run>.json`, the same
//! shape-discipline as the bench harness's `BENCH_*.json`) and a compact
//! human-readable text rendering.
//!
//! JSON schema (stable compatibility surface — benches and CI diff these
//! files across PRs):
//!
//! ```json
//! {
//!   "obs": "vapp-obs",
//!   "run": "store",
//!   "counters": { "core.level.0.stored_bits": 57344, ... },
//!   "histograms": {
//!     "sim.flips.per_draw": {
//!       "count": 30, "sum": 171, "min": 2, "max": 11,
//!       "buckets": [[2, 7], [3, 14], [4, 9]]
//!     }
//!   },
//!   "spans": {
//!     "codec.frame.encode": {
//!       "count": 48, "total_ns": 81234567,
//!       "min_ns": 901234, "max_ns": 3456789, "mean_ns": 1692386.8
//!     }
//!   },
//!   "timeline": [
//!     {"span": "codec.frame.encode", "fields": "coding=0,ft=I",
//!      "depth": 2, "start_ns": 1200, "dur_ns": 3456789}
//!   ],
//!   "timeline_dropped": 0
//! }
//! ```
//!
//! Histogram `buckets` entries are `[bit_length, count]` pairs: bucket
//! `b > 0` counts values in `[2^(b-1), 2^b - 1]`, bucket 0 counts exact
//! zeros. Only non-empty buckets appear.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::json::{escape, fmt_f64};
use crate::registry::SpanRecord;

/// Snapshot of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// `(bit_length, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Snapshot of one span name's aggregate timings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed instances.
    pub count: u64,
    /// Total wall-clock time across instances, nanoseconds.
    pub total_ns: u64,
    /// Fastest instance (0 when empty).
    pub min_ns: u64,
    /// Slowest instance (0 when empty).
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean duration per instance, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A consistent copy of a registry's state.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// Individual completed spans in completion order (bounded; see
    /// [`crate::registry::TIMELINE_CAP`]).
    pub timeline: Vec<SpanRecord>,
    /// Spans that no longer fit on the timeline.
    pub timeline_dropped: u64,
}

impl Snapshot {
    /// The value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The histogram named `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The span aggregate named `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Renders the snapshot as a JSON document (see the module docs for
    /// the schema). `run` labels the snapshot, e.g. the CLI subcommand
    /// or example name.
    pub fn to_json(&self, run: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"obs\": \"vapp-obs\",");
        let _ = writeln!(out, "  \"run\": \"{}\",", escape(run));

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {v}", escape(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| format!("[{b}, {c}]"))
                .collect();
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
                escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(", ")
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                escape(&s.name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                fmt_f64(s.mean_ns())
            );
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"timeline\": [");
        for (i, r) in self.timeline.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"span\": \"{}\", \"fields\": \"{}\", \"depth\": {}, \"start_ns\": {}, \"dur_ns\": {}}}",
                escape(&r.name),
                escape(&r.fields),
                r.depth,
                r.start_ns,
                r.dur_ns
            );
        }
        out.push_str(if self.timeline.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        let _ = writeln!(out, "  \"timeline_dropped\": {}", self.timeline_dropped);
        out.push_str("}\n");
        out
    }

    /// Renders a compact human-readable summary (the `--stats` output
    /// and the vapp-check failure context). At most `max_lines` lines;
    /// the timeline is summarised, not listed.
    pub fn render_text(&self, max_lines: usize) -> String {
        fn ms(ns: f64) -> String {
            if ns >= 1e6 {
                format!("{:.2} ms", ns / 1e6)
            } else {
                format!("{:.1} µs", ns / 1e3)
            }
        }
        let mut lines = Vec::new();
        if !self.spans.is_empty() {
            lines.push("spans (count, total, mean, min..max):".to_string());
            for s in &self.spans {
                lines.push(format!(
                    "  {:<32} x{:<5} {:>10}  mean {:>10}  [{} .. {}]",
                    s.name,
                    s.count,
                    ms(s.total_ns as f64),
                    ms(s.mean_ns()),
                    ms(s.min_ns as f64),
                    ms(s.max_ns as f64),
                ));
            }
        }
        if !self.counters.is_empty() {
            lines.push("counters:".to_string());
            for (name, v) in &self.counters {
                lines.push(format!("  {name:<40} {v}"));
            }
        }
        if !self.histograms.is_empty() {
            lines.push("histograms (count, mean, min..max):".to_string());
            for h in &self.histograms {
                lines.push(format!(
                    "  {:<32} x{:<7} mean {:>10.1}  [{} .. {}]",
                    h.name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        if self.timeline_dropped > 0 {
            lines.push(format!(
                "(timeline: {} kept, {} dropped past cap)",
                self.timeline.len(),
                self.timeline_dropped
            ));
        }
        let total = lines.len();
        if total > max_lines && max_lines > 0 {
            lines.truncate(max_lines - 1);
            lines.push(format!("... ({} more lines)", total - (max_lines - 1)));
        }
        lines.join("\n")
    }
}

/// Writes `OBS_<run>.json` for the *current* registry into `dir`
/// (creating it), returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, full disk).
pub fn write_run_snapshot(dir: &Path, run: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("OBS_{run}.json"));
    std::fs::write(&path, crate::registry::current().snapshot().to_json(run))?;
    Ok(path)
}

/// Honours the `VAPP_OBS_OUT` environment contract: when the variable
/// names a directory, writes `OBS_<run>.json` there and returns the
/// path; a no-op (`None`) otherwise. Write failures are reported on
/// stderr rather than propagated — observability must not fail the run.
pub fn maybe_write_run_snapshot(run: &str) -> Option<PathBuf> {
    let dir = std::env::var_os("VAPP_OBS_OUT")?;
    match write_run_snapshot(Path::new(&dir), run) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("vapp-obs: cannot write OBS_{run}.json: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::registry::{with_registry, Registry};
    use std::sync::Arc;

    fn sample() -> Snapshot {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            crate::counter!("a.b.c", 7u64);
            crate::histogram!("h.i.j", 3u64);
            crate::histogram!("h.i.j", 0u64);
            let _s = crate::span!("s.p.q");
        });
        reg.snapshot()
    }

    #[test]
    fn json_snapshot_parses_and_reflects_values() {
        let snap = sample();
        let json = snap.to_json("unit \"test\"");
        let doc = Value::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("obs").and_then(Value::as_str), Some("vapp-obs"));
        assert_eq!(
            doc.get("run").and_then(Value::as_str),
            Some("unit \"test\"")
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("a.b.c"))
                .and_then(Value::as_u64),
            Some(7)
        );
        let h = doc.get("histograms").and_then(|h| h.get("h.i.j")).unwrap();
        assert_eq!(h.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(h.get("sum").and_then(Value::as_u64), Some(3));
        let buckets = h.get("buckets").and_then(Value::as_arr).unwrap();
        assert_eq!(buckets.len(), 2); // zero bucket + bit-length-2 bucket
        let s = doc.get("spans").and_then(|s| s.get("s.p.q")).unwrap();
        assert_eq!(s.get("count").and_then(Value::as_u64), Some(1));
        let tl = doc.get("timeline").and_then(Value::as_arr).unwrap();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].get("span").and_then(Value::as_str), Some("s.p.q"));
        assert_eq!(doc.get("timeline_dropped").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn empty_snapshot_is_still_valid_json() {
        let snap = Snapshot::default();
        let doc = Value::parse(&snap.to_json("empty")).expect("valid JSON");
        assert!(doc
            .get("counters")
            .and_then(Value::as_obj)
            .unwrap()
            .is_empty());
        assert!(doc
            .get("timeline")
            .and_then(Value::as_arr)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn text_rendering_truncates_to_line_budget() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            for i in 0..50 {
                crate::counter!(&format!("many.counter.{i:02}"), 1u64);
            }
        });
        let text = reg.snapshot().render_text(10);
        assert_eq!(text.lines().count(), 10);
        assert!(text.lines().last().unwrap().contains("more lines"));
        let full = reg.snapshot().render_text(1000);
        assert!(full.lines().count() > 50);
    }

    #[test]
    fn run_snapshot_writes_named_file() {
        let dir = std::env::temp_dir().join("vapp-obs-snapshot-test");
        let reg = Arc::new(Registry::new());
        let path = with_registry(reg, || {
            crate::counter!("file.write.test");
            write_run_snapshot(&dir, "selftest").expect("writable temp dir")
        });
        assert!(path.ends_with("OBS_selftest.json"));
        let text = std::fs::read_to_string(&path).expect("file exists");
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("file.write.test"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let _ = std::fs::remove_file(path);
    }
}
