//! The metrics registry: named counters, histograms, span statistics
//! and the call-path profile.
//!
//! Values are plain atomics — recording never blocks on other recorders.
//! The only locks are the name → handle maps (taken once per lookup;
//! hot loops should hoist the [`Counter`] / [`Histogram`] handle out of
//! the loop, see [`Registry::counter`]) and the timeline/profile maps
//! (taken once per *span close*, which is coarse by design).
//!
//! Lock poisoning is survivable by construction: a worker thread that
//! panics while a span guard is live drops that span during unwinding,
//! and the drop path must still be able to record — so every lock site
//! recovers the inner value with `unwrap_or_else(|e| e.into_inner())`
//! instead of cascading the panic into an abort. The maps hold only
//! monotonic aggregates, so a poisoned-then-recovered map is never
//! structurally torn.
//!
//! There is one process-global registry ([`global`]) plus a thread-local
//! override stack ([`with_registry`]) so tests and property-check cases
//! can observe their own isolated metrics while the rest of the process
//! keeps using the global one.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::profile::ProfileEntry;
use crate::sketch::{self, Sketch};
use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};

/// Locks a mutex, recovering the guard if a panicking thread poisoned
/// it (see the module docs — observability must survive unwinding).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Legacy power-of-two bucket count (pre-2.0 snapshot surface): one per
/// possible bit length of a `u64` value, plus one for zero. Histograms
/// are now backed by the finer [`crate::sketch`] buckets; these coarse
/// bins remain exactly reconstructible from them.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Legacy bucket index of a value: its bit length (0 for 0). Kept as
/// the documented meaning of a snapshot's `buckets` field.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A histogram backed by the log-bucketed quantile sketch
/// ([`crate::sketch`]): γ = 2^(1/32) geometric buckets recorded as
/// atomics, plus exact count, sum, min and max. Snapshots carry both
/// the sketch (for p50..p999) and the legacy power-of-two buckets
/// derived from it.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..sketch::SKETCH_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[sketch::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The recorded distribution as a mergeable [`Sketch`].
    pub fn to_sketch(&self) -> Sketch {
        let count = self.count.load(Ordering::Relaxed);
        let sparse: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect();
        Sketch::from_parts(
            &sparse,
            count,
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
        .expect("atomic buckets are consistent with their own count")
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let sketch = self.to_sketch();
        HistogramSnapshot {
            name: name.to_string(),
            count: sketch.count(),
            sum: sketch.sum(),
            min: sketch.min(),
            max: sketch.max(),
            buckets: sketch.legacy_pow2_buckets(),
            sketch,
        }
    }
}

/// Aggregate wall-clock statistics for one span name.
#[derive(Debug)]
pub struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl SpanStats {
    /// Folds one completed span duration into the aggregate.
    pub fn record(&self, dur_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(dur_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> SpanSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        SpanSnapshot {
            name: name.to_string(),
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Aggregate statistics for one *call path* (the `>`-joined chain of
/// open span names, worker prefixes included — see
/// [`crate::span::with_path_prefix`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStats {
    /// Completed instances of this exact path.
    pub count: u64,
    /// Total wall-clock time, nanoseconds.
    pub total_ns: u64,
    /// Fastest instance.
    pub min_ns: u64,
    /// Slowest instance.
    pub max_ns: u64,
}

impl Default for PathStats {
    fn default() -> Self {
        PathStats {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

/// One completed span on the timeline (an individual record, unlike the
/// per-name aggregates — this is what gives *per-frame* durations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`crate.noun.verb`).
    pub name: String,
    /// `name=value` fields captured at the [`crate::span!`] call site.
    pub fields: String,
    /// Nesting depth at completion time (1 = top level).
    pub depth: u32,
    /// Start offset from the registry's creation, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Stable per-thread id ([`crate::span::current_tid`]; 1-based,
    /// assigned on first span close per thread) — the trace-event
    /// export's `tid`.
    pub tid: u64,
}

/// Timeline capacity. Beyond this, records are counted as dropped rather
/// than stored — the snapshot reports the drop count so truncation is
/// never silent.
pub const TIMELINE_CAP: usize = 16_384;

#[derive(Debug, Default)]
struct Timeline {
    records: Vec<SpanRecord>,
    dropped: u64,
}

/// A collection point for counters, histograms, span statistics, the
/// span timeline and the call-path profile.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, Arc<SpanStats>>>,
    profile: Mutex<BTreeMap<String, PathStats>>,
    timeline: Mutex<Timeline>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry; its epoch (timeline zero) is now.
    pub fn new() -> Self {
        Registry {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            profile: Mutex::new(BTreeMap::new()),
            timeline: Mutex::new(Timeline::default()),
        }
    }

    /// The registry's creation instant (timeline records are offsets
    /// from this).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The counter registered under `name`, creating it on first use.
    /// The handle is cheap to clone and can be cached across calls.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_recover(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock_recover(&self.histograms);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// The span statistics registered under `name`, creating them on
    /// first use.
    pub fn span_stats(&self, name: &str) -> Arc<SpanStats> {
        let mut map = lock_recover(&self.spans);
        if let Some(s) = map.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(SpanStats::default());
        map.insert(name.to_string(), Arc::clone(&s));
        s
    }

    /// Folds one completed span into the call-path profile under its
    /// full `>`-joined path.
    pub fn record_path(&self, path: &str, dur_ns: u64) {
        let mut map = lock_recover(&self.profile);
        let stats = map.entry(path.to_string()).or_default();
        stats.count += 1;
        stats.total_ns += dur_ns;
        stats.min_ns = stats.min_ns.min(dur_ns);
        stats.max_ns = stats.max_ns.max(dur_ns);
    }

    /// Appends one completed span to the timeline (or counts it as
    /// dropped past [`TIMELINE_CAP`]).
    pub fn record_span(&self, record: SpanRecord) {
        let mut tl = lock_recover(&self.timeline);
        if tl.records.len() < TIMELINE_CAP {
            tl.records.push(record);
        } else {
            tl.dropped += 1;
        }
    }

    /// A consistent copy of everything collected so far.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock_recover(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let histograms = lock_recover(&self.histograms)
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        let spans = lock_recover(&self.spans)
            .iter()
            .map(|(name, s)| s.snapshot(name))
            .collect();
        let profile = ProfileEntry::from_paths(lock_recover(&self.profile).iter());
        let tl = lock_recover(&self.timeline);
        Snapshot {
            captured_ns: self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            counters,
            histograms,
            spans,
            profile,
            timeline: tl.records.clone(),
            timeline_dropped: tl.dropped,
        }
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The process-global registry (created on first use).
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// The registry recording calls on this thread: the innermost
/// [`with_registry`] scope if one is active, the global registry
/// otherwise.
pub fn current() -> Arc<Registry> {
    SCOPED
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(global)
}

/// Runs `f` with `reg` installed as this thread's current registry.
/// Scopes nest; the previous registry is restored on exit, including on
/// panic (so a failing test case's metrics stay inspectable by the
/// caller that catches the panic).
pub fn with_registry<T>(reg: Arc<Registry>, f: impl FnOnce() -> T) -> T {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            SCOPED.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    SCOPED.with(|stack| stack.borrow_mut().push(reg));
    let _guard = PopGuard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("a.b.c").add(2);
        let handle = reg.counter("a.b.c");
        handle.add(3);
        assert_eq!(reg.counter("a.b.c").get(), 5);
        assert_eq!(reg.counter("other").get(), 0);
    }

    #[test]
    fn histogram_buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);

        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("h").expect("recorded");
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1006);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1000);
        // Legacy buckets: 0 -> b0, 1 -> b1, {2,3} -> b2, 1000 -> b10 —
        // the sketch-backed histogram must reconstruct these exactly.
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
        assert_eq!(hs.sketch.count(), 5);
    }

    #[test]
    fn histogram_sketch_reports_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.to_sketch();
        let p50 = s.quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 <= 0.02, "p50 {p50}");
    }

    #[test]
    fn scoped_registry_shadows_global_and_restores_on_panic() {
        let reg = Arc::new(Registry::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_registry(reg.clone(), || {
                current().counter("scoped.only").add(1);
                panic!("boom");
            })
        }));
        assert!(result.is_err());
        // The scope unwound: current() is the global registry again.
        assert_eq!(reg.snapshot().counter("scoped.only"), 1);
        assert!(!Arc::ptr_eq(&current(), &reg));
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        with_registry(outer.clone(), || {
            current().counter("depth").add(1);
            with_registry(inner.clone(), || {
                current().counter("depth").add(10);
            });
            current().counter("depth").add(100);
        });
        assert_eq!(outer.snapshot().counter("depth"), 101);
        assert_eq!(inner.snapshot().counter("depth"), 10);
    }

    #[test]
    fn timeline_caps_and_reports_drops() {
        let reg = Registry::new();
        for i in 0..(TIMELINE_CAP + 3) {
            reg.record_span(SpanRecord {
                name: "x".into(),
                fields: String::new(),
                depth: 1,
                start_ns: i as u64,
                dur_ns: 1,
                tid: 1,
            });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timeline.len(), TIMELINE_CAP);
        assert_eq!(snap.timeline_dropped, 3);
    }

    #[test]
    fn panic_inside_a_span_still_yields_a_usable_snapshot() {
        // A worker that panics drops its live span guards during
        // unwinding; the registry must absorb that (recovering any
        // poisoned lock) and keep snapshotting.
        let reg = Arc::new(Registry::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_registry(reg.clone(), || {
                let _outer = crate::span!("test.panic.outer");
                let _inner = crate::span!("test.panic.inner");
                reg.counter("test.panic.before").add(1);
                panic!("worker exploded mid-span");
            })
        }));
        assert!(result.is_err());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("test.panic.before"), 1);
        // Both spans closed during unwinding and were recorded.
        assert_eq!(snap.span("test.panic.inner").expect("inner").count, 1);
        assert_eq!(snap.span("test.panic.outer").expect("outer").count, 1);
        assert_eq!(snap.timeline.len(), 2);
        assert!(snap
            .profile
            .iter()
            .any(|p| p.path == "test.panic.outer>test.panic.inner"));
    }

    #[test]
    fn path_profile_aggregates_by_full_path() {
        let reg = Registry::new();
        reg.record_path("a>b", 10);
        reg.record_path("a>b", 30);
        reg.record_path("a", 50);
        let snap = reg.snapshot();
        let ab = snap.profile.iter().find(|p| p.path == "a>b").expect("a>b");
        assert_eq!(
            (ab.count, ab.total_ns, ab.min_ns, ab.max_ns),
            (2, 40, 10, 30)
        );
        let a = snap.profile.iter().find(|p| p.path == "a").expect("a");
        // Self time = own total minus direct children's total.
        assert_eq!(a.self_ns, 10);
        assert_eq!(ab.self_ns, 40);
    }
}
