//! The metrics registry: named counters, histograms and span statistics.
//!
//! Values are plain atomics — recording never blocks on other recorders.
//! The only locks are the name → handle maps, taken once per lookup;
//! hot loops should hoist the [`Counter`] / [`Histogram`] handle out of
//! the loop (see [`Registry::counter`]).
//!
//! There is one process-global registry ([`global`]) plus a thread-local
//! override stack ([`with_registry`]) so tests and property-check cases
//! can observe their own isolated metrics while the rest of the process
//! keeps using the global one.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per possible bit length of a `u64`
/// value, plus one for zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket histogram with power-of-two bucket edges: bucket `b`
/// (for `b > 0`) counts values in `[2^(b-1), 2^b - 1]`; bucket 0 counts
/// exact zeros. Also tracks count, sum, min and max exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length (0 for 0).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(b, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((b as u32, c))
                })
                .collect(),
        }
    }
}

/// Aggregate wall-clock statistics for one span name.
#[derive(Debug)]
pub struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl SpanStats {
    /// Folds one completed span duration into the aggregate.
    pub fn record(&self, dur_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(dur_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> SpanSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        SpanSnapshot {
            name: name.to_string(),
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// One completed span on the timeline (an individual record, unlike the
/// per-name aggregates — this is what gives *per-frame* durations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`crate.noun.verb`).
    pub name: String,
    /// `name=value` fields captured at the [`crate::span!`] call site.
    pub fields: String,
    /// Nesting depth at completion time (1 = top level).
    pub depth: u32,
    /// Start offset from the registry's creation, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Timeline capacity. Beyond this, records are counted as dropped rather
/// than stored — the snapshot reports the drop count so truncation is
/// never silent.
pub const TIMELINE_CAP: usize = 16_384;

#[derive(Debug, Default)]
struct Timeline {
    records: Vec<SpanRecord>,
    dropped: u64,
}

/// A collection point for counters, histograms, span statistics and the
/// span timeline.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, Arc<SpanStats>>>,
    timeline: Mutex<Timeline>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry; its epoch (timeline zero) is now.
    pub fn new() -> Self {
        Registry {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            timeline: Mutex::new(Timeline::default()),
        }
    }

    /// The registry's creation instant (timeline records are offsets
    /// from this).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The counter registered under `name`, creating it on first use.
    /// The handle is cheap to clone and can be cached across calls.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// The span statistics registered under `name`, creating them on
    /// first use.
    pub fn span_stats(&self, name: &str) -> Arc<SpanStats> {
        let mut map = self.spans.lock().expect("span map poisoned");
        if let Some(s) = map.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(SpanStats::default());
        map.insert(name.to_string(), Arc::clone(&s));
        s
    }

    /// Appends one completed span to the timeline (or counts it as
    /// dropped past [`TIMELINE_CAP`]).
    pub fn record_span(&self, record: SpanRecord) {
        let mut tl = self.timeline.lock().expect("timeline poisoned");
        if tl.records.len() < TIMELINE_CAP {
            tl.records.push(record);
        } else {
            tl.dropped += 1;
        }
    }

    /// A consistent copy of everything collected so far.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("span map poisoned")
            .iter()
            .map(|(name, s)| s.snapshot(name))
            .collect();
        let tl = self.timeline.lock().expect("timeline poisoned");
        Snapshot {
            counters,
            histograms,
            spans,
            timeline: tl.records.clone(),
            timeline_dropped: tl.dropped,
        }
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The process-global registry (created on first use).
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// The registry recording calls on this thread: the innermost
/// [`with_registry`] scope if one is active, the global registry
/// otherwise.
pub fn current() -> Arc<Registry> {
    SCOPED
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(global)
}

/// Runs `f` with `reg` installed as this thread's current registry.
/// Scopes nest; the previous registry is restored on exit, including on
/// panic (so a failing test case's metrics stay inspectable by the
/// caller that catches the panic).
pub fn with_registry<T>(reg: Arc<Registry>, f: impl FnOnce() -> T) -> T {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            SCOPED.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    SCOPED.with(|stack| stack.borrow_mut().push(reg));
    let _guard = PopGuard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("a.b.c").add(2);
        let handle = reg.counter("a.b.c");
        handle.add(3);
        assert_eq!(reg.counter("a.b.c").get(), 5);
        assert_eq!(reg.counter("other").get(), 0);
    }

    #[test]
    fn histogram_buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);

        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("h").expect("recorded");
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1006);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1000);
        // buckets: 0 -> b0, 1 -> b1, {2,3} -> b2, 1000 -> b10
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn scoped_registry_shadows_global_and_restores_on_panic() {
        let reg = Arc::new(Registry::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_registry(reg.clone(), || {
                current().counter("scoped.only").add(1);
                panic!("boom");
            })
        }));
        assert!(result.is_err());
        // The scope unwound: current() is the global registry again.
        assert_eq!(reg.snapshot().counter("scoped.only"), 1);
        assert!(!Arc::ptr_eq(&current(), &reg));
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        with_registry(outer.clone(), || {
            current().counter("depth").add(1);
            with_registry(inner.clone(), || {
                current().counter("depth").add(10);
            });
            current().counter("depth").add(100);
        });
        assert_eq!(outer.snapshot().counter("depth"), 101);
        assert_eq!(inner.snapshot().counter("depth"), 10);
    }

    #[test]
    fn timeline_caps_and_reports_drops() {
        let reg = Registry::new();
        for i in 0..(TIMELINE_CAP + 3) {
            reg.record_span(SpanRecord {
                name: "x".into(),
                fields: String::new(),
                depth: 1,
                start_ns: i as u64,
                dur_ns: 1,
            });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timeline.len(), TIMELINE_CAP);
        assert_eq!(snap.timeline_dropped, 3);
    }
}
