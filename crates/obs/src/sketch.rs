//! A mergeable log-bucketed quantile sketch (DDSketch-style).
//!
//! Values are binned geometrically: each power-of-two octave is split
//! into [`SUB_BUCKETS`] = 32 sub-buckets, so consecutive bucket
//! boundaries are a factor of γ = 2^(1/32) ≈ 1.0219 apart. Reporting a
//! bucket's geometric midpoint bounds the relative quantile error by
//! 2^(1/64) − 1 ≈ 1.09%, comfortably inside the 2% contract pinned by
//! the property tests. Memory is constant (2049 `u64` counts) and
//! independent of how many values are recorded.
//!
//! **Merging is exact**: a sketch is just per-bucket counts plus exact
//! count/sum/min/max, so merging per-worker sketches is component-wise
//! addition — the merged sketch is *bit-for-bit identical* to the
//! sketch a single thread would have produced from the same values, in
//! any merge order. That property is what lets `histogram!` data flow
//! through `vapp-par` workers without perturbing snapshots.
//!
//! The bucket index of a value is computed from its exact integer
//! octave (`63 − leading_zeros`); only the sub-bucket within the octave
//! uses floating point, clamped to the octave — so the legacy
//! power-of-two histogram buckets (bit-length bins) are *exactly*
//! reconstructible from a sketch (see [`Sketch::legacy_pow2_buckets`]),
//! keeping the pre-2.0 snapshot surface intact.

/// Sub-buckets per power-of-two octave. 32 gives γ = 2^(1/32) and a
/// worst-case midpoint relative error of 2^(1/64) − 1 ≈ 1.09%.
pub const SUB_BUCKETS: usize = 32;

/// Total bucket count: 64 octaves × [`SUB_BUCKETS`] plus the dedicated
/// zero bucket at index 0.
pub const SKETCH_BUCKETS: usize = 64 * SUB_BUCKETS + 1;

/// Bucket index of a value. 0 is the exact-zero bucket; a value in
/// octave `e` (i.e. `2^e <= v < 2^(e+1)`) lands in
/// `1 + 32·e + floor(32·log2(v / 2^e))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    // The octave is exact integer arithmetic; only the fractional
    // sub-bucket position goes through f64, and it is clamped into the
    // octave so boundary rounding can never leak into a neighbour
    // octave (which would break the legacy-bucket reconstruction).
    let e = 63 - value.leading_zeros() as usize;
    let mantissa = value as f64 / (1u64 << e) as f64; // in [1, 2)
    let sub = ((mantissa.log2() * SUB_BUCKETS as f64) as usize).min(SUB_BUCKETS - 1);
    1 + e * SUB_BUCKETS + sub
}

/// Representative value of a bucket: 0 for the zero bucket, the
/// geometric midpoint `2^((i + 0.5) / 32)` of bucket `1 + i` otherwise.
#[inline]
pub fn bucket_value(index: usize) -> f64 {
    if index == 0 {
        0.0
    } else {
        (((index - 1) as f64 + 0.5) / SUB_BUCKETS as f64).exp2()
    }
}

/// The quantile points every snapshot reports.
pub const SNAPSHOT_QUANTILES: [(&str, f64); 5] = [
    ("p50", 0.50),
    ("p90", 0.90),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
];

/// A plain (non-atomic) mergeable quantile sketch. This is the value
/// type: the registry's [`crate::registry::Histogram`] keeps the same
/// buckets in atomics and snapshots into one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sketch {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Sketch {
    fn default() -> Self {
        Self::new()
    }
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Sketch {
            counts: vec![0; SKETCH_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rebuilds a sketch from snapshot parts: sparse `(bucket, count)`
    /// pairs plus the exact aggregates (used by JSON parsing).
    ///
    /// # Errors
    ///
    /// Rejects bucket indices outside [`SKETCH_BUCKETS`] and bucket
    /// counts that do not sum to `count`.
    pub fn from_parts(
        buckets: &[(usize, u64)],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Result<Self, String> {
        let mut s = Sketch::new();
        let mut total = 0u64;
        for &(idx, c) in buckets {
            if idx >= SKETCH_BUCKETS {
                return Err(format!("sketch bucket index {idx} out of range"));
            }
            s.counts[idx] = s.counts[idx].wrapping_add(c);
            total = total.wrapping_add(c);
        }
        if total != count {
            return Err(format!(
                "sketch bucket counts sum to {total}, expected count {count}"
            ));
        }
        s.count = count;
        s.sum = sum;
        s.min = if count == 0 { u64::MAX } else { min };
        s.max = max;
        Ok(s)
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value` (used for weighted samples,
    /// e.g. one bench batch standing for `iters` iterations).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(value.wrapping_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Exact: component-wise addition, so
    /// merge order can never change the result.
    pub fn merge(&mut self, other: &Sketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_index, count)` pairs in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c > 0).then_some((i, c)))
    }

    /// The estimated `q`-quantile (nearest-rank on `floor(q·(n−1))`),
    /// clamped into `[min, max]`; 0 when empty. Relative error is
    /// bounded by 2^(1/64) − 1 ≈ 1.09% before clamping.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).floor() as u64;
        // The extreme order statistics are tracked exactly — report them
        // as such instead of their bucket midpoints.
        if rank == 0 {
            return self.min() as f64;
        }
        if rank == self.count - 1 {
            return self.max as f64;
        }
        let mut cum = 0u64;
        for (idx, c) in self.nonzero_buckets() {
            cum += c;
            if cum > rank {
                return bucket_value(idx).clamp(self.min() as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// The standard snapshot quantile set ([`SNAPSHOT_QUANTILES`]).
    pub fn snapshot_quantiles(&self) -> [(&'static str, f64); 5] {
        SNAPSHOT_QUANTILES.map(|(name, q)| (name, self.quantile(q)))
    }

    /// Reconstructs the legacy power-of-two histogram buckets (pre-2.0
    /// snapshot surface): `(bit_length, count)` pairs where bucket
    /// `b > 0` counts values in `[2^(b−1), 2^b − 1]` and bucket 0 counts
    /// exact zeros. Exact because sketch octaves nest inside bit-length
    /// bins.
    pub fn legacy_pow2_buckets(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        if self.counts[0] > 0 {
            out.push((0, self.counts[0]));
        }
        for b in 1..=64u32 {
            let lo = 1 + (b as usize - 1) * SUB_BUCKETS;
            let c: u64 = self.counts[lo..lo + SUB_BUCKETS].iter().sum();
            if c > 0 {
                out.push((b, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_on_octave_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 1 + SUB_BUCKETS);
        assert_eq!(bucket_index(4), 1 + 2 * SUB_BUCKETS);
        // The top of each octave stays inside it.
        for e in 1..64 {
            let top = if e == 63 {
                u64::MAX
            } else {
                (1u64 << (e + 1)) - 1
            };
            let idx = bucket_index(top);
            assert!(idx > e as usize * SUB_BUCKETS, "2^{e} top too low");
            assert!(idx < 1 + (e as usize + 1) * SUB_BUCKETS, "2^{e} top leaked");
        }
        assert!(bucket_index(u64::MAX) < SKETCH_BUCKETS);
    }

    #[test]
    fn representative_error_is_within_the_gamma_bound() {
        // γ-midpoint bound: |rep − v| / v ≤ 2^(1/64) − 1.
        let bound = (1.0f64 / 64.0).exp2() - 1.0 + 1e-12;
        for v in [1u64, 3, 7, 100, 1023, 1024, 65_537, 1 << 40, u64::MAX] {
            let rep = bucket_value(bucket_index(v));
            let rel = (rep - v as f64).abs() / v as f64;
            assert!(rel <= bound, "v={v}: rel error {rel}");
        }
    }

    #[test]
    fn quantiles_track_exact_order_statistics() {
        let mut s = Sketch::new();
        let values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            s.record(v);
        }
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let est = s.quantile(q);
            let rel = (est - exact as f64).abs() / exact as f64;
            assert!(rel <= 0.02, "q={q}: est {est} vs exact {exact}");
        }
        assert_eq!(s.quantile(0.0), 1.0); // clamped to min
        assert_eq!(s.quantile(1.0), 1000.0); // clamped to max
    }

    #[test]
    fn merge_is_bit_for_bit_exact() {
        let values: Vec<u64> = (0..500).map(|i| (i * i * 2654435761) % 100_000).collect();
        let mut single = Sketch::new();
        let mut parts: Vec<Sketch> = (0..8).map(|_| Sketch::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.record(v);
            parts[i % 8].record(v);
        }
        let mut merged = Sketch::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, single);
        for (_, q) in SNAPSHOT_QUANTILES {
            assert_eq!(merged.quantile(q).to_bits(), single.quantile(q).to_bits());
        }
    }

    #[test]
    fn legacy_buckets_match_bit_length_binning() {
        let mut s = Sketch::new();
        for v in [0u64, 1, 2, 3, 1000] {
            s.record(v);
        }
        // Same shape the pre-2.0 power-of-two histogram produced.
        assert_eq!(
            s.legacy_pow2_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (10, 1)]
        );
    }

    #[test]
    fn weighted_recording_matches_repetition() {
        let mut a = Sketch::new();
        let mut b = Sketch::new();
        for _ in 0..7 {
            a.record(42);
        }
        b.record_n(42, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn parts_round_trip() {
        let mut s = Sketch::new();
        for v in [0u64, 5, 5, 99, 12_345] {
            s.record(v);
        }
        let sparse: Vec<(usize, u64)> = s.nonzero_buckets().collect();
        let rebuilt =
            Sketch::from_parts(&sparse, s.count(), s.sum(), s.min(), s.max()).expect("valid parts");
        assert_eq!(rebuilt, s);
        assert!(Sketch::from_parts(&[(SKETCH_BUCKETS, 1)], 1, 0, 0, 0).is_err());
        assert!(Sketch::from_parts(&[(1, 2)], 3, 0, 0, 0).is_err());
    }
}
