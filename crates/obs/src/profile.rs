//! The hierarchical span-tree profile: completed spans aggregated by
//! full call path (`outer>inner>leaf`), with self-time attribution.
//!
//! Unlike the per-name [`crate::SpanSnapshot`] aggregates, the profile
//! distinguishes *where* a span ran: `core.level.corrupt` under
//! `core.store.load` is a different row than the same span under a
//! bench loop. Worker threads spawned by `vapp-par` install the
//! spawning thread's span path as a prefix
//! ([`crate::span::with_path_prefix`]), so worker-side spans fold into
//! the caller's subtree and the profile is identical at any thread
//! count (paths and counts exactly; durations are wall-clock).
//!
//! **Self time** is a snapshot-time derivation: a path's total minus
//! the total of its *direct* children, saturating at zero. Saturation
//! matters under parallelism — children that ran concurrently on N
//! workers can accumulate more wall-clock than their parent span's own
//! duration, which simply means the parent's self time is nil.

use std::fmt::Write as _;

use crate::registry::PathStats;

/// One aggregated call path in a snapshot's profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Full `>`-joined call path (e.g. `core.store.load>core.level.corrupt`).
    pub path: String,
    /// Completed instances of this exact path.
    pub count: u64,
    /// Total wall-clock time across instances, nanoseconds.
    pub total_ns: u64,
    /// Total minus direct children's total (saturating), nanoseconds.
    pub self_ns: u64,
    /// Fastest instance, nanoseconds.
    pub min_ns: u64,
    /// Slowest instance, nanoseconds.
    pub max_ns: u64,
}

impl ProfileEntry {
    /// Nesting depth: 1 for a root path.
    pub fn depth(&self) -> usize {
        self.path.matches('>').count() + 1
    }

    /// The leaf span name (last path segment).
    pub fn name(&self) -> &str {
        self.path.rsplit('>').next().unwrap_or(&self.path)
    }

    /// The parent path, if any.
    pub fn parent(&self) -> Option<&str> {
        self.path.rfind('>').map(|i| &self.path[..i])
    }

    /// Builds profile entries (path order, self time computed) from the
    /// registry's path → stats map.
    pub fn from_paths<'a>(
        paths: impl Iterator<Item = (&'a String, &'a PathStats)>,
    ) -> Vec<ProfileEntry> {
        let mut entries: Vec<ProfileEntry> = paths
            .map(|(path, s)| ProfileEntry {
                path: path.clone(),
                count: s.count,
                total_ns: s.total_ns,
                self_ns: s.total_ns,
                min_ns: if s.count == 0 { 0 } else { s.min_ns },
                max_ns: s.max_ns,
            })
            .collect();
        compute_self_times(&mut entries);
        entries
    }
}

/// Recomputes every entry's `self_ns` as total minus direct children's
/// total (saturating). Entries must be keyed by unique paths.
pub fn compute_self_times(entries: &mut [ProfileEntry]) {
    let mut child_totals: std::collections::BTreeMap<String, u64> = Default::default();
    for e in entries.iter() {
        if let Some(p) = e.parent() {
            *child_totals.entry(p.to_string()).or_insert(0) += e.total_ns;
        }
    }
    for e in entries.iter_mut() {
        let children = child_totals.get(&e.path).copied().unwrap_or(0);
        e.self_ns = e.total_ns.saturating_sub(children);
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders the profile as an indented tree in path order: call count,
/// total, self, min..max per row.
pub fn render_tree(entries: &[ProfileEntry]) -> String {
    let mut out = String::new();
    if entries.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "{:<56} {:>8} {:>12} {:>12}  min..max",
        "path (tree)", "calls", "total", "self"
    );
    for e in entries {
        let indent = "  ".repeat(e.depth() - 1);
        let _ = writeln!(
            out,
            "{:<56} {:>8} {:>12} {:>12}  {}..{}",
            format!("{indent}{}", e.name()),
            e.count,
            fmt_ns(e.total_ns),
            fmt_ns(e.self_ns),
            fmt_ns(e.min_ns),
            fmt_ns(e.max_ns),
        );
    }
    out
}

/// Renders the top-`limit` paths by self time as a flat table, with
/// each row's share of the summed self time.
pub fn render_self_table(entries: &[ProfileEntry], limit: usize) -> String {
    let mut out = String::new();
    let total_self: u64 = entries.iter().map(|e| e.self_ns).sum();
    if entries.is_empty() || total_self == 0 {
        return out;
    }
    let mut by_self: Vec<&ProfileEntry> = entries.iter().collect();
    by_self.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    let _ = writeln!(
        out,
        "{:<64} {:>8} {:>12} {:>7}",
        "path (by self time)", "calls", "self", "share"
    );
    for e in by_self.iter().take(limit) {
        let _ = writeln!(
            out,
            "{:<64} {:>8} {:>12} {:>6.1}%",
            e.path,
            e.count,
            fmt_ns(e.self_ns),
            100.0 * e.self_ns as f64 / total_self as f64,
        );
    }
    if by_self.len() > limit {
        let _ = writeln!(out, "... ({} more paths)", by_self.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, count: u64, total_ns: u64) -> ProfileEntry {
        ProfileEntry {
            path: path.into(),
            count,
            total_ns,
            self_ns: total_ns,
            min_ns: total_ns / count.max(1),
            max_ns: total_ns,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let mut e = vec![
            entry("root", 1, 100),
            entry("root>a", 2, 30),
            entry("root>b", 1, 50),
            entry("root>a>leaf", 4, 25),
        ];
        compute_self_times(&mut e);
        let get = |p: &str| e.iter().find(|x| x.path == p).unwrap().self_ns;
        assert_eq!(get("root"), 20); // 100 − (30 + 50); grandchild not counted
        assert_eq!(get("root>a"), 5); // 30 − 25
        assert_eq!(get("root>b"), 50);
        assert_eq!(get("root>a>leaf"), 25);
    }

    #[test]
    fn parallel_children_saturate_self_time_at_zero() {
        // 4 workers × 40 ns of child wall-clock under a 100 ns parent.
        let mut e = vec![entry("root", 1, 100), entry("root>unit", 4, 160)];
        compute_self_times(&mut e);
        assert_eq!(e[0].self_ns, 0);
    }

    #[test]
    fn depth_name_and_parent_derive_from_the_path() {
        let e = entry("a.x>b.y>c.z", 1, 1);
        assert_eq!(e.depth(), 3);
        assert_eq!(e.name(), "c.z");
        assert_eq!(e.parent(), Some("a.x>b.y"));
        let root = entry("a.x", 1, 1);
        assert_eq!(root.depth(), 1);
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn renders_tree_and_self_table() {
        let mut e = vec![
            entry("root", 1, 2_000_000),
            entry("root>fast", 10, 400_000),
            entry("root>slow", 2, 1_500_000),
        ];
        compute_self_times(&mut e);
        let tree = render_tree(&e);
        assert!(tree.contains("root"));
        assert!(tree.contains("  fast"), "children indent:\n{tree}");
        let table = render_self_table(&e, 2);
        assert!(table.contains("root>slow"));
        assert!(table.contains("more paths"), "limit applies:\n{table}");
    }
}
