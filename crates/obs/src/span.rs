//! Hierarchical wall-clock spans.
//!
//! A [`Span`] is an RAII guard: [`Span::enter`] notes the start instant
//! and pushes the name onto a thread-local stack (so events and nested
//! spans know their context); dropping it records the duration into the
//! current registry's per-name aggregates, the call-path profile
//! ([`crate::profile`]) and the bounded timeline.
//!
//! Spans are deliberately coarse — per frame, per stream, per pipeline
//! stage — so two `Instant` reads and one registry update per span are
//! negligible next to the work they measure. Per-bit or per-bin work is
//! counted with [`crate::counter!`] instead.
//!
//! # Worker path prefixes
//!
//! A thread's full span path is a *prefix* (installed once per worker
//! by `vapp-par` via [`with_path_prefix`], capturing the spawning
//! thread's open spans) followed by the thread's own stack. That is
//! what keeps the call-path profile identical at any thread count: a
//! span opened inside a parallel unit folds into the same
//! `caller>unit` path whether the unit ran inline on the caller or on a
//! worker thread.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::level::{stderr_enabled, Level};
use crate::registry::{current, SpanRecord};

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static PATH_PREFIX: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Next thread id to hand out. Ids are 1-based and stable for a
/// thread's lifetime; the order of assignment follows first use, so the
/// main thread is 1 in single-threaded runs.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// A small process-stable id for the calling thread (1-based, assigned
/// on first use). Stood up for the trace-event export: `std::thread`
/// does not expose a stable integral id, and trace viewers need one.
pub fn current_tid() -> u64 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

/// The `>`-joined names of the spans currently open on this thread
/// (worker path prefix first, then the local stack, outermost first);
/// empty when no span is active and no prefix is installed.
pub fn current_path() -> String {
    current_path_parts().join(">")
}

/// The open-span path as individual segments (prefix + local stack).
/// `vapp-par` captures this on the spawning thread and installs it in
/// workers via [`with_path_prefix`].
pub fn current_path_parts() -> Vec<String> {
    let mut parts = PATH_PREFIX.with(|p| p.borrow().clone());
    SPAN_STACK.with(|stack| parts.extend(stack.borrow().iter().cloned()));
    parts
}

/// Current nesting depth (installed prefix + open spans on this thread).
pub fn current_depth() -> usize {
    PATH_PREFIX.with(|p| p.borrow().len()) + SPAN_STACK.with(|stack| stack.borrow().len())
}

/// Runs `f` with `prefix` installed as this thread's span-path prefix
/// (replacing any previous prefix, which is restored on exit, including
/// on panic). Used by worker pools so spans opened on the worker fold
/// into the spawning thread's subtree.
pub fn with_path_prefix<T>(prefix: &[String], f: impl FnOnce() -> T) -> T {
    struct Restore(Vec<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            PATH_PREFIX.with(|p| *p.borrow_mut() = std::mem::take(&mut self.0));
        }
    }
    let previous = PATH_PREFIX.with(|p| std::mem::replace(&mut *p.borrow_mut(), prefix.to_vec()));
    let _restore = Restore(previous);
    f()
}

/// An open span; created by the [`crate::span!`] macro.
#[derive(Debug)]
pub struct Span {
    name: String,
    fields: String,
    start: Instant,
}

impl Span {
    /// Opens a span: records the start instant and enters the name onto
    /// this thread's span stack.
    pub fn enter(name: &str, fields: String) -> Span {
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name.to_string()));
        Span {
            name: name.to_string(),
            fields,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // Depth and full path are taken *before* popping, so both
        // include this span itself (and any worker prefix).
        let depth = current_depth() as u32;
        let full_path = current_path();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        if stderr_enabled(Level::Debug) {
            let path = current_path();
            let sep = if path.is_empty() { "" } else { ">" };
            let braces = if self.fields.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", self.fields)
            };
            eprintln!(
                "[span] {path}{sep}{}{braces} {:.3} ms",
                self.name,
                dur_ns as f64 / 1e6
            );
        }
        let reg = current();
        reg.span_stats(&self.name).record(dur_ns);
        reg.record_path(&full_path, dur_ns);
        let start_ns = self
            .start
            .duration_since(reg.epoch())
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        reg.record_span(SpanRecord {
            name: std::mem::take(&mut self.name),
            fields: std::mem::take(&mut self.fields),
            depth,
            start_ns,
            dur_ns,
            tid: current_tid(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{with_registry, Registry};
    use std::sync::Arc;

    #[test]
    fn spans_nest_and_record_depth() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            assert_eq!(current_depth(), 0);
            let _outer = Span::enter("outer.work.run", String::new());
            assert_eq!(current_path(), "outer.work.run");
            {
                let _inner = Span::enter("inner.work.run", String::new());
                assert_eq!(current_path(), "outer.work.run>inner.work.run");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        });
        let snap = reg.snapshot();
        // Inner completed first.
        assert_eq!(snap.timeline[0].name, "inner.work.run");
        assert_eq!(snap.timeline[0].depth, 2);
        assert_eq!(snap.timeline[1].name, "outer.work.run");
        assert_eq!(snap.timeline[1].depth, 1);
        assert!(snap.timeline[1].dur_ns >= snap.timeline[0].dur_ns);
        // Same thread closed both spans.
        assert_eq!(snap.timeline[0].tid, snap.timeline[1].tid);
        assert!(snap.timeline[0].tid >= 1);
    }

    #[test]
    fn aggregates_cover_all_instances() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            for _ in 0..5 {
                let _s = Span::enter("repeat.work.run", String::new());
            }
        });
        let snap = reg.snapshot();
        let s = snap.span("repeat.work.run").expect("recorded");
        assert_eq!(s.count, 5);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
    }

    #[test]
    fn profile_paths_include_the_worker_prefix() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            let prefix = vec!["outer.region.run".to_string()];
            with_path_prefix(&prefix, || {
                assert_eq!(current_depth(), 1);
                let _s = Span::enter("unit.work.run", String::new());
                assert_eq!(current_path(), "outer.region.run>unit.work.run");
                assert_eq!(current_depth(), 2);
            });
            assert_eq!(current_depth(), 0);
        });
        let snap = reg.snapshot();
        assert!(snap
            .profile
            .iter()
            .any(|p| p.path == "outer.region.run>unit.work.run" && p.count == 1));
        // The prefix affects the path and depth, not the aggregate name.
        assert_eq!(snap.span("unit.work.run").expect("named").count, 1);
        assert_eq!(snap.timeline[0].depth, 2);
    }

    #[test]
    fn prefix_scopes_nest_and_restore() {
        let a = vec!["a".to_string()];
        let b = vec!["b1".to_string(), "b2".to_string()];
        with_path_prefix(&a, || {
            assert_eq!(current_path(), "a");
            with_path_prefix(&b, || assert_eq!(current_path(), "b1>b2"));
            assert_eq!(current_path(), "a");
        });
        assert_eq!(current_path(), "");
    }

    #[test]
    fn tids_are_stable_per_thread_and_distinct_across_threads() {
        let mine = current_tid();
        assert_eq!(current_tid(), mine);
        let other = std::thread::spawn(current_tid).join().expect("join");
        assert_ne!(mine, other);
    }
}
