//! Hierarchical wall-clock spans.
//!
//! A [`Span`] is an RAII guard: [`Span::enter`] notes the start instant
//! and pushes the name onto a thread-local stack (so events and nested
//! spans know their context); dropping it records the duration into the
//! current registry's per-name aggregates and bounded timeline.
//!
//! Spans are deliberately coarse — per frame, per stream, per pipeline
//! stage — so two `Instant` reads and one registry update per span are
//! negligible next to the work they measure. Per-bit or per-bin work is
//! counted with [`crate::counter!`] instead.

use std::cell::RefCell;
use std::time::Instant;

use crate::level::{stderr_enabled, Level};
use crate::registry::{current, SpanRecord};

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The `>`-joined names of the spans currently open on this thread
/// (outermost first); empty when no span is active.
pub fn current_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join(">"))
}

/// Current nesting depth (number of open spans on this thread).
pub fn current_depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}

/// An open span; created by the [`crate::span!`] macro.
#[derive(Debug)]
pub struct Span {
    name: String,
    fields: String,
    start: Instant,
}

impl Span {
    /// Opens a span: records the start instant and enters the name onto
    /// this thread's span stack.
    pub fn enter(name: &str, fields: String) -> Span {
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name.to_string()));
        Span {
            name: name.to_string(),
            fields,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let depth = current_depth() as u32;
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        if stderr_enabled(Level::Debug) {
            let path = current_path();
            let sep = if path.is_empty() { "" } else { ">" };
            let braces = if self.fields.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", self.fields)
            };
            eprintln!(
                "[span] {path}{sep}{}{braces} {:.3} ms",
                self.name,
                dur_ns as f64 / 1e6
            );
        }
        let reg = current();
        reg.span_stats(&self.name).record(dur_ns);
        let start_ns = self
            .start
            .duration_since(reg.epoch())
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        reg.record_span(SpanRecord {
            name: std::mem::take(&mut self.name),
            fields: std::mem::take(&mut self.fields),
            depth,
            start_ns,
            dur_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{with_registry, Registry};
    use std::sync::Arc;

    #[test]
    fn spans_nest_and_record_depth() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            assert_eq!(current_depth(), 0);
            let _outer = Span::enter("outer.work.run", String::new());
            assert_eq!(current_path(), "outer.work.run");
            {
                let _inner = Span::enter("inner.work.run", String::new());
                assert_eq!(current_path(), "outer.work.run>inner.work.run");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        });
        let snap = reg.snapshot();
        // Inner completed first.
        assert_eq!(snap.timeline[0].name, "inner.work.run");
        assert_eq!(snap.timeline[0].depth, 2);
        assert_eq!(snap.timeline[1].name, "outer.work.run");
        assert_eq!(snap.timeline[1].depth, 1);
        assert!(snap.timeline[1].dur_ns >= snap.timeline[0].dur_ns);
    }

    #[test]
    fn aggregates_cover_all_instances() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            for _ in 0..5 {
                let _s = Span::enter("repeat.work.run", String::new());
            }
        });
        let snap = reg.snapshot();
        let s = snap.span("repeat.work.run").expect("recorded");
        assert_eq!(s.count, 5);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
    }
}
