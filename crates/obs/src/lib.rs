//! # vapp-obs — zero-dependency tracing, metrics and events
//!
//! An in-repo structured observability layer in the spirit of the
//! `tracing` + `metrics` crates, built on `std` only (the workspace is
//! hermetic — see DESIGN.md §"Zero-dependency policy"). It provides:
//!
//! * **Spans** — [`span!`] opens a named, hierarchical wall-clock span
//!   (`Instant`-backed) that records its duration on drop into per-name
//!   aggregate statistics, the call-path profile ([`profile`]) and a
//!   bounded per-run timeline.
//! * **Profile** — completed spans aggregate by *full call path*
//!   (`outer>inner`) with self-time attribution; worker pools install
//!   the spawning thread's path as a prefix
//!   ([`span::with_path_prefix`]) so the tree is identical at any
//!   thread count. Rendered by `obs_report`.
//! * **Metrics** — [`counter!`] and [`histogram!`] update a global
//!   registry of named monotonic counters and histograms backed by a
//!   mergeable log-bucketed quantile sketch ([`sketch`], ~1% relative
//!   error, constant memory) that answers p50/p90/p95/p99/p999. Values
//!   are atomics; the name → handle maps are the only locks and handles
//!   can be hoisted out of hot loops via [`Registry::counter`] /
//!   [`Registry::histogram`].
//! * **Events** — [`event!`] and the leveled shorthands ([`error!`],
//!   [`warn!`], [`info!`], [`debug!`], [`trace!`]) replace ad-hoc
//!   `eprintln!` diagnostics. They format and print *only* when enabled
//!   by the `VAPP_OBS` environment variable, so library crates are
//!   silent by default.
//! * **Sinks** — a human-readable stderr sink gated by
//!   `VAPP_OBS=error|warn|info|debug|trace` (default: off), a
//!   machine-readable JSON snapshot ([`Snapshot::to_json`], written as
//!   `OBS_<run>.json` by [`write_run_snapshot`] — same shape discipline
//!   as the bench harness's `BENCH_*.json`; schema documented in
//!   [`snapshot`]), and a chrome://tracing trace-event export
//!   ([`mod@trace`], written by [`write_trace`]).
//!
//! ## Naming convention
//!
//! Spans, counters and histograms are named `crate.noun.verb` (e.g.
//! `codec.frame.encode`, `storage.bch.uncorrectable`,
//! `sim.flips.per_draw`). Per-level pipeline counters insert the level
//! index: `core.level.0.stored_bits`.
//!
//! ## Environment contract
//!
//! * `VAPP_OBS` — stderr verbosity: `off` (default), `error`, `warn`,
//!   `info`, `debug`, `trace`. Anything unrecognised means `off`.
//!   Metrics and span statistics are *always* collected (cheap atomics);
//!   the variable only gates the stderr sink.
//! * `VAPP_OBS_OUT` — when set to a directory, [`maybe_write_run_snapshot`]
//!   writes `OBS_<run>.json` there (used by the CLI, the examples and CI).
//! * `VAPP_OBS_TRACE` — when set to a file path, every snapshot-emitting
//!   entry point also writes a chrome://tracing trace-event JSON there
//!   ([`maybe_write_trace`]); `vapp --trace out.json` sets the same sink
//!   explicitly.
//!
//! ## Test isolation
//!
//! The registry is process-global by default, which is wrong for
//! parallel `cargo test` threads asserting on counter values. Use
//! [`registry::with_registry`] to install a fresh [`Registry`] for the
//! current thread for the duration of a closure:
//!
//! ```
//! use vapp_obs::{counter, registry};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(registry::Registry::new());
//! registry::with_registry(reg.clone(), || {
//!     counter!("demo.widgets.built", 3);
//! });
//! assert_eq!(reg.snapshot().counter("demo.widgets.built"), 3);
//! ```

pub mod json;
pub mod level;
pub mod profile;
pub mod registry;
pub mod sketch;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use level::{set_stderr_level, stderr_enabled, stderr_level, Level};
pub use profile::ProfileEntry;
pub use registry::{current, global, Registry};
pub use sketch::Sketch;
pub use snapshot::{
    maybe_write_run_snapshot, write_run_snapshot, HistogramSnapshot, Snapshot, SpanSnapshot,
    SCHEMA_MAJOR, SCHEMA_VERSION,
};
pub use span::Span;
pub use trace::{maybe_write_trace, write_trace};

/// Opens a wall-clock span; the returned guard records the duration when
/// dropped. Extra expressions become `name=value` fields on the
/// timeline record.
///
/// ```
/// let idx = 3;
/// {
///     let _span = vapp_obs::span!("codec.frame.encode", idx);
///     // ... timed work ...
/// } // duration recorded here
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name, String::new())
    };
    ($name:expr, $($field:expr),+ $(,)?) => {
        $crate::span::Span::enter($name, {
            let mut fields = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    if !fields.is_empty() {
                        fields.push(',');
                    }
                    let _ = write!(fields, "{}={:?}", stringify!($field), $field);
                }
            )+
            fields
        })
    };
}

/// Increments a named monotonic counter (by 1, or by an explicit amount).
///
/// ```
/// vapp_obs::counter!("storage.bch.uncorrectable");
/// vapp_obs::counter!("core.flips.injected", 17u64);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::registry::current().counter($name).add(1)
    };
    ($name:expr, $amount:expr) => {
        $crate::registry::current().counter($name).add($amount)
    };
}

/// Records a value into a named histogram (log-bucketed quantile
/// sketch; see [`sketch`]).
///
/// ```
/// vapp_obs::histogram!("sim.flips.per_draw", 12u64);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::registry::current().histogram($name).record($value)
    };
}

/// Emits a leveled event to the stderr sink. No formatting happens when
/// the level is disabled (the common `VAPP_OBS=off` case).
///
/// ```
/// vapp_obs::event!(vapp_obs::Level::Info, "core.assignment", "picked {} schemes", 4);
/// ```
#[macro_export]
macro_rules! event {
    ($lvl:expr, $target:expr, $($arg:tt)+) => {
        if $crate::level::stderr_enabled($lvl) {
            $crate::level::emit($lvl, $target, format_args!($($arg)+));
        }
    };
}

/// [`event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Error, $target, $($arg)+) };
}

/// [`event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Warn, $target, $($arg)+) };
}

/// [`event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Info, $target, $($arg)+) };
}

/// [`event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Debug, $target, $($arg)+) };
}

/// [`event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Trace, $target, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use crate::registry::{with_registry, Registry};
    use std::sync::Arc;

    #[test]
    fn macros_flow_into_scoped_registry() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            counter!("test.widgets.built");
            counter!("test.widgets.built", 4u64);
            histogram!("test.widget.size", 9u64);
            {
                let part = 7usize;
                let _s = span!("test.widget.assemble", part);
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("test.widgets.built"), 5);
        let h = snap
            .histogram("test.widget.size")
            .expect("histogram recorded");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 9);
        let s = snap.span("test.widget.assemble").expect("span recorded");
        assert_eq!(s.count, 1);
        assert!(s.total_ns >= s.min_ns);
        assert_eq!(snap.timeline.len(), 1);
        assert_eq!(snap.timeline[0].fields, "part=7");
    }

    #[test]
    fn span_fields_use_stringified_names() {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            let idx = 2usize;
            let _s = span!("test.named.fields", idx);
        });
        let snap = reg.snapshot();
        assert_eq!(snap.timeline[0].fields, "idx=2");
    }
}
