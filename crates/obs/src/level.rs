//! Event severity levels and the `VAPP_OBS`-gated stderr sink.
//!
//! The level is parsed from the environment once, on first use, into an
//! atomic — after that a gate check is a single relaxed load, cheap
//! enough to leave event call sites in library hot paths.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Event severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-corrupting conditions.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// High-level run milestones (per-video, per-experiment).
    Info = 3,
    /// Per-stage diagnostics (per-frame, per-level).
    Debug = 4,
    /// Everything, including per-block detail.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }

    /// Parses a `VAPP_OBS` value. Unrecognised strings mean "off" so a
    /// typo can never make a library crate noisy.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        })
    }
}

/// Sentinel meaning "not yet read from the environment".
const UNINIT: u8 = u8::MAX;
/// Sentinel meaning "stderr sink disabled".
const OFF: u8 = 0;

static STDERR_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn load_level() -> u8 {
    let v = STDERR_LEVEL.load(Ordering::Relaxed);
    if v != UNINIT {
        return v;
    }
    let parsed = std::env::var("VAPP_OBS")
        .ok()
        .and_then(|s| Level::parse(&s))
        .map(|l| l as u8)
        .unwrap_or(OFF);
    // A racing initialiser computes the same value; last store wins.
    STDERR_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// The stderr sink's maximum enabled level (`None` = off, the default).
pub fn stderr_level() -> Option<Level> {
    Level::from_u8(load_level())
}

/// Whether events at `level` reach stderr.
#[inline]
pub fn stderr_enabled(level: Level) -> bool {
    level as u8 <= load_level()
}

/// Overrides the stderr level programmatically (e.g. a `--verbose` CLI
/// flag), bypassing `VAPP_OBS`. `None` silences the sink.
pub fn set_stderr_level(level: Option<Level>) {
    STDERR_LEVEL.store(level.map(|l| l as u8).unwrap_or(OFF), Ordering::Relaxed);
}

/// Formats one event line to stderr. Called by the [`crate::event!`]
/// macro only after the level gate passed. The current span path gives
/// events their context, e.g.
/// `[debug] codec.video.encode>codec.frame.encode codec.mb: ...`.
pub fn emit(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let path = crate::span::current_path();
    if path.is_empty() {
        eprintln!("[{level}] {target}: {args}");
    } else {
        eprintln!("[{level}] {path} {target}: {args}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels_only() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse(" INFO "), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn programmatic_override_gates_events() {
        // Note: mutates process-global state; keep both checks in one
        // test so no parallel test observes a half-set level.
        set_stderr_level(Some(Level::Warn));
        assert!(stderr_enabled(Level::Error));
        assert!(stderr_enabled(Level::Warn));
        assert!(!stderr_enabled(Level::Info));
        set_stderr_level(None);
        assert!(!stderr_enabled(Level::Error));
        assert_eq!(stderr_level(), None);
    }
}
