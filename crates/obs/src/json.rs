//! Minimal JSON utilities: string escaping and number formatting for the
//! writers (snapshot, reports), plus a small recursive-descent parser so
//! in-repo tooling (tests, the bench-compare gate) can read the JSON the
//! workspace emits without external crates.
//!
//! The parser handles the full JSON grammar the repo's writers produce
//! (objects, arrays, strings with `\uXXXX` escapes, numbers, booleans,
//! null). It is not a streaming parser and keeps the document in memory,
//! which is fine for snapshot- and bench-sized files.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; exact for integers up to 2^53,
    /// far beyond any counter this repo snapshots into JSON).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants / missing).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (exact for magnitudes below
    /// 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, val: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(val)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\u{1}e";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = Value::parse(&doc).expect("parses");
        assert_eq!(v.get("k").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn parses_nested_structures_and_numbers() {
        let v = Value::parse(
            r#"{"a": [1, 2.5, -3e2, true, false, null], "b": {"c": "x"}, "n": 12345678901}"#,
        )
        .expect("parses");
        let arr = v.get("a").and_then(Value::as_arr).expect("array");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(arr[3], Value::Bool(true));
        assert_eq!(arr[5], Value::Null);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x")
        );
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(12_345_678_901));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }
}
