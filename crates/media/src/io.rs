//! A minimal raw-video file format (`VRAW`), in the spirit of Y4M:
//! a fixed header followed by packed 8-bit luma frames.
//!
//! ```text
//! "VRAW" | width: u32 | height: u32 | fps*100: u32 | frames: u32 | luma...
//! ```

use crate::{Frame, Plane, Video};

/// Errors from raw-video deserialisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseRawError {
    /// Magic mismatch: not a VRAW file.
    BadMagic,
    /// Header fields are impossible (zero dimension, absurd size).
    InvalidHeader,
    /// The buffer is shorter than the header promises.
    Truncated,
}

impl std::fmt::Display for ParseRawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseRawError::BadMagic => write!(f, "not a VRAW raw video"),
            ParseRawError::InvalidHeader => write!(f, "invalid VRAW header"),
            ParseRawError::Truncated => write!(f, "VRAW data truncated"),
        }
    }
}

impl std::error::Error for ParseRawError {}

const MAGIC: &[u8; 4] = b"VRAW";

impl Video {
    /// Serialises the raw video (8-bit luma frames).
    pub fn to_raw_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.total_pixels());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.width() as u32).to_be_bytes());
        out.extend_from_slice(&(self.height() as u32).to_be_bytes());
        out.extend_from_slice(&((self.fps() * 100.0).round() as u32).to_be_bytes());
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        for f in self.iter() {
            out.extend_from_slice(f.plane().data());
        }
        out
    }

    /// Parses a serialised raw video.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRawError`] for malformed buffers.
    pub fn from_raw_bytes(bytes: &[u8]) -> Result<Self, ParseRawError> {
        if bytes.len() < 20 {
            return Err(ParseRawError::Truncated);
        }
        if &bytes[0..4] != MAGIC {
            return Err(ParseRawError::BadMagic);
        }
        let field =
            |i: usize| u32::from_be_bytes(bytes[4 + 4 * i..8 + 4 * i].try_into().expect("4 bytes"));
        let (w, h, fps100, n) = (field(0), field(1), field(2), field(3));
        if w == 0 || h == 0 || n == 0 || fps100 == 0 {
            return Err(ParseRawError::InvalidHeader);
        }
        let (w, h, n) = (w as usize, h as usize, n as usize);
        let frame_bytes = w.checked_mul(h).ok_or(ParseRawError::InvalidHeader)?;
        let need = 20usize
            .checked_add(
                frame_bytes
                    .checked_mul(n)
                    .ok_or(ParseRawError::InvalidHeader)?,
            )
            .ok_or(ParseRawError::InvalidHeader)?;
        if bytes.len() < need {
            return Err(ParseRawError::Truncated);
        }
        let mut video = Video::new(w, h, fps100 as f64 / 100.0);
        for i in 0..n {
            let start = 20 + i * frame_bytes;
            let plane = Plane::from_data(w, h, bytes[start..start + frame_bytes].to_vec());
            video.push(Frame::from_plane(plane));
        }
        Ok(video)
    }
}

/// Y4M (YUV4MPEG2) interchange: lets the suite consume and produce files
/// that standard tools (ffmpeg, mpv, x264) understand. Only the luma
/// plane is kept on import; export writes C420 with neutral chroma.
impl Video {
    /// Serialises to YUV4MPEG2 (C420, neutral chroma).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are odd (C420 requires even sizes).
    pub fn to_y4m_bytes(&self) -> Vec<u8> {
        assert!(
            self.width().is_multiple_of(2) && self.height().is_multiple_of(2),
            "C420 needs even dimensions"
        );
        let fps_num = (self.fps() * 100.0).round() as u32;
        let mut out = Vec::new();
        out.extend_from_slice(
            format!(
                "YUV4MPEG2 W{} H{} F{}:100 Ip A1:1 C420\n",
                self.width(),
                self.height(),
                fps_num
            )
            .as_bytes(),
        );
        let chroma = vec![128u8; self.width() / 2 * (self.height() / 2)];
        for f in self.iter() {
            out.extend_from_slice(b"FRAME\n");
            out.extend_from_slice(f.plane().data());
            out.extend_from_slice(&chroma);
            out.extend_from_slice(&chroma);
        }
        out
    }

    /// Parses a YUV4MPEG2 stream (C420 family), keeping the luma plane.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRawError`] for malformed input.
    pub fn from_y4m_bytes(bytes: &[u8]) -> Result<Self, ParseRawError> {
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(ParseRawError::Truncated)?;
        let header =
            std::str::from_utf8(&bytes[..header_end]).map_err(|_| ParseRawError::BadMagic)?;
        if !header.starts_with("YUV4MPEG2") {
            return Err(ParseRawError::BadMagic);
        }
        let mut w = 0usize;
        let mut h = 0usize;
        let mut fps = 25.0f64;
        for tok in header.split_ascii_whitespace().skip(1) {
            let (key, val) = tok.split_at(1);
            match key {
                "W" => w = val.parse().map_err(|_| ParseRawError::InvalidHeader)?,
                "H" => h = val.parse().map_err(|_| ParseRawError::InvalidHeader)?,
                "F" => {
                    let mut parts = val.split(':');
                    let num: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(ParseRawError::InvalidHeader)?;
                    let den: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(ParseRawError::InvalidHeader)?;
                    if den > 0.0 && num > 0.0 {
                        fps = num / den;
                    }
                }
                "C" if !val.starts_with("420") => {
                    // Only the 4:2:0 family is supported.
                    return Err(ParseRawError::InvalidHeader);
                }
                _ => {}
            }
        }
        if w == 0 || h == 0 {
            return Err(ParseRawError::InvalidHeader);
        }
        let luma = w * h;
        let chroma = (w / 2) * (h / 2) * 2;
        let mut video = Video::new(w, h, fps);
        let mut pos = header_end + 1;
        while pos < bytes.len() {
            // FRAME line (may carry parameters; ends at newline).
            let line_end = bytes[pos..]
                .iter()
                .position(|&b| b == b'\n')
                .ok_or(ParseRawError::Truncated)?;
            if !bytes[pos..].starts_with(b"FRAME") {
                return Err(ParseRawError::InvalidHeader);
            }
            pos += line_end + 1;
            if pos + luma + chroma > bytes.len() {
                return Err(ParseRawError::Truncated);
            }
            let plane = Plane::from_data(w, h, bytes[pos..pos + luma].to_vec());
            video.push(Frame::from_plane(plane));
            pos += luma + chroma;
        }
        if video.is_empty() {
            return Err(ParseRawError::Truncated);
        }
        Ok(video)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Video {
        let mut v = Video::new(8, 6, 29.97);
        for t in 0..3 {
            let mut f = Frame::new(8, 6);
            for y in 0..6 {
                for x in 0..8 {
                    f.plane_mut().set(x, y, (x * 7 + y * 13 + t * 31) as u8);
                }
            }
            v.push(f);
        }
        v
    }

    #[test]
    fn raw_roundtrip() {
        let v = sample();
        let bytes = v.to_raw_bytes();
        assert_eq!(bytes.len(), 20 + 3 * 48);
        let parsed = Video::from_raw_bytes(&bytes).unwrap();
        assert_eq!(parsed, v);
        assert!((parsed.fps() - 29.97).abs() < 1e-9);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_raw_bytes();
        bytes[0] = b'X';
        assert_eq!(Video::from_raw_bytes(&bytes), Err(ParseRawError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_raw_bytes();
        assert_eq!(
            Video::from_raw_bytes(&bytes[..bytes.len() - 1]),
            Err(ParseRawError::Truncated)
        );
        assert_eq!(
            Video::from_raw_bytes(&bytes[..10]),
            Err(ParseRawError::Truncated)
        );
    }

    #[test]
    fn y4m_roundtrip_preserves_luma() {
        let v = sample(); // 8x6: even dims
        let bytes = v.to_y4m_bytes();
        assert!(bytes.starts_with(b"YUV4MPEG2 W8 H6 F2997:100"));
        let parsed = Video::from_y4m_bytes(&bytes).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn y4m_rejects_bad_input() {
        assert_eq!(
            Video::from_y4m_bytes(b"RIFFxxxx\n"),
            Err(ParseRawError::BadMagic)
        );
        let mut bytes = sample().to_y4m_bytes();
        bytes.truncate(bytes.len() - 5);
        assert_eq!(Video::from_y4m_bytes(&bytes), Err(ParseRawError::Truncated));
        // 4:4:4 is unsupported.
        assert_eq!(
            Video::from_y4m_bytes(b"YUV4MPEG2 W8 H6 F25:1 C444\nFRAME\n"),
            Err(ParseRawError::InvalidHeader)
        );
    }

    #[test]
    fn zero_fields_rejected() {
        let mut bytes = sample().to_raw_bytes();
        bytes[4..8].copy_from_slice(&0u32.to_be_bytes()); // width = 0
        assert_eq!(
            Video::from_raw_bytes(&bytes),
            Err(ParseRawError::InvalidHeader)
        );
    }
}
