//! Word-parallel (SWAR) pixel kernels.
//!
//! The codec's per-macroblock inner loops — SAD for motion estimation and
//! rounding averages for half-pel interpolation — dominate encode time. The
//! kernels here process 8 pixels per `u64` with plain integer arithmetic, so
//! they are portable and exactly bit-identical to the scalar definitions they
//! replace (pinned by the property tests in `vapp-codec` and the in-module
//! reference tests below). An optional AVX2 SAD path sits behind the
//! default-off `arch-intrinsics` feature and is runtime-dispatched; all three
//! implementations (scalar, SWAR, AVX2) compute the same exact sums, so
//! dispatch can never change a coded stream.
//!
//! # SWAR layout
//!
//! Absolute byte differences are computed in sixteen-bit lanes: the 8 bytes of
//! a `u64` are split into even/odd byte positions, widening each pixel to a
//! 16-bit lane with 8 bits of headroom. Within a lane, `(x + 0x100) - y` is
//! always in `[1, 0x1FF]`, so bit 8 of the biased difference is a per-lane
//! `x >= y` flag and no borrow ever crosses a lane boundary. Selecting
//! `d - BIAS` or `BIAS - d` per lane via the flag mask yields `|x - y|`, and a
//! multiply by the per-lane LSB pattern folds the four lane sums into the top
//! 16 bits (max `4 * 2 * 255 = 2040`, far below lane capacity).

/// Even byte positions of a `u64`, widened to 16-bit lanes.
const EVEN: u64 = 0x00FF_00FF_00FF_00FF;
/// Bit 8 of every 16-bit lane: the bias that keeps lane differences positive.
const BIAS: u64 = 0x0100_0100_0100_0100;
/// The least-significant bit of every 16-bit lane.
const LANE_LSB: u64 = 0x0001_0001_0001_0001;
/// Per-byte rounding constant `+2` for the 4-tap diagonal average.
const TWO: u64 = 0x0002_0002_0002_0002;
/// Low 7 bits of every byte, used by the carry-free rounding average.
const LOW7: u64 = 0x7F7F_7F7F_7F7F_7F7F;

/// Sum of `|x_i - y_i|` over four 16-bit lanes holding byte values.
#[inline(always)]
fn abs_diff_lanes(x: u64, y: u64) -> u64 {
    // x, y hold values <= 0xFF per lane, so `x | BIAS == x + BIAS` lane-wise
    // and the subtraction below never borrows across lanes.
    let d = (x | BIAS) - y;
    // Bit 8 survives exactly when x >= y; widen the flag to a full lane mask.
    let mask_ge = ((d >> 8) & LANE_LSB) * 0xFFFF;
    // Both masked subtractions are lane-wise non-negative, so `|` == `+`.
    ((d & mask_ge) - (BIAS & mask_ge)) | ((BIAS & !mask_ge) - (d & !mask_ge))
}

/// SAD of the 8 byte pairs packed in two `u64`s.
#[inline(always)]
fn sad8(a: u64, b: u64) -> u64 {
    let lanes =
        abs_diff_lanes(a & EVEN, b & EVEN) + abs_diff_lanes((a >> 8) & EVEN, (b >> 8) & EVEN);
    // Horizontal fold: multiplying by LANE_LSB sums the four lanes into the
    // top lane (sum <= 2040 < 2^16, so nothing overflows out).
    lanes.wrapping_mul(LANE_LSB) >> 48
}

#[inline(always)]
fn load8(s: &[u8]) -> u64 {
    u64::from_le_bytes(s.try_into().expect("8-byte chunk"))
}

/// Loads 4 bytes into the low half of a `u64` (high bytes zero).
///
/// Zero padding is harmless for every kernel here: padded lanes contribute
/// `|0 - 0| = 0` to a SAD and average to `(0 + 0 + 1) >> 1 = 0` /
/// `(0 + 0 + 0 + 0 + 2) >> 2 = 0`, so the 4-wide rows of sub-8x8 partitions
/// run word-parallel too instead of falling back to scalar tails.
#[inline(always)]
fn load4(s: &[u8]) -> u64 {
    u64::from(u32::from_le_bytes(s.try_into().expect("4-byte chunk")))
}

/// Sum of absolute differences between two equal-length byte slices,
/// 8 pixels per `u64`.
///
/// This is the row kernel behind [`crate::Plane::sad`]; it is exact (not an
/// approximation), so it can replace the scalar loop anywhere without
/// changing a single decision.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length.
#[inline]
pub fn sad_slices(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len(), "SAD row length mismatch");
    #[cfg(all(feature = "arch-intrinsics", target_arch = "x86_64"))]
    {
        if crate::kernels::avx2::available() {
            // SAFETY: `available()` just confirmed AVX2 support at runtime.
            return unsafe { avx2::sad_slices(a, b) };
        }
    }
    sad_slices_swar(a, b)
}

/// Portable SWAR implementation of [`sad_slices`].
#[inline]
pub(crate) fn sad_slices_swar(a: &[u8], b: &[u8]) -> u64 {
    let mut total = 0u64;
    let chunk = a.len() - a.len() % 8;
    let (ca, mut ra) = a.split_at(chunk);
    let (cb, mut rb) = b.split_at(chunk);
    for (x, y) in ca.chunks_exact(8).zip(cb.chunks_exact(8)) {
        total += sad8(load8(x), load8(y));
    }
    if ra.len() >= 4 {
        total += sad8(load4(&ra[..4]), load4(&rb[..4]));
        ra = &ra[4..];
        rb = &rb[4..];
    }
    for (&x, &y) in ra.iter().zip(rb) {
        total += u64::from(x.abs_diff(y));
    }
    total
}

/// Per-byte rounding-up average `(a + b + 1) >> 1` of two equal-length rows.
///
/// Uses the carry-free identity `avg_up(a, b) = (a | b) - ((a ^ b) >> 1)`
/// (per byte): the OR counts each shared bit once plus every differing bit,
/// and subtracting half the XOR leaves exactly `ceil((a + b) / 2)`.
///
/// This is H.264's half-pel bilinear tap; [`avg4_rounding`] is the diagonal
/// 4-tap, which is *not* a composition of two of these (the roundings
/// differ), hence the separate kernel.
///
/// # Panics
///
/// Panics (in debug builds) on length mismatches.
#[inline]
pub fn avg_rounding(a: &[u8], b: &[u8], out: &mut [u8]) {
    debug_assert_eq!(a.len(), b.len(), "average row length mismatch");
    debug_assert_eq!(a.len(), out.len(), "average output length mismatch");
    let chunk = a.len() - a.len() % 8;
    for i in (0..chunk).step_by(8) {
        let x = load8(&a[i..i + 8]);
        let y = load8(&b[i..i + 8]);
        // Shifting the XOR right by one leaks each byte's bit 0 into its
        // neighbour's bit 7; LOW7 masks the leak. No other bit crosses bytes.
        let avg = (x | y) - (((x ^ y) >> 1) & LOW7);
        out[i..i + 8].copy_from_slice(&avg.to_le_bytes());
    }
    let mut i = chunk;
    if a.len() - i >= 4 {
        let x = load4(&a[i..i + 4]);
        let y = load4(&b[i..i + 4]);
        let avg = (x | y) - (((x ^ y) >> 1) & LOW7);
        out[i..i + 4].copy_from_slice(&(avg as u32).to_le_bytes());
        i += 4;
    }
    for i in i..a.len() {
        out[i] = ((u16::from(a[i]) + u16::from(b[i]) + 1) >> 1) as u8;
    }
}

/// Per-byte 4-tap rounding average `(a + b + c + d + 2) >> 2` of four rows.
///
/// The four inputs are summed in 16-bit lanes (max `4 * 255 + 2 = 1022`, well
/// under lane capacity), shifted, and repacked — bit-identical to H.264's
/// diagonal half-pel formula, which nested 2-tap averages would *not* be.
///
/// # Panics
///
/// Panics (in debug builds) on length mismatches.
#[inline]
pub fn avg4_rounding(a: &[u8], b: &[u8], c: &[u8], d: &[u8], out: &mut [u8]) {
    debug_assert!(
        a.len() == b.len() && a.len() == c.len() && a.len() == d.len() && a.len() == out.len(),
        "4-tap average length mismatch"
    );
    let chunk = a.len() - a.len() % 8;
    for i in (0..chunk).step_by(8) {
        let (xa, xb) = (load8(&a[i..i + 8]), load8(&b[i..i + 8]));
        let (xc, xd) = (load8(&c[i..i + 8]), load8(&d[i..i + 8]));
        let even = (xa & EVEN) + (xb & EVEN) + (xc & EVEN) + (xd & EVEN) + TWO;
        let odd =
            ((xa >> 8) & EVEN) + ((xb >> 8) & EVEN) + ((xc >> 8) & EVEN) + ((xd >> 8) & EVEN) + TWO;
        let avg = ((even >> 2) & EVEN) | (((odd >> 2) & EVEN) << 8);
        out[i..i + 8].copy_from_slice(&avg.to_le_bytes());
    }
    let mut i = chunk;
    if a.len() - i >= 4 {
        let (xa, xb) = (load4(&a[i..i + 4]), load4(&b[i..i + 4]));
        let (xc, xd) = (load4(&c[i..i + 4]), load4(&d[i..i + 4]));
        let even = (xa & EVEN) + (xb & EVEN) + (xc & EVEN) + (xd & EVEN) + TWO;
        let odd =
            ((xa >> 8) & EVEN) + ((xb >> 8) & EVEN) + ((xc >> 8) & EVEN) + ((xd >> 8) & EVEN) + TWO;
        let avg = ((even >> 2) & EVEN) | (((odd >> 2) & EVEN) << 8);
        out[i..i + 4].copy_from_slice(&(avg as u32).to_le_bytes());
        i += 4;
    }
    for i in i..a.len() {
        let sum = u16::from(a[i]) + u16::from(b[i]) + u16::from(c[i]) + u16::from(d[i]) + 2;
        out[i] = (sum >> 2) as u8;
    }
}

/// AVX2 SAD, runtime-dispatched from [`sad_slices`] when the default-off
/// `arch-intrinsics` feature is enabled. `_mm256_sad_epu8` computes the same
/// exact byte-wise sums as the SWAR path, so dispatch is invisible to every
/// caller.
#[cfg(all(feature = "arch-intrinsics", target_arch = "x86_64"))]
mod avx2 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::{
        __m256i, _mm256_extract_epi64, _mm256_loadu_si256, _mm256_sad_epu8, _mm_cvtsi128_si64,
        _mm_extract_epi64, _mm_loadu_si128, _mm_sad_epu8,
    };

    /// True when the running CPU supports AVX2.
    #[inline]
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// # Safety
    ///
    /// Caller must ensure the running CPU supports AVX2 (see [`available`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sad_slices(a: &[u8], b: &[u8]) -> u64 {
        let mut total = 0u64;
        let mut i = 0;
        while i + 32 <= a.len() {
            // SAFETY: `i + 32 <= a.len() == b.len()`; unaligned loads are fine.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i),
                    _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i),
                )
            };
            let s = _mm256_sad_epu8(va, vb);
            total += (_mm256_extract_epi64(s, 0)
                + _mm256_extract_epi64(s, 1)
                + _mm256_extract_epi64(s, 2)
                + _mm256_extract_epi64(s, 3)) as u64;
            i += 32;
        }
        if i + 16 <= a.len() {
            // SAFETY: `i + 16 <= a.len() == b.len()`.
            let (va, vb) = unsafe {
                (
                    _mm_loadu_si128(a.as_ptr().add(i).cast()),
                    _mm_loadu_si128(b.as_ptr().add(i).cast()),
                )
            };
            let s = _mm_sad_epu8(va, vb);
            total += (_mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1)) as u64;
            i += 16;
        }
        total + super::sad_slices_swar(&a[i..], &b[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retained scalar definition every word-parallel kernel must match.
    fn sad_scalar(a: &[u8], b: &[u8]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| u64::from(x.abs_diff(y)))
            .sum()
    }

    /// Cheap deterministic byte generator (splitmix-style) for kernel tests.
    fn pattern(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn swar_sad_matches_scalar_all_lengths() {
        for len in 0..80 {
            for seed in 0..4u64 {
                let a = pattern(seed * 2 + 1, len);
                let b = pattern(seed * 2 + 2, len);
                assert_eq!(sad_slices_swar(&a, &b), sad_scalar(&a, &b), "len {len}");
            }
        }
    }

    #[test]
    fn swar_sad_extremes() {
        let zeros = vec![0u8; 24];
        let maxed = vec![255u8; 24];
        assert_eq!(sad_slices_swar(&zeros, &maxed), 24 * 255);
        assert_eq!(sad_slices_swar(&maxed, &zeros), 24 * 255);
        assert_eq!(sad_slices_swar(&maxed, &maxed), 0);
    }

    #[test]
    fn sad_dispatch_matches_scalar() {
        // Under `arch-intrinsics` on an AVX2 machine this exercises the
        // intrinsic path (the CI leg's runtime-dispatch smoke test); on other
        // builds it covers the SWAR path through the public entry point.
        for len in [0, 1, 7, 8, 15, 16, 31, 32, 33, 63, 64, 100, 256] {
            let a = pattern(1000 + len as u64, len);
            let b = pattern(2000 + len as u64, len);
            assert_eq!(sad_slices(&a, &b), sad_scalar(&a, &b), "len {len}");
        }
    }

    #[test]
    fn avg_rounding_matches_scalar() {
        for len in 0..40 {
            let a = pattern(7, len);
            let b = pattern(9, len);
            let mut out = vec![0u8; len];
            avg_rounding(&a, &b, &mut out);
            for i in 0..len {
                let want = ((u16::from(a[i]) + u16::from(b[i]) + 1) >> 1) as u8;
                assert_eq!(out[i], want, "len {len} i {i}");
            }
        }
    }

    #[test]
    fn avg4_rounding_matches_scalar() {
        for len in 0..40 {
            let rows: Vec<Vec<u8>> = (0..4).map(|k| pattern(20 + k, len)).collect();
            let mut out = vec![0u8; len];
            avg4_rounding(&rows[0], &rows[1], &rows[2], &rows[3], &mut out);
            for i in 0..len {
                let sum: u16 = rows.iter().map(|r| u16::from(r[i])).sum::<u16>() + 2;
                assert_eq!(out[i], (sum >> 2) as u8, "len {len} i {i}");
            }
        }
    }

    #[test]
    fn avg_extremes_do_not_carry_across_bytes() {
        let a = [255u8, 0, 255, 0, 255, 0, 255, 0, 255];
        let b = [255u8, 255, 0, 0, 255, 255, 0, 0, 255];
        let mut out = [0u8; 9];
        avg_rounding(&a, &b, &mut out);
        assert_eq!(out, [255, 128, 128, 0, 255, 128, 128, 0, 255]);
        let mut out4 = [0u8; 9];
        avg4_rounding(&a, &b, &a, &b, &mut out4);
        assert_eq!(out4, [255, 128, 128, 0, 255, 128, 128, 0, 255]);
    }
}
