//! Macroblock-grid geometry.
//!
//! VideoApp's compensation-dependency model (paper §4.1) weighs an edge
//! from source macroblock X to destination macroblock Y by the number of
//! pixels of X that Y references. The geometry here answers exactly that
//! question: given a pixel rectangle referenced by a prediction unit, which
//! macroblocks does it overlap and by how many pixels each.

use crate::MB_SIZE;

/// An axis-aligned pixel rectangle with signed origin (motion vectors can
/// point outside the frame; overlap accounting clips to the frame).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (may be negative).
    pub x: isize,
    /// Top edge (may be negative).
    pub y: isize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: isize, y: isize, w: usize, h: usize) -> Self {
        Rect { x, y, w, h }
    }

    /// Area in pixels.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

/// One entry of an overlap query: `pixels` of the queried rectangle fall in
/// macroblock `mb_index`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MbOverlap {
    /// Raster-scan index of the overlapped macroblock.
    pub mb_index: usize,
    /// Number of overlapping pixels (after clipping to the frame).
    pub pixels: usize,
}

/// The macroblock grid of a frame: geometry queries over 16x16 tiles.
///
/// Frames whose dimensions are not multiples of 16 get partially-covered
/// edge macroblocks, exactly as in H.264 (the codec pads; the grid reports
/// the nominal 16x16 tiles clipped to the frame).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MbGrid {
    width: usize,
    height: usize,
    mb_cols: usize,
    mb_rows: usize,
}

impl MbGrid {
    /// Builds the macroblock grid for a `width x height` frame.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn for_frame(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        MbGrid {
            width,
            height,
            mb_cols: width.div_ceil(MB_SIZE),
            mb_rows: height.div_ceil(MB_SIZE),
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Macroblock columns.
    pub fn mb_cols(&self) -> usize {
        self.mb_cols
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.mb_rows
    }

    /// Total macroblocks per frame.
    pub fn mb_count(&self) -> usize {
        self.mb_cols * self.mb_rows
    }

    /// Raster-scan index of the macroblock at grid position `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the position is outside the grid.
    #[inline]
    pub fn mb_index(&self, col: usize, row: usize) -> usize {
        debug_assert!(col < self.mb_cols && row < self.mb_rows);
        row * self.mb_cols + col
    }

    /// Grid position `(col, row)` of a raster-scan macroblock index.
    #[inline]
    pub fn mb_position(&self, index: usize) -> (usize, usize) {
        debug_assert!(index < self.mb_count());
        (index % self.mb_cols, index / self.mb_cols)
    }

    /// Top-left pixel coordinate of macroblock `index`.
    #[inline]
    pub fn mb_origin(&self, index: usize) -> (usize, usize) {
        let (c, r) = self.mb_position(index);
        (c * MB_SIZE, r * MB_SIZE)
    }

    /// Index of the macroblock containing pixel `(x, y)`, or `None` when the
    /// pixel lies outside the frame.
    #[inline]
    pub fn mb_containing(&self, x: isize, y: isize) -> Option<usize> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return None;
        }
        Some(self.mb_index(x as usize / MB_SIZE, y as usize / MB_SIZE))
    }

    /// Computes, for a referenced pixel rectangle, every overlapped
    /// macroblock and the per-macroblock overlap pixel count.
    ///
    /// The rectangle is clipped to the frame first — pixels that a clamped
    /// motion vector reads from border extension are attributed to the
    /// border macroblock that produces them, which is achieved by clamping
    /// the rectangle the same way [`crate::Plane::sample`] clamps reads.
    pub fn overlaps(&self, rect: Rect) -> Vec<MbOverlap> {
        if rect.w == 0 || rect.h == 0 {
            return Vec::new();
        }
        // Clamp each referenced pixel to the frame, like Plane::sample does:
        // a rect fully outside the frame collapses onto border pixels.
        let x0 = rect.x.clamp(0, self.width as isize - 1) as usize;
        let y0 = rect.y.clamp(0, self.height as isize - 1) as usize;
        let x1 = (rect.x + rect.w as isize - 1).clamp(0, self.width as isize - 1) as usize;
        let y1 = (rect.y + rect.h as isize - 1).clamp(0, self.height as isize - 1) as usize;

        let mut out = Vec::new();
        let mut row = y0 / MB_SIZE;
        while row * MB_SIZE <= y1 {
            let ry0 = (row * MB_SIZE).max(y0);
            let ry1 = ((row + 1) * MB_SIZE - 1).min(y1);
            // Rows of the *original* rect mapping into [ry0, ry1]: because of
            // clamping, edge rows absorb everything outside. Count source
            // rows rather than clipped rows so the weights still sum to the
            // full rect area.
            let rows_here = count_mapped(rect.y, rect.h, ry0, ry1, self.height);
            let mut col = x0 / MB_SIZE;
            while col * MB_SIZE <= x1 {
                let cx0 = (col * MB_SIZE).max(x0);
                let cx1 = ((col + 1) * MB_SIZE - 1).min(x1);
                let cols_here = count_mapped(rect.x, rect.w, cx0, cx1, self.width);
                let pixels = rows_here * cols_here;
                if pixels > 0 {
                    out.push(MbOverlap {
                        mb_index: self.mb_index(col, row),
                        pixels,
                    });
                }
                col += 1;
            }
            row += 1;
        }
        out
    }
}

/// Counts how many source coordinates `start..start+len`, after clamping to
/// `[0, bound)`, land inside `[lo, hi]`.
fn count_mapped(start: isize, len: usize, lo: usize, hi: usize, bound: usize) -> usize {
    let mut n = 0;
    for i in 0..len {
        let c = (start + i as isize).clamp(0, bound as isize - 1) as usize;
        if c >= lo && c <= hi {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions_round_up() {
        let g = MbGrid::for_frame(33, 17);
        assert_eq!(g.mb_cols(), 3);
        assert_eq!(g.mb_rows(), 2);
        assert_eq!(g.mb_count(), 6);
    }

    #[test]
    fn index_position_roundtrip() {
        let g = MbGrid::for_frame(64, 48);
        for i in 0..g.mb_count() {
            let (c, r) = g.mb_position(i);
            assert_eq!(g.mb_index(c, r), i);
        }
        assert_eq!(g.mb_origin(5), (16, 16)); // 4 cols: index 5 = (1,1)
    }

    #[test]
    fn containing_pixel() {
        let g = MbGrid::for_frame(64, 64);
        assert_eq!(g.mb_containing(0, 0), Some(0));
        assert_eq!(g.mb_containing(16, 0), Some(1));
        assert_eq!(g.mb_containing(15, 17), Some(4));
        assert_eq!(g.mb_containing(-1, 0), None);
        assert_eq!(g.mb_containing(64, 0), None);
    }

    #[test]
    fn aligned_overlap_is_single_mb() {
        let g = MbGrid::for_frame(64, 64);
        let o = g.overlaps(Rect::new(16, 16, 16, 16));
        assert_eq!(
            o,
            vec![MbOverlap {
                mb_index: 5,
                pixels: 256
            }]
        );
    }

    #[test]
    fn straddling_overlap_splits_area() {
        let g = MbGrid::for_frame(64, 64);
        let o = g.overlaps(Rect::new(8, 8, 16, 16));
        assert_eq!(o.len(), 4);
        let total: usize = o.iter().map(|e| e.pixels).sum();
        assert_eq!(total, 256);
        assert!(o.iter().all(|e| e.pixels == 64));
    }

    #[test]
    fn overlap_weights_always_sum_to_rect_area() {
        // Even off-frame rects (clamped reads) must preserve total weight,
        // so that incoming compensation weights sum to 1 (paper §4.1).
        let g = MbGrid::for_frame(48, 32);
        for &(x, y) in &[(-8, -8), (40, 24), (-20, 10), (100, 100), (3, 5)] {
            let o = g.overlaps(Rect::new(x, y, 16, 16));
            let total: usize = o.iter().map(|e| e.pixels).sum();
            assert_eq!(total, 256, "rect at ({x},{y})");
        }
    }

    #[test]
    fn sub_partition_overlaps() {
        let g = MbGrid::for_frame(64, 64);
        // A 4x8 partition fully inside MB 0.
        let o = g.overlaps(Rect::new(4, 4, 4, 8));
        assert_eq!(
            o,
            vec![MbOverlap {
                mb_index: 0,
                pixels: 32
            }]
        );
        // Crossing a vertical MB boundary.
        let o = g.overlaps(Rect::new(14, 0, 4, 8));
        assert_eq!(o.len(), 2);
        assert_eq!(o.iter().map(|e| e.pixels).sum::<usize>(), 32);
    }

    #[test]
    fn empty_rect_has_no_overlap() {
        let g = MbGrid::for_frame(64, 64);
        assert!(g.overlaps(Rect::new(0, 0, 0, 16)).is_empty());
    }
}
