//! A bounds-safe 8-bit pixel plane.

use std::fmt;

/// An 8-bit grayscale pixel plane with row-major storage.
///
/// All sampling access is clamped to the plane borders ([`Plane::sample`]),
/// which mirrors the edge-extension rule H.264 uses for unrestricted motion
/// vectors and lets prediction code read "outside" the frame safely.
///
/// # Example
///
/// ```
/// use vapp_media::Plane;
///
/// let mut p = Plane::new(4, 4);
/// p.set(1, 2, 200);
/// assert_eq!(p.get(1, 2), 200);
/// // Clamped sampling never goes out of bounds:
/// assert_eq!(p.sample(-5, 2), p.get(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane of the given size filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0)
    }

    /// Creates a plane filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates a plane from row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw row-major pixel buffer.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw row-major pixel buffer.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Samples the pixel at signed coordinates, clamping to the borders.
    ///
    /// This is the H.264 edge-extension rule: coordinates outside the plane
    /// read the nearest border pixel.
    #[inline]
    pub fn sample(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Returns one row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Copies a `w x h` block whose top-left corner is `(x, y)` into `out`
    /// (row-major, clamped at borders).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != w * h`.
    pub fn copy_block(&self, x: isize, y: isize, w: usize, h: usize, out: &mut [u8]) {
        assert_eq!(out.len(), w * h, "output buffer size mismatch");
        if self.block_interior(x, y, w, h) {
            let (x, y) = (x as usize, y as usize);
            for by in 0..h {
                let src = &self.data[(y + by) * self.width + x..][..w];
                out[by * w..][..w].copy_from_slice(src);
            }
            return;
        }
        for by in 0..h {
            for bx in 0..w {
                out[by * w + bx] = self.sample(x + bx as isize, y + by as isize);
            }
        }
    }

    /// True when a `w x h` block at signed `(x, y)` lies fully inside the
    /// plane, i.e. clamped sampling degenerates to direct row access.
    #[inline]
    pub fn block_interior(&self, x: isize, y: isize, w: usize, h: usize) -> bool {
        x >= 0 && y >= 0 && x as usize + w <= self.width && y as usize + h <= self.height
    }

    /// Writes a `w x h` block at `(x, y)`; parts outside the plane are
    /// silently dropped.
    pub fn store_block(&mut self, x: usize, y: usize, w: usize, h: usize, block: &[u8]) {
        assert_eq!(block.len(), w * h, "input buffer size mismatch");
        for by in 0..h {
            let py = y + by;
            if py >= self.height {
                break;
            }
            for bx in 0..w {
                let px = x + bx;
                if px >= self.width {
                    break;
                }
                self.data[py * self.width + px] = block[by * w + bx];
            }
        }
    }

    /// Sum of absolute differences between a block of this plane at `(x, y)`
    /// and a reference block sampled (with clamping) from `other` at
    /// `(rx, ry)`. The cost function used by motion estimation.
    #[allow(clippy::too_many_arguments)] // block geometry: x, y, w, h + reference
    pub fn sad(
        &self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        other: &Plane,
        rx: isize,
        ry: isize,
    ) -> u64 {
        self.sad_bounded(x, y, w, h, other, rx, ry, u64::MAX)
    }

    /// [`Plane::sad`] with early exit: stops accumulating as soon as the
    /// running total strictly exceeds `bound` and returns that partial sum.
    ///
    /// The contract is *decision-identical* to the exact SAD for callers that
    /// only ever compare results against `bound` (a running best): a block
    /// whose true SAD is `<= bound` — including exact ties — is always summed
    /// in full and returned exactly, because every partial row total is `<=`
    /// the final sum. Only blocks that would lose anyway can return early,
    /// and the partial value they return is still `> bound`, so `<` and `==`
    /// comparisons against any value `<= bound` come out the same as with the
    /// exact SAD.
    ///
    /// Interior blocks (fully inside both planes) take a word-parallel row
    /// path — see [`crate::kernels::sad_slices`]; blocks touching a border
    /// fall back to clamped per-pixel sampling.
    #[allow(clippy::too_many_arguments)] // block geometry + reference + bound
    pub fn sad_bounded(
        &self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        other: &Plane,
        rx: isize,
        ry: isize,
        bound: u64,
    ) -> u64 {
        let cur_ok = x + w <= self.width && y + h <= self.height;
        if cur_ok && other.block_interior(rx, ry, w, h) {
            let (rx, ry) = (rx as usize, ry as usize);
            let mut total = 0u64;
            for by in 0..h {
                let a = &self.data[(y + by) * self.width + x..][..w];
                let b = &other.data[(ry + by) * other.width + rx..][..w];
                total += crate::kernels::sad_slices(a, b);
                if total > bound {
                    return total;
                }
            }
            return total;
        }
        if cur_ok {
            // The reference block straddles a border of `other` but the
            // source block is interior: clamp per row, splitting each row
            // into a left edge-replicated run, a word-parallel interior
            // span, and a right edge-replicated run. Exactly the clamped
            // sampling result, without per-pixel clamps.
            let rw = other.width as isize;
            // First dx with rx + dx >= 0, and first dx with rx + dx >= rw.
            let lo = (-rx).clamp(0, w as isize) as usize;
            let hi = (rw - rx).clamp(0, w as isize) as usize;
            let mut total = 0u64;
            for by in 0..h {
                let a = &self.data[(y + by) * self.width + x..][..w];
                let ry_c = (ry + by as isize).clamp(0, other.height as isize - 1) as usize;
                let b = other.row(ry_c);
                let left = b[0] as i32;
                let right = b[other.width - 1] as i32;
                for &av in &a[..lo] {
                    total += (av as i32 - left).unsigned_abs() as u64;
                }
                if lo < hi {
                    let start = (rx + lo as isize) as usize;
                    total += crate::kernels::sad_slices(&a[lo..hi], &b[start..start + hi - lo]);
                }
                for &av in &a[hi..] {
                    total += (av as i32 - right).unsigned_abs() as u64;
                }
                if total > bound {
                    return total;
                }
            }
            return total;
        }
        // Source block itself leaves the plane: clamped sampling on both
        // sides, still row-bounded for early exit.
        let mut total = 0u64;
        for by in 0..h {
            for bx in 0..w {
                let a = self.sample((x + bx) as isize, (y + by) as isize) as i32;
                let b = other.sample(rx + bx as isize, ry + by as isize) as i32;
                total += (a - b).unsigned_abs() as u64;
            }
            if total > bound {
                return total;
            }
        }
        total
    }

    /// Sum of squared errors against another plane of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the planes differ in size.
    pub fn sse(&self, other: &Plane) -> u64 {
        assert_eq!(self.width, other.width, "plane width mismatch");
        assert_eq!(self.height, other.height, "plane height mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as i64 - b as i64;
                (d * d) as u64
            })
            .sum()
    }
}

impl fmt::Debug for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plane")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original per-pixel SAD, retained as the reference the
    /// word-parallel implementation must match (same idiom as the storage
    /// crate's `ScalarBch`).
    #[allow(clippy::too_many_arguments)]
    fn sad_scalar_ref(
        cur: &Plane,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        other: &Plane,
        rx: isize,
        ry: isize,
    ) -> u64 {
        let mut total = 0u64;
        for by in 0..h {
            for bx in 0..w {
                let a = cur.sample((x + bx) as isize, (y + by) as isize) as i32;
                let b = other.sample(rx + bx as isize, ry + by as isize) as i32;
                total += (a - b).unsigned_abs() as u64;
            }
        }
        total
    }

    fn textured(width: usize, height: usize, salt: u64) -> Plane {
        let mut p = Plane::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let v = (x as u64)
                    .wrapping_mul(31)
                    .wrapping_add((y as u64).wrapping_mul(97))
                    .wrapping_add(salt.wrapping_mul(131));
                p.set(x, y, (v % 251) as u8);
            }
        }
        p
    }

    #[test]
    fn sad_matches_scalar_reference_interior_and_border() {
        let cur = textured(40, 24, 1);
        let reference = textured(40, 24, 2);
        // Interior, border-straddling and fully-clamped geometries, plus
        // non-multiple-of-8 widths that exercise the SWAR remainder.
        let cases: &[(usize, usize, usize, usize, isize, isize)] = &[
            (8, 4, 16, 16, 10, 6),
            (8, 4, 16, 16, -3, -2),
            (24, 8, 16, 16, 30, 12),
            (0, 0, 16, 16, -20, -20),
            (5, 3, 13, 7, 4, 2),
            (5, 3, 13, 7, 39, 23),
            (32, 16, 8, 8, 35, 17),
            (0, 0, 4, 4, 1, 1),
        ];
        for &(x, y, w, h, rx, ry) in cases {
            assert_eq!(
                cur.sad(x, y, w, h, &reference, rx, ry),
                sad_scalar_ref(&cur, x, y, w, h, &reference, rx, ry),
                "geometry ({x},{y}) {w}x{h} at ({rx},{ry})"
            );
        }
    }

    #[test]
    fn sad_bounded_is_exact_at_or_below_bound() {
        let cur = textured(40, 24, 3);
        let reference = textured(40, 24, 4);
        let exact = cur.sad(8, 4, 16, 16, &reference, 11, 7);
        // bound >= exact (including equality): the full exact sum comes back.
        assert_eq!(
            cur.sad_bounded(8, 4, 16, 16, &reference, 11, 7, exact),
            exact
        );
        assert_eq!(
            cur.sad_bounded(8, 4, 16, 16, &reference, 11, 7, exact + 1),
            exact
        );
        // bound < exact: whatever partial comes back still exceeds the bound.
        let partial = cur.sad_bounded(8, 4, 16, 16, &reference, 11, 7, exact - 1);
        assert!(partial > exact - 1);
        assert!(partial <= exact);
        // Same contract on the clamped border path.
        let edge_exact = cur.sad(0, 0, 16, 16, &reference, -5, -4);
        let edge_partial = cur.sad_bounded(0, 0, 16, 16, &reference, -5, -4, edge_exact / 2);
        assert!(edge_partial > edge_exact / 2);
    }

    #[test]
    fn copy_block_interior_fast_path_matches_clamped() {
        let p = textured(20, 12, 5);
        let mut fast = vec![0u8; 6 * 5];
        let mut slow = vec![0u8; 6 * 5];
        p.copy_block(3, 2, 6, 5, &mut fast);
        for by in 0..5 {
            for bx in 0..6 {
                slow[by * 6 + bx] = p.sample(3 + bx as isize, 2 + by as isize);
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn filled_and_get_set() {
        let mut p = Plane::filled(3, 2, 7);
        assert_eq!(p.get(2, 1), 7);
        p.set(0, 0, 9);
        assert_eq!(p.get(0, 0), 9);
        assert_eq!(p.width(), 3);
        assert_eq!(p.height(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Plane::new(0, 4);
    }

    #[test]
    fn sample_clamps_to_borders() {
        let mut p = Plane::new(4, 3);
        p.set(0, 0, 11);
        p.set(3, 2, 22);
        assert_eq!(p.sample(-10, -10), 11);
        assert_eq!(p.sample(100, 100), 22);
        assert_eq!(p.sample(-1, 2), p.get(0, 2));
    }

    #[test]
    fn copy_block_roundtrip() {
        let mut p = Plane::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                p.set(x, y, (y * 8 + x) as u8);
            }
        }
        let mut block = vec![0u8; 4 * 4];
        p.copy_block(2, 3, 4, 4, &mut block);
        assert_eq!(block[0], p.get(2, 3));
        assert_eq!(block[15], p.get(5, 6));

        let mut q = Plane::new(8, 8);
        q.store_block(2, 3, 4, 4, &block);
        for by in 0..4 {
            for bx in 0..4 {
                assert_eq!(q.get(2 + bx, 3 + by), p.get(2 + bx, 3 + by));
            }
        }
    }

    #[test]
    fn store_block_clips_at_borders() {
        let mut p = Plane::new(4, 4);
        let block = vec![5u8; 16];
        p.store_block(2, 2, 4, 4, &block);
        assert_eq!(p.get(3, 3), 5);
        assert_eq!(p.get(1, 1), 0);
    }

    #[test]
    fn sad_zero_for_identical_blocks() {
        let mut p = Plane::new(16, 16);
        for i in 0..256 {
            p.data_mut()[i] = (i % 251) as u8;
        }
        assert_eq!(p.sad(0, 0, 16, 16, &p.clone(), 0, 0), 0);
        assert!(p.sad(0, 0, 8, 8, &p.clone(), 1, 0) > 0);
    }

    #[test]
    fn sse_counts_squared_differences() {
        let a = Plane::filled(2, 2, 10);
        let b = Plane::filled(2, 2, 13);
        assert_eq!(a.sse(&b), 4 * 9);
    }
}
