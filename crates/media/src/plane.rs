//! A bounds-safe 8-bit pixel plane.

use std::fmt;

/// An 8-bit grayscale pixel plane with row-major storage.
///
/// All sampling access is clamped to the plane borders ([`Plane::sample`]),
/// which mirrors the edge-extension rule H.264 uses for unrestricted motion
/// vectors and lets prediction code read "outside" the frame safely.
///
/// # Example
///
/// ```
/// use vapp_media::Plane;
///
/// let mut p = Plane::new(4, 4);
/// p.set(1, 2, 200);
/// assert_eq!(p.get(1, 2), 200);
/// // Clamped sampling never goes out of bounds:
/// assert_eq!(p.sample(-5, 2), p.get(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane of the given size filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0)
    }

    /// Creates a plane filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates a plane from row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw row-major pixel buffer.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw row-major pixel buffer.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Samples the pixel at signed coordinates, clamping to the borders.
    ///
    /// This is the H.264 edge-extension rule: coordinates outside the plane
    /// read the nearest border pixel.
    #[inline]
    pub fn sample(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Returns one row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Copies a `w x h` block whose top-left corner is `(x, y)` into `out`
    /// (row-major, clamped at borders).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != w * h`.
    pub fn copy_block(&self, x: isize, y: isize, w: usize, h: usize, out: &mut [u8]) {
        assert_eq!(out.len(), w * h, "output buffer size mismatch");
        for by in 0..h {
            for bx in 0..w {
                out[by * w + bx] = self.sample(x + bx as isize, y + by as isize);
            }
        }
    }

    /// Writes a `w x h` block at `(x, y)`; parts outside the plane are
    /// silently dropped.
    pub fn store_block(&mut self, x: usize, y: usize, w: usize, h: usize, block: &[u8]) {
        assert_eq!(block.len(), w * h, "input buffer size mismatch");
        for by in 0..h {
            let py = y + by;
            if py >= self.height {
                break;
            }
            for bx in 0..w {
                let px = x + bx;
                if px >= self.width {
                    break;
                }
                self.data[py * self.width + px] = block[by * w + bx];
            }
        }
    }

    /// Sum of absolute differences between a block of this plane at `(x, y)`
    /// and a reference block sampled (with clamping) from `other` at
    /// `(rx, ry)`. The cost function used by motion estimation.
    #[allow(clippy::too_many_arguments)] // block geometry: x, y, w, h + reference
    pub fn sad(
        &self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        other: &Plane,
        rx: isize,
        ry: isize,
    ) -> u64 {
        let mut total = 0u64;
        for by in 0..h {
            for bx in 0..w {
                let a = self.sample((x + bx) as isize, (y + by) as isize) as i32;
                let b = other.sample(rx + bx as isize, ry + by as isize) as i32;
                total += (a - b).unsigned_abs() as u64;
            }
        }
        total
    }

    /// Sum of squared errors against another plane of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the planes differ in size.
    pub fn sse(&self, other: &Plane) -> u64 {
        assert_eq!(self.width, other.width, "plane width mismatch");
        assert_eq!(self.height, other.height, "plane height mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as i64 - b as i64;
                (d * d) as u64
            })
            .sum()
    }
}

impl fmt::Debug for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plane")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_get_set() {
        let mut p = Plane::filled(3, 2, 7);
        assert_eq!(p.get(2, 1), 7);
        p.set(0, 0, 9);
        assert_eq!(p.get(0, 0), 9);
        assert_eq!(p.width(), 3);
        assert_eq!(p.height(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Plane::new(0, 4);
    }

    #[test]
    fn sample_clamps_to_borders() {
        let mut p = Plane::new(4, 3);
        p.set(0, 0, 11);
        p.set(3, 2, 22);
        assert_eq!(p.sample(-10, -10), 11);
        assert_eq!(p.sample(100, 100), 22);
        assert_eq!(p.sample(-1, 2), p.get(0, 2));
    }

    #[test]
    fn copy_block_roundtrip() {
        let mut p = Plane::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                p.set(x, y, (y * 8 + x) as u8);
            }
        }
        let mut block = vec![0u8; 4 * 4];
        p.copy_block(2, 3, 4, 4, &mut block);
        assert_eq!(block[0], p.get(2, 3));
        assert_eq!(block[15], p.get(5, 6));

        let mut q = Plane::new(8, 8);
        q.store_block(2, 3, 4, 4, &block);
        for by in 0..4 {
            for bx in 0..4 {
                assert_eq!(q.get(2 + bx, 3 + by), p.get(2 + bx, 3 + by));
            }
        }
    }

    #[test]
    fn store_block_clips_at_borders() {
        let mut p = Plane::new(4, 4);
        let block = vec![5u8; 16];
        p.store_block(2, 2, 4, 4, &block);
        assert_eq!(p.get(3, 3), 5);
        assert_eq!(p.get(1, 1), 0);
    }

    #[test]
    fn sad_zero_for_identical_blocks() {
        let mut p = Plane::new(16, 16);
        for i in 0..256 {
            p.data_mut()[i] = (i % 251) as u8;
        }
        assert_eq!(p.sad(0, 0, 16, 16, &p.clone(), 0, 0), 0);
        assert!(p.sad(0, 0, 8, 8, &p.clone(), 1, 0) > 0);
    }

    #[test]
    fn sse_counts_squared_differences() {
        let a = Plane::filled(2, 2, 10);
        let b = Plane::filled(2, 2, 13);
        assert_eq!(a.sse(&b), 4 * 9);
    }
}
