//! Frames and frame sequences.

use crate::Plane;

/// A single raw (decoded) video frame.
///
/// Frames are luma-only in this reproduction; the plane holds 8-bit Y
/// samples. All codec and analysis code operates on [`Frame`]s.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Frame {
    plane: Plane,
}

impl Frame {
    /// Creates a black (all-zero) frame.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Frame {
            plane: Plane::new(width, height),
        }
    }

    /// Creates a frame filled with a constant luma value.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Frame {
            plane: Plane::filled(width, height, value),
        }
    }

    /// Wraps an existing plane as a frame.
    pub fn from_plane(plane: Plane) -> Self {
        Frame { plane }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.plane.width()
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.plane.height()
    }

    /// The luma plane.
    pub fn plane(&self) -> &Plane {
        &self.plane
    }

    /// Mutable access to the luma plane.
    pub fn plane_mut(&mut self) -> &mut Plane {
        &mut self.plane
    }

    /// Consumes the frame and returns the underlying plane.
    pub fn into_plane(self) -> Plane {
        self.plane
    }
}

/// A raw video: an ordered sequence of equally-sized frames plus a frame
/// rate.
///
/// # Example
///
/// ```
/// use vapp_media::{Frame, Video};
///
/// let mut v = Video::new(32, 32, 25.0);
/// v.push(Frame::filled(32, 32, 100));
/// v.push(Frame::filled(32, 32, 101));
/// assert_eq!(v.len(), 2);
/// assert_eq!(v.pixels_per_frame(), 1024);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Video {
    width: usize,
    height: usize,
    fps: f64,
    frames: Vec<Frame>,
}

impl Video {
    /// Creates an empty video with the given frame geometry and frame rate.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `fps` is not finite and positive.
    pub fn new(width: usize, height: usize, fps: f64) -> Self {
        assert!(width > 0 && height > 0, "video dimensions must be nonzero");
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        Video {
            width,
            height,
            fps,
            frames: Vec::new(),
        }
    }

    /// Builds a video from frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or the frames disagree in size.
    pub fn from_frames(frames: Vec<Frame>, fps: f64) -> Self {
        assert!(!frames.is_empty(), "a video needs at least one frame");
        let width = frames[0].width();
        let height = frames[0].height();
        let mut v = Video::new(width, height, fps);
        for f in frames {
            v.push(f);
        }
        v
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the video holds no frames yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Pixels per frame (width x height).
    pub fn pixels_per_frame(&self) -> usize {
        self.width * self.height
    }

    /// Total pixel count across all frames.
    pub fn total_pixels(&self) -> usize {
        self.pixels_per_frame() * self.len()
    }

    /// Appends a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame size disagrees with the video geometry.
    pub fn push(&mut self, frame: Frame) {
        assert_eq!(frame.width(), self.width, "frame width mismatch");
        assert_eq!(frame.height(), self.height, "frame height mismatch");
        self.frames.push(frame);
    }

    /// Returns frame `i`, if present.
    pub fn get(&self, i: usize) -> Option<&Frame> {
        self.frames.get(i)
    }

    /// All frames, in display order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Iterates over frames in display order.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }
}

impl<'a> IntoIterator for &'a Video {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_video() {
        let mut v = Video::new(16, 16, 30.0);
        assert!(v.is_empty());
        v.push(Frame::new(16, 16));
        assert_eq!(v.len(), 1);
        assert_eq!(v.total_pixels(), 256);
        assert!(v.get(0).is_some());
        assert!(v.get(1).is_none());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_frame_rejected() {
        let mut v = Video::new(16, 16, 30.0);
        v.push(Frame::new(32, 16));
    }

    #[test]
    fn from_frames_checks_consistency() {
        let v = Video::from_frames(vec![Frame::new(8, 8); 3], 24.0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.iter().count(), 3);
        assert_eq!((&v).into_iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_from_frames_rejected() {
        let _ = Video::from_frames(vec![], 24.0);
    }
}
