//! Raw video primitives shared by every crate in the VideoApp reproduction.
//!
//! The paper operates on raw YUV clips; this reproduction works on 8-bit
//! luma-only video (see `DESIGN.md` §2 for the substitution note). The crate
//! provides:
//!
//! * [`Plane`] — a bounds-safe 8-bit pixel plane with clamped sampling,
//!   which prediction code relies on when motion vectors point outside the
//!   frame,
//! * [`Frame`] and [`Video`] — sequences of planes,
//! * [`MbGrid`] and [`Rect`] — macroblock geometry: H.264 divides every
//!   frame into 16x16 macroblocks, and VideoApp's dependency analysis needs
//!   to know which macroblocks a pixel rectangle overlaps and by how many
//!   pixels.
//!
//! # Example
//!
//! ```
//! use vapp_media::{Frame, MbGrid, Rect, MB_SIZE};
//!
//! let frame = Frame::filled(64, 48, 128);
//! let grid = MbGrid::for_frame(frame.width(), frame.height());
//! assert_eq!(grid.mb_count(), 4 * 3);
//!
//! // A 16x16 rectangle straddling four macroblocks:
//! let overlaps = grid.overlaps(Rect::new(8, 8, 16, 16));
//! assert_eq!(overlaps.len(), 4);
//! assert!(overlaps.iter().all(|o| o.pixels == 64));
//! ```

mod frame;
mod geometry;
pub mod io;
pub mod kernels;
mod plane;

pub use frame::{Frame, Video};
pub use geometry::{MbGrid, MbOverlap, Rect};
pub use io::ParseRawError;
pub use plane::Plane;

/// Width and height, in pixels, of an H.264 macroblock.
pub const MB_SIZE: usize = 16;

/// Number of pixels in one macroblock (16x16).
pub const MB_PIXELS: usize = MB_SIZE * MB_SIZE;
