//! Error-propagation analysis of cipher modes (paper §5).
//!
//! Measures, empirically, what a single ciphertext bit flip does to the
//! decrypted plaintext under each mode, and checks the three
//! approximate-storage encryption requirements of §5.1:
//!
//! 1. content unreadable to non-authorised parties,
//! 2. individual bit flips must not propagate through the rest of the
//!    video,
//! 3. encryption must not interfere with approximation — flipping a
//!    ciphertext bit and decrypting must equal flipping the same plaintext
//!    bit.

use crate::aes::{Block, Key, BLOCK_BYTES};
use crate::modes::CipherMode;

/// Damage caused by one ciphertext bit flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlipDamage {
    /// Plaintext bits that changed.
    pub damaged_bits: usize,
    /// 16-byte blocks containing at least one changed bit.
    pub damaged_blocks: usize,
    /// Whether damage is confined to exactly the flipped bit position.
    pub exact: bool,
}

/// Decrypts `ciphertext` with one bit flipped and reports the plaintext
/// damage relative to the unflipped decrypt.
///
/// # Panics
///
/// Panics if `bit` is out of range for the ciphertext.
pub fn flip_damage(
    mode: CipherMode,
    key: &Key,
    iv: &Block,
    plaintext: &[u8],
    bit: usize,
) -> FlipDamage {
    let ct = mode.encrypt(key, iv, plaintext);
    assert!(bit < ct.len() * 8, "bit index out of range");
    let mut dirty = ct.clone();
    dirty[bit / 8] ^= 1 << (bit % 8);
    let clean_pt = mode.decrypt(key, iv, &ct);
    let dirty_pt = mode.decrypt(key, iv, &dirty);

    let mut damaged_bits = 0usize;
    let mut block_hit = vec![false; clean_pt.len().div_ceil(BLOCK_BYTES)];
    for (i, (a, b)) in clean_pt.iter().zip(&dirty_pt).enumerate() {
        let d = (a ^ b).count_ones() as usize;
        if d > 0 {
            damaged_bits += d;
            block_hit[i / BLOCK_BYTES] = true;
        }
    }
    let exact = damaged_bits == 1 && {
        let byte = bit / 8;
        let mask = 1u8 << (bit % 8);
        byte < clean_pt.len() && (clean_pt[byte] ^ dirty_pt[byte]) == mask
    };
    FlipDamage {
        damaged_bits,
        damaged_blocks: block_hit.iter().filter(|&&h| h).count(),
        exact,
    }
}

/// Result of checking one mode against the §5.1 requirements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModeReport {
    /// The mode under test.
    pub mode: CipherMode,
    /// Requirement #1: equal plaintext blocks encrypt to distinct
    /// ciphertext blocks.
    pub unreadable: bool,
    /// Requirement #2: flip damage never crosses the containing block.
    pub contained: bool,
    /// Requirement #3: flip damage is exactly the flipped bit.
    pub transparent: bool,
}

impl ModeReport {
    /// Whether the mode is usable over approximate video storage.
    pub fn compatible(&self) -> bool {
        self.unreadable && self.contained && self.transparent
    }
}

/// Empirically evaluates a mode against all three requirements, flipping
/// every `stride`-th bit of a structured plaintext.
pub fn evaluate_mode(mode: CipherMode, key: &Key, iv: &Block, stride: usize) -> ModeReport {
    // Structured plaintext with repeated blocks — the dictionary-attack
    // probe for requirement #1.
    let mut plaintext = vec![0xABu8; 128];
    for (i, b) in plaintext.iter_mut().enumerate().skip(64) {
        *b = (i * 7) as u8;
    }
    let ct = mode.encrypt(key, iv, &plaintext);
    let first_blocks_equal = ct[0..16] == ct[16..32];
    let unreadable = !first_blocks_equal;

    let mut contained = true;
    let mut transparent = true;
    for bit in (0..plaintext.len() * 8).step_by(stride.max(1)) {
        let d = flip_damage(mode, key, iv, &plaintext, bit);
        if !d.exact {
            transparent = false;
        }
        // "Contained" allows damage within the flipped block plus a single
        // bit elsewhere? No — the requirement is no propagation beyond the
        // bit itself for approximation; we define contained as damage
        // limited to the containing block only.
        let flipped_block = bit / 8 / BLOCK_BYTES;
        let ct2 = {
            let mut c = ct.clone();
            c[bit / 8] ^= 1 << (bit % 8);
            c
        };
        let clean_pt = mode.decrypt(key, iv, &ct);
        let dirty_pt = mode.decrypt(key, iv, &ct2);
        for (i, (a, b)) in clean_pt.iter().zip(&dirty_pt).enumerate() {
            if a != b && i / BLOCK_BYTES != flipped_block {
                contained = false;
            }
        }
    }
    ModeReport {
        mode,
        unreadable,
        contained,
        transparent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = [0x5A; 16];
    const IV: Block = [0xC3; 16];

    fn probe() -> Vec<u8> {
        (0..96).map(|i| (i * 13 % 251) as u8).collect()
    }

    #[test]
    fn ofb_and_ctr_flips_are_exact() {
        for mode in [CipherMode::Ofb, CipherMode::Ctr] {
            for bit in [0usize, 7, 128, 400, 767] {
                let d = flip_damage(mode, &KEY, &IV, &probe(), bit);
                assert_eq!(
                    d,
                    FlipDamage {
                        damaged_bits: 1,
                        damaged_blocks: 1,
                        exact: true
                    },
                    "{mode:?} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn ecb_flip_scrambles_only_its_block() {
        let d = flip_damage(CipherMode::Ecb, &KEY, &IV, &probe(), 130);
        assert_eq!(d.damaged_blocks, 1);
        assert!(
            d.damaged_bits > 30,
            "expected avalanche, got {}",
            d.damaged_bits
        );
        assert!(!d.exact);
    }

    #[test]
    fn cbc_flip_damages_two_blocks() {
        // CBC: the containing block scrambles, and the same bit position
        // flips in the *next* block (paper: "propagates to all subsequent
        // blocks" via the chain — in decryption the damage is block + 1 bit).
        let d = flip_damage(CipherMode::Cbc, &KEY, &IV, &probe(), 10);
        assert_eq!(d.damaged_blocks, 2);
        assert!(d.damaged_bits > 30);
    }

    #[test]
    fn evaluate_matches_paper_table() {
        for mode in CipherMode::ALL {
            let r = evaluate_mode(mode, &KEY, &IV, 97);
            assert_eq!(
                r.compatible(),
                mode.approximation_compatible(),
                "{mode:?}: {r:?}"
            );
            match mode {
                CipherMode::Ecb => {
                    assert!(!r.unreadable);
                    assert!(r.contained); // damage stays in-block, but readable
                    assert!(!r.transparent);
                }
                CipherMode::Cbc => {
                    assert!(r.unreadable);
                    assert!(!r.contained);
                    assert!(!r.transparent);
                }
                CipherMode::Ofb | CipherMode::Ctr => {
                    assert!(r.unreadable && r.contained && r.transparent);
                }
            }
        }
    }
}
