//! AES-128 (FIPS-197) implemented from first principles.
//!
//! The block cipher is the substitution–permutation network of the
//! paper's Fig. 7 (`subperm`/`invsubperm`). The S-box is *derived* (GF(2^8)
//! inversion + affine map) rather than pasted, and the implementation is
//! validated against the FIPS-197 appendix vectors in the tests.

use std::sync::OnceLock;

/// AES block size in bytes.
pub const BLOCK_BYTES: usize = 16;

/// A 128-bit AES key.
pub type Key = [u8; 16];

/// A 16-byte cipher block.
pub type Block = [u8; BLOCK_BYTES];

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        // Multiplicative inverse in GF(2^8) via exponentiation chains is
        // overkill; build log tables with generator 3.
        let mut log = [0u8; 256];
        let mut alog = [0u8; 256];
        let mut x: u8 = 1;
        for (i, a) in alog.iter_mut().enumerate().take(255) {
            *a = x;
            log[x as usize] = i as u8;
            // x *= 3 in GF(2^8) with the AES polynomial 0x11B.
            x = x ^ xtime(x);
        }
        let inv = |a: u8| -> u8 {
            if a == 0 {
                0
            } else {
                alog[(255 - log[a as usize] as usize) % 255]
            }
        };
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for a in 0..256u16 {
            let b = inv(a as u8);
            // Affine transform: s = b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3)
            // ^ rotl(b,4) ^ 0x63.
            let s = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
            sbox[a as usize] = s;
            inv_sbox[s as usize] = a as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

/// xtime: multiply by x (i.e. 2) in GF(2^8) mod x^8+x^4+x^3+x+1.
#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ if a & 0x80 != 0 { 0x1B } else { 0 }
}

/// GF(2^8) multiplication.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key schedule (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &Key) -> Self {
        let t = tables();
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for k in 0..4 {
                w[i][k] = w[i - 4][k] ^ temp[k];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one block (the `subperm` box of paper Fig. 7).
    pub fn encrypt_block(&self, block: &Block) -> Block {
        let t = tables();
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut s, &t.sbox);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[round]);
        }
        sub_bytes(&mut s, &t.sbox);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// Decrypts one block (`invsubperm`).
    pub fn decrypt_block(&self, block: &Block) -> Block {
        let t = tables();
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[10]);
        inv_shift_rows(&mut s);
        sub_bytes(&mut s, &t.inv_sbox);
        for round in (1..10).rev() {
            add_round_key(&mut s, &self.round_keys[round]);
            inv_mix_columns(&mut s);
            inv_shift_rows(&mut s);
            sub_bytes(&mut s, &t.inv_sbox);
        }
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

// State layout: byte i is row i%4, column i/4 (FIPS column-major).

fn add_round_key(s: &mut Block, rk: &[u8; 16]) {
    for (a, b) in s.iter_mut().zip(rk) {
        *a ^= b;
    }
}

fn sub_bytes(s: &mut Block, box_: &[u8; 256]) {
    for b in s.iter_mut() {
        *b = box_[*b as usize];
    }
}

fn shift_rows(s: &mut Block) {
    let orig = *s;
    for row in 1..4 {
        for col in 0..4 {
            s[4 * col + row] = orig[4 * ((col + row) % 4) + row];
        }
    }
}

fn inv_shift_rows(s: &mut Block) {
    let orig = *s;
    for row in 1..4 {
        for col in 0..4 {
            s[4 * ((col + row) % 4) + row] = orig[4 * col + row];
        }
    }
}

fn mix_columns(s: &mut Block) {
    for col in 0..4 {
        let c = [s[4 * col], s[4 * col + 1], s[4 * col + 2], s[4 * col + 3]];
        s[4 * col] = gmul(c[0], 2) ^ gmul(c[1], 3) ^ c[2] ^ c[3];
        s[4 * col + 1] = c[0] ^ gmul(c[1], 2) ^ gmul(c[2], 3) ^ c[3];
        s[4 * col + 2] = c[0] ^ c[1] ^ gmul(c[2], 2) ^ gmul(c[3], 3);
        s[4 * col + 3] = gmul(c[0], 3) ^ c[1] ^ c[2] ^ gmul(c[3], 2);
    }
}

fn inv_mix_columns(s: &mut Block) {
    for col in 0..4 {
        let c = [s[4 * col], s[4 * col + 1], s[4 * col + 2], s[4 * col + 3]];
        s[4 * col] = gmul(c[0], 14) ^ gmul(c[1], 11) ^ gmul(c[2], 13) ^ gmul(c[3], 9);
        s[4 * col + 1] = gmul(c[0], 9) ^ gmul(c[1], 14) ^ gmul(c[2], 11) ^ gmul(c[3], 13);
        s[4 * col + 2] = gmul(c[0], 13) ^ gmul(c[1], 9) ^ gmul(c[2], 14) ^ gmul(c[3], 11);
        s[4 * col + 3] = gmul(c[0], 11) ^ gmul(c[1], 13) ^ gmul(c[2], 9) ^ gmul(c[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        for a in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[a] as usize] as usize, a);
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 C.1: key 000102…0f, plaintext 00112233…ff.
        let key: Key = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: Block = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key: Key = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: Block = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(ct.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_blocks() {
        let key: Key = [7u8; 16];
        let aes = Aes128::new(&key);
        for i in 0..64u8 {
            let block: Block = core::array::from_fn(|j| i.wrapping_mul(17) ^ j as u8);
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn gmul_known_products() {
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x02), 0xae);
        assert_eq!(gmul(0x01, 0xab), 0xab);
    }

    #[test]
    fn avalanche_effect() {
        // One plaintext bit flip changes ~half the ciphertext bits.
        let key: Key = [3u8; 16];
        let aes = Aes128::new(&key);
        let a: Block = [0u8; 16];
        let mut b = a;
        b[0] ^= 1;
        let ca = aes.encrypt_block(&a);
        let cb = aes.encrypt_block(&b);
        let diff: u32 = ca.iter().zip(&cb).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!((40..=88).contains(&diff), "diffusion too weak: {diff} bits");
    }
}
