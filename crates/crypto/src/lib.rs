//! Encryption for approximate video storage (paper §5).
//!
//! * [`aes`] — AES-128 from first principles (FIPS-197-validated),
//! * [`modes`] — ECB / CBC / OFB / CTR modes with per-stream IV
//!   derivation (§5.3),
//! * [`analysis`] — empirical verification of the three encryption
//!   requirements for approximate storage (§5.1): OFB and CTR contain a
//!   ciphertext bit flip to exactly that plaintext bit; ECB fails
//!   readability, CBC fails containment.
//!
//! # Example
//!
//! ```
//! use vapp_crypto::{CipherMode, flip_damage};
//!
//! let key = [9u8; 16];
//! let iv = [4u8; 16];
//! let data = vec![7u8; 64];
//! // CTR: a flipped ciphertext bit damages exactly one plaintext bit.
//! let d = flip_damage(CipherMode::Ctr, &key, &iv, &data, 100);
//! assert!(d.exact);
//! ```

pub mod aes;
pub mod analysis;
pub mod modes;

pub use aes::{Aes128, Block, Key, BLOCK_BYTES};
pub use analysis::{evaluate_mode, flip_damage, FlipDamage, ModeReport};
pub use modes::{derive_stream_iv, CipherMode};
