//! Block-cipher modes of operation (paper §5.2, Fig. 7).
//!
//! Four modes with very different error-propagation behaviour:
//!
//! | mode | unreadable? | bit-flip damage on decrypt |
//! |------|-------------|----------------------------|
//! | ECB  | no (dictionary attacks) | whole containing block |
//! | CBC  | yes | whole containing block + 1 bit in the next |
//! | OFB  | yes | exactly the flipped bit |
//! | CTR  | yes | exactly the flipped bit |
//!
//! OFB and CTR satisfy all three requirements of paper §5.1 and are the
//! approximate-storage-compatible choices.

use crate::aes::{Aes128, Block, Key, BLOCK_BYTES};

/// A block-cipher mode of operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CipherMode {
    /// Electronic codebook: independent blocks. Fails requirement #1.
    Ecb,
    /// Cipher block chaining: fails requirements #2/#3 (flip damage
    /// propagates).
    Cbc,
    /// Output feedback: a synchronous stream cipher; compatible.
    Ofb,
    /// Counter mode: a seekable stream cipher; compatible.
    Ctr,
}

impl CipherMode {
    /// All modes, in the paper's presentation order.
    pub const ALL: [CipherMode; 4] = [
        CipherMode::Ecb,
        CipherMode::Cbc,
        CipherMode::Ofb,
        CipherMode::Ctr,
    ];

    /// Whether the mode meets the approximate-storage requirements of
    /// paper §5.1 (readability protection *and* flip containment).
    pub fn approximation_compatible(self) -> bool {
        matches!(self, CipherMode::Ofb | CipherMode::Ctr)
    }

    /// Encrypts `data` under `key`/`iv`.
    ///
    /// ECB and CBC zero-pad to a block multiple (the returned buffer may
    /// be longer than the input; the caller tracks the plaintext length,
    /// as the frame headers do in the video store). OFB and CTR are
    /// stream modes and preserve length exactly.
    pub fn encrypt(self, key: &Key, iv: &Block, data: &[u8]) -> Vec<u8> {
        vapp_obs::counter!("crypto.bytes.encrypted", data.len() as u64);
        let aes = Aes128::new(key);
        match self {
            CipherMode::Ecb => {
                let mut out = padded(data);
                for chunk in out.chunks_exact_mut(BLOCK_BYTES) {
                    let block: Block = (&*chunk).try_into().expect("exact chunk");
                    chunk.copy_from_slice(&aes.encrypt_block(&block));
                }
                out
            }
            CipherMode::Cbc => {
                let mut out = padded(data);
                let mut prev = *iv;
                for chunk in out.chunks_exact_mut(BLOCK_BYTES) {
                    for (c, p) in chunk.iter_mut().zip(&prev) {
                        *c ^= p;
                    }
                    let block: Block = (&*chunk).try_into().expect("exact chunk");
                    let b = aes.encrypt_block(&block);
                    chunk.copy_from_slice(&b);
                    prev = b;
                }
                out
            }
            CipherMode::Ofb => xor_stream(data, ofb_stream(&aes, iv, data.len())),
            CipherMode::Ctr => xor_stream(data, ctr_stream(&aes, iv, data.len())),
        }
    }

    /// Decrypts `data` under `key`/`iv`. For ECB/CBC the input must be a
    /// block multiple (as produced by [`CipherMode::encrypt`]).
    ///
    /// # Panics
    ///
    /// Panics if an ECB/CBC input is not block-aligned.
    pub fn decrypt(self, key: &Key, iv: &Block, data: &[u8]) -> Vec<u8> {
        vapp_obs::counter!("crypto.bytes.decrypted", data.len() as u64);
        let aes = Aes128::new(key);
        match self {
            CipherMode::Ecb => {
                assert_eq!(data.len() % BLOCK_BYTES, 0, "ECB needs whole blocks");
                let mut out = data.to_vec();
                for chunk in out.chunks_exact_mut(BLOCK_BYTES) {
                    let block: Block = (&*chunk).try_into().expect("exact chunk");
                    chunk.copy_from_slice(&aes.decrypt_block(&block));
                }
                out
            }
            CipherMode::Cbc => {
                assert_eq!(data.len() % BLOCK_BYTES, 0, "CBC needs whole blocks");
                let mut out = data.to_vec();
                let mut prev = *iv;
                for chunk in out.chunks_exact_mut(BLOCK_BYTES) {
                    let ct: Block = (&*chunk).try_into().expect("exact chunk");
                    let mut b = aes.decrypt_block(&ct);
                    for (x, p) in b.iter_mut().zip(&prev) {
                        *x ^= p;
                    }
                    chunk.copy_from_slice(&b);
                    prev = ct;
                }
                out
            }
            // OFB/CTR decryption is encryption.
            CipherMode::Ofb => xor_stream(data, ofb_stream(&aes, iv, data.len())),
            CipherMode::Ctr => xor_stream(data, ctr_stream(&aes, iv, data.len())),
        }
    }
}

fn padded(data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    out.resize(data.len().div_ceil(BLOCK_BYTES).max(1) * BLOCK_BYTES, 0);
    out
}

fn xor_stream(data: &[u8], stream: Vec<u8>) -> Vec<u8> {
    data.iter().zip(stream).map(|(&d, s)| d ^ s).collect()
}

/// OFB keystream: repeatedly encrypt the previous keystream block
/// ("previous subperm'd value", paper Fig. 7c).
fn ofb_stream(aes: &Aes128, iv: &Block, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = *iv;
    while out.len() < len {
        state = aes.encrypt_block(&state);
        out.extend_from_slice(&state);
    }
    out.truncate(len);
    out
}

/// CTR keystream: encrypt iv+counter per block (paper Fig. 7d).
fn ctr_stream(aes: &Aes128, iv: &Block, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u64;
    while out.len() < len {
        let mut block = *iv;
        // Mix the counter into the low 8 bytes, big-endian.
        for (i, b) in counter.to_be_bytes().iter().enumerate() {
            block[8 + i] ^= b;
        }
        out.extend_from_slice(&aes.encrypt_block(&block));
        counter += 1;
    }
    out.truncate(len);
    out
}

/// Derives a per-stream IV from a master IV and a stream identifier
/// (paper §5.3: "derived from a single value for all streams pre-appended
/// to each stream's identifier"). Implemented as AES_k(master ⊕ id),
/// so distinct streams never share a keystream.
pub fn derive_stream_iv(key: &Key, master_iv: &Block, stream_id: u64) -> Block {
    let mut block = *master_iv;
    for (i, b) in stream_id.to_be_bytes().iter().enumerate() {
        block[i] ^= b;
    }
    Aes128::new(key).encrypt_block(&block)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = [0x42; 16];
    const IV: Block = [0x17; 16];

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn all_modes_roundtrip() {
        let data = sample(100); // deliberately not block aligned
        for mode in CipherMode::ALL {
            let ct = mode.encrypt(&KEY, &IV, &data);
            let pt = mode.decrypt(&KEY, &IV, &ct);
            assert_eq!(&pt[..data.len()], &data[..], "{mode:?}");
        }
    }

    #[test]
    fn stream_modes_preserve_length() {
        let data = sample(37);
        for mode in [CipherMode::Ofb, CipherMode::Ctr] {
            assert_eq!(mode.encrypt(&KEY, &IV, &data).len(), 37, "{mode:?}");
        }
        // Block modes pad.
        assert_eq!(CipherMode::Ecb.encrypt(&KEY, &IV, &data).len(), 48);
    }

    #[test]
    fn ecb_leaks_equal_blocks_cbc_does_not() {
        // Requirement #1 (paper §5.2): a repeated plaintext block maps to
        // a repeated ciphertext block under ECB — the dictionary attack.
        let data = [5u8; 64]; // four identical blocks
        let ecb = CipherMode::Ecb.encrypt(&KEY, &IV, &data);
        assert_eq!(&ecb[0..16], &ecb[16..32]);
        let cbc = CipherMode::Cbc.encrypt(&KEY, &IV, &data);
        assert_ne!(&cbc[0..16], &cbc[16..32]);
        let ctr = CipherMode::Ctr.encrypt(&KEY, &IV, &data);
        assert_ne!(&ctr[0..16], &ctr[16..32]);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let data = sample(64);
        for mode in CipherMode::ALL {
            let ct = mode.encrypt(&KEY, &IV, &data);
            assert_ne!(&ct[..data.len()], &data[..], "{mode:?}");
        }
    }

    #[test]
    fn compatibility_flags() {
        assert!(!CipherMode::Ecb.approximation_compatible());
        assert!(!CipherMode::Cbc.approximation_compatible());
        assert!(CipherMode::Ofb.approximation_compatible());
        assert!(CipherMode::Ctr.approximation_compatible());
    }

    #[test]
    fn derived_ivs_are_distinct_and_deterministic() {
        let a = derive_stream_iv(&KEY, &IV, 0);
        let b = derive_stream_iv(&KEY, &IV, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_stream_iv(&KEY, &IV, 0));
    }

    #[test]
    fn ctr_blocks_are_independent() {
        // Decrypting only the second block's worth works in CTR (seekable
        // property is exercised indirectly: flipping block 1 of ciphertext
        // leaves block 2 intact after decrypt).
        let data = sample(48);
        let mut ct = CipherMode::Ctr.encrypt(&KEY, &IV, &data);
        ct[0] ^= 0xFF;
        let pt = CipherMode::Ctr.decrypt(&KEY, &IV, &ct);
        assert_eq!(&pt[16..], &data[16..]);
        assert_ne!(pt[0], data[0]);
    }
}
