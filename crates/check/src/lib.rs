//! A lightweight, zero-dependency property-test harness: seeded case
//! generation with shrink-free failure reporting, driven by
//! [`vapp_rand`].
//!
//! This replaces `proptest` for the repo's needs. Design choices:
//!
//! * **Deterministic by construction.** The base seed is derived from
//!   the property name (FNV-1a), so every property sees the same case
//!   stream in every run, on every machine. There is no time- or
//!   entropy-derived seeding anywhere.
//! * **No shrinking.** Cases are generated directly from an RNG, so a
//!   failure is reported as the exact per-case seed that reproduces it.
//!   Re-running one case is cheaper and more faithful than a shrinker:
//!   set `VAPP_CHECK_SEED` to the reported value.
//! * **Env knobs.** `VAPP_CHECK_CASES` multiplies every property's case
//!   count (e.g. `VAPP_CHECK_CASES=10` for a tier-2-style soak);
//!   `VAPP_CHECK_SEED=<hex-or-dec>` replays exactly one case.
//!
//! ```
//! use vapp_check::{check, RngExt};
//!
//! check("addition_commutes", 64, |rng| {
//!     let a: u32 = rng.random();
//!     let b: u32 = rng.random();
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

pub use vapp_rand::rngs::StdRng;
pub use vapp_rand::{Random, RngCore, RngExt, SampleRange, SampleUniform, SeedableRng};

/// FNV-1a over the property name: a stable, platform-independent base
/// seed so each property owns a distinct but reproducible case stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64-style mix of base seed and case index into a per-case seed.
fn case_seed(base: u64, case: usize) -> u64 {
    let mut z = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var}={raw} is not a u64"),
    }
}

/// Runs a property over `cases` seeded random cases.
///
/// Each case receives a fresh [`StdRng`] derived from the property name
/// and case index. On failure the panic is re-raised with the property
/// name, case number, and the `VAPP_CHECK_SEED` value that replays just
/// that case.
///
/// # Panics
///
/// Panics (failing the enclosing test) if any case's closure panics.
pub fn check(name: &str, cases: usize, f: impl Fn(&mut StdRng)) {
    let base = fnv1a(name);
    if let Some(seed) = parse_env_u64("VAPP_CHECK_SEED") {
        // Replay mode: exactly one case with the reported seed.
        f(&mut StdRng::seed_from_u64(seed));
        return;
    }
    let multiplier = parse_env_u64("VAPP_CHECK_CASES").unwrap_or(1) as usize;
    let total = cases.saturating_mul(multiplier.max(1)).max(1);
    for case in 0..total {
        let seed = case_seed(base, case);
        // Each case runs against its own observability registry: a failing
        // case's metrics describe that case alone, and parallel test
        // threads cannot bleed counters into each other.
        let reg = std::sync::Arc::new(vapp_obs::Registry::new());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            vapp_obs::registry::with_registry(reg.clone(), || f(&mut StdRng::seed_from_u64(seed)))
        }));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            let obs = reg.snapshot().render_text(24);
            let obs = if obs.is_empty() {
                String::new()
            } else {
                format!("\nobservability snapshot of the failing case:\n{obs}")
            };
            panic!(
                "property `{name}` failed at case {case}/{total}:\n  {msg}\n\
                 replay just this case with: VAPP_CHECK_SEED={seed:#x} cargo test {name}{obs}"
            );
        }
    }
}

/// Generator helpers for shapes `RngExt` does not cover directly.
pub mod gen {
    use super::*;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A `Vec` with a length drawn from `len` and elements from `item`.
    pub fn vec_of<T>(
        rng: &mut StdRng,
        len: Range<usize>,
        mut item: impl FnMut(&mut StdRng) -> T,
    ) -> Vec<T> {
        let n = if len.start == len.end {
            len.start
        } else {
            rng.random_range(len)
        };
        (0..n).map(|_| item(rng)).collect()
    }

    /// Random bytes with a length drawn from `len`.
    pub fn bytes(rng: &mut StdRng, len: Range<usize>) -> Vec<u8> {
        vec_of(rng, len, |r| r.random())
    }

    /// A set of up to `count` distinct values from `universe` (fewer if
    /// the universe is smaller than the requested count).
    pub fn distinct(rng: &mut StdRng, universe: Range<usize>, count: usize) -> BTreeSet<usize> {
        let size = universe.end.saturating_sub(universe.start);
        let target = count.min(size);
        let mut out = BTreeSet::new();
        while out.len() < target {
            out.insert(rng.random_range(universe.clone()));
        }
        out
    }

    /// An index into a collection of length `len` (`proptest`'s
    /// `sample::Index` equivalent).
    pub fn index(rng: &mut StdRng, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        rng.random_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0usize;
        let counter = std::cell::Cell::new(0usize);
        check("counts_cases", 32, |_rng| {
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_reports_name_case_and_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", 8, |rng| {
                let v: u64 = rng.random();
                assert!(v == 0 && v == 1, "impossible");
            });
        }));
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("string panic message");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case 0/8"), "{msg}");
        assert!(msg.contains("VAPP_CHECK_SEED=0x"), "{msg}");
    }

    #[test]
    fn case_streams_are_deterministic_and_distinct() {
        let collect = |name: &str| {
            let out = std::cell::RefCell::new(Vec::new());
            check(name, 8, |rng| out.borrow_mut().push(rng.random::<u64>()));
            out.into_inner()
        };
        assert_eq!(collect("stream_a"), collect("stream_a"));
        assert_ne!(collect("stream_a"), collect("stream_b"));
    }

    #[test]
    fn gen_helpers_respect_bounds() {
        check("gen_bounds", 64, |rng| {
            let v = gen::bytes(rng, 0..100);
            assert!(v.len() < 100);
            let s = gen::distinct(rng, 10..20, 25);
            assert_eq!(s.len(), 10);
            assert!(s.iter().all(|&x| (10..20).contains(&x)));
            let i = gen::index(rng, 7);
            assert!(i < 7);
        });
    }
}
