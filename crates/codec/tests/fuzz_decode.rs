//! Decoder totality under arbitrary payload corruption: the property the
//! whole approximate-storage design rests on.

use proptest::prelude::*;
use vapp_codec::{decode, Encoder, EncoderConfig, EntropyMode};
use vapp_workloads::{ClipSpec, SceneKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decoder_is_total_under_arbitrary_corruption(
        seed in 0u64..50,
        xor_mask in 1u8..=255,
        stride in 1usize..7,
        entropy_cavlc in any::<bool>(),
        truncate_den in 1usize..4,
    ) {
        let video = ClipSpec::new(48, 32, 6, SceneKind::MovingBlocks)
            .seed(seed)
            .generate();
        let cfg = EncoderConfig {
            keyint: 3,
            bframes: 1,
            entropy: if entropy_cavlc { EntropyMode::Cavlc } else { EntropyMode::Cabac },
            ..EncoderConfig::default()
        };
        let mut stream = Encoder::new(cfg).encode(&video).stream;
        for f in &mut stream.frames {
            let keep = f.payload.len() / truncate_den;
            f.payload.truncate(keep);
            for b in f.payload.iter_mut().step_by(stride) {
                *b ^= xor_mask;
            }
        }
        // Must never panic, and must keep the declared geometry.
        let decoded = decode(&stream);
        prop_assert_eq!(decoded.len(), video.len());
        prop_assert_eq!(decoded.width(), video.width());
        prop_assert_eq!(decoded.height(), video.height());
    }
}
