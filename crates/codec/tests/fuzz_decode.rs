//! Decoder totality under arbitrary payload corruption: the property the
//! whole approximate-storage design rests on. Driven by the in-repo
//! `vapp-check` fuzz harness (seeded cases, `VAPP_CHECK_SEED` replay).

use vapp_check::{check, RngExt};
use vapp_codec::{decode, Encoder, EncoderConfig, EntropyMode};
use vapp_workloads::{ClipSpec, SceneKind};

#[test]
fn decoder_is_total_under_arbitrary_corruption() {
    check("decoder_is_total_under_arbitrary_corruption", 24, |rng| {
        let seed = rng.random_range(0..50u64);
        let xor_mask = rng.random_range(1..=255u8);
        let stride = rng.random_range(1..7usize);
        let entropy_cavlc: bool = rng.random();
        let truncate_den = rng.random_range(1..4usize);

        let video = ClipSpec::new(48, 32, 6, SceneKind::MovingBlocks)
            .seed(seed)
            .generate();
        let cfg = EncoderConfig {
            keyint: 3,
            bframes: 1,
            entropy: if entropy_cavlc {
                EntropyMode::Cavlc
            } else {
                EntropyMode::Cabac
            },
            ..EncoderConfig::default()
        };
        let mut stream = Encoder::new(cfg).encode(&video).stream;
        for f in &mut stream.frames {
            let keep = f.payload.len() / truncate_den;
            f.payload.truncate(keep);
            for b in f.payload.iter_mut().step_by(stride) {
                *b ^= xor_mask;
            }
        }
        // Must never panic, and must keep the declared geometry.
        let decoded = decode(&stream);
        assert_eq!(decoded.len(), video.len());
        assert_eq!(decoded.width(), video.width());
        assert_eq!(decoded.height(), video.height());
    });
}
