//! The encoder's parallel paths (B-frame waves, the per-macroblock
//! candidate pass) must never change the coded stream: one worker or
//! eight, the bytes are identical.

use vapp_codec::{Encoder, EncoderConfig, EntropyMode};
use vapp_workloads::{ClipSpec, SceneKind};

#[test]
fn encoded_stream_is_thread_count_invariant() {
    let video = ClipSpec::new(96, 64, 10, SceneKind::MovingBlocks)
        .seed(21)
        .generate();
    for entropy in [EntropyMode::Cabac, EntropyMode::Cavlc] {
        let cfg = EncoderConfig {
            keyint: 6,
            bframes: 2,
            entropy,
            ..Default::default()
        };
        let enc = Encoder::new(cfg);
        let seq = vapp_par::with_threads(1, || enc.encode(&video));
        let par = vapp_par::with_threads(8, || enc.encode(&video));
        assert_eq!(seq.stream, par.stream, "{entropy:?} stream differs");
        assert_eq!(
            seq.reconstruction, par.reconstruction,
            "{entropy:?} reconstruction differs"
        );
        assert_eq!(
            seq.analysis.frames.len(),
            par.analysis.frames.len(),
            "{entropy:?} analysis differs"
        );
    }
}
