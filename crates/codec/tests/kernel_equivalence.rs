//! Property tests pinning the word-parallel codec kernels bit-identical to
//! their scalar references — the scalar paths stay the specification the
//! SWAR (and optional intrinsic) kernels must reproduce exactly, across
//! random blocks, non-multiple-of-8 widths and border geometries.

use vapp_check::{RngExt, StdRng};
use vapp_codec::inter::{mc_block_halfpel_into, MAX_BLOCK_PIXELS};
use vapp_codec::quant::{dequantize, forward_quant, quantize, MAX_QP};
use vapp_codec::transform::{forward4x4, inverse4x4, Block4x4};
use vapp_codec::types::MotionVector;
use vapp_media::Plane;

fn random_plane(rng: &mut StdRng, w: usize, h: usize) -> Plane {
    let data: Vec<u8> = (0..w * h).map(|_| rng.random::<u64>() as u8).collect();
    Plane::from_data(w, h, data)
}

/// Clamped scalar SAD — the definition `Plane::sad_bounded` must match
/// whenever the result is `<=` the bound.
#[allow(clippy::too_many_arguments)]
fn sad_scalar(
    cur: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    other: &Plane,
    rx: isize,
    ry: isize,
) -> u64 {
    let mut sum = 0u64;
    for dy in 0..h {
        for dx in 0..w {
            let a = cur.get(x + dx, y + dy) as i32;
            let b = other.sample(rx + dx as isize, ry + dy as isize) as i32;
            sum += a.abs_diff(b) as u64;
        }
    }
    sum
}

#[test]
fn swar_sad_matches_scalar_reference() {
    vapp_check::check("swar_sad_matches_scalar", 64, |rng| {
        let pw = rng.random_range(24..64);
        let ph = rng.random_range(24..64);
        let cur = random_plane(rng, pw, ph);
        let refp = random_plane(rng, pw, ph);
        // Deliberately non-multiple-of-8 widths and border-straddling
        // reference origins.
        let w = rng.random_range(1..=16usize.min(pw));
        let h = rng.random_range(1..=16usize.min(ph));
        let x = rng.random_range(0..=pw - w);
        let y = rng.random_range(0..=ph - h);
        let rx = rng.random_range(0..pw as i64 + 8) as isize - 4;
        let ry = rng.random_range(0..ph as i64 + 8) as isize - 4;
        let want = sad_scalar(&cur, x, y, w, h, &refp, rx, ry);
        assert_eq!(
            cur.sad(x, y, w, h, &refp, rx, ry),
            want,
            "w={w} h={h} x={x} y={y} rx={rx} ry={ry}"
        );
        // Bounded variant: exact at or below the bound, and never *under*
        // the bound when it bails early (so `> bound` comparisons agree).
        let bound = rng.random_range(0..want + 2);
        let got = cur.sad_bounded(x, y, w, h, &refp, rx, ry, bound);
        if want <= bound {
            assert_eq!(got, want, "bounded must be exact at/below bound");
        } else {
            assert!(got > bound, "early exit must still report excess");
        }
    });
}

#[test]
fn sad_slices_matches_scalar_on_ragged_lengths() {
    vapp_check::check("sad_slices_ragged", 64, |rng| {
        let n = rng.random_range(0..80usize);
        let a: Vec<u8> = (0..n).map(|_| rng.random::<u64>() as u8).collect();
        let b: Vec<u8> = (0..n).map(|_| rng.random::<u64>() as u8).collect();
        let want: u64 = a.iter().zip(&b).map(|(&x, &y)| x.abs_diff(y) as u64).sum();
        assert_eq!(vapp_media::kernels::sad_slices(&a, &b), want, "len={n}");
    });
}

#[test]
fn fused_transform_quant_matches_scalar_pair() {
    vapp_check::check("fused_forward_quant", 64, |rng| {
        let qp = rng.random_range(0..=MAX_QP as u64) as u8;
        let intra = rng.random::<u64>() & 1 == 1;
        let r: Block4x4 = core::array::from_fn(|_| rng.random_range(0..511) - 255);
        let want = quantize(&forward4x4(&r), qp, intra);
        assert_eq!(forward_quant(&r, qp, intra), want, "qp={qp} intra={intra}");
        // And the fused inverse on the levels the forward pass produced.
        assert_eq!(
            vapp_codec::quant::dequant_inverse(&want, qp),
            inverse4x4(&dequantize(&want, qp)),
            "qp={qp}"
        );
    });
}

/// Scalar half-pel motion compensation — clamped bilinear sampling, the
/// definition `mc_block_halfpel_into`'s word-parallel interior path must
/// reproduce byte for byte.
fn mc_halfpel_scalar(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
) -> Vec<u8> {
    let bx = x as isize * 2 + mv.x as isize;
    let by = y as isize * 2 + mv.y as isize;
    let (ix, iy) = (bx.div_euclid(2), by.div_euclid(2));
    let (fx, fy) = (bx.rem_euclid(2), by.rem_euclid(2));
    let mut out = vec![0u8; w * h];
    for oy in 0..h {
        for ox in 0..w {
            let px = ix + ox as isize;
            let py = iy + oy as isize;
            let p00 = reference.sample(px, py) as u16;
            let v = match (fx, fy) {
                (0, 0) => p00,
                (1, 0) => (p00 + reference.sample(px + 1, py) as u16 + 1) >> 1,
                (0, 1) => (p00 + reference.sample(px, py + 1) as u16 + 1) >> 1,
                _ => {
                    let p10 = reference.sample(px + 1, py) as u16;
                    let p01 = reference.sample(px, py + 1) as u16;
                    let p11 = reference.sample(px + 1, py + 1) as u16;
                    (p00 + p10 + p01 + p11 + 2) >> 2
                }
            };
            out[oy * w + ox] = v as u8;
        }
    }
    out
}

#[test]
fn word_parallel_bilinear_matches_scalar_reference() {
    vapp_check::check("halfpel_bilinear", 64, |rng| {
        let pw = rng.random_range(24..64);
        let ph = rng.random_range(24..64);
        let refp = random_plane(rng, pw, ph);
        let w = rng.random_range(1..=16usize.min(pw));
        let h = rng.random_range(1..=16usize.min(ph));
        let x = rng.random_range(0..=pw - w);
        let y = rng.random_range(0..=ph - h);
        // Half-pel vectors reaching interior, border and out-of-plane
        // positions, covering all four (fx, fy) phases.
        let mv = MotionVector::new(
            rng.random_range(0..24) as i16 - 12,
            rng.random_range(0..24) as i16 - 12,
        );
        let want = mc_halfpel_scalar(&refp, x, y, w, h, mv);
        let mut got = [0u8; MAX_BLOCK_PIXELS];
        mc_block_halfpel_into(&refp, x, y, w, h, mv, &mut got[..w * h]);
        assert_eq!(
            &got[..w * h],
            &want[..],
            "w={w} h={h} x={x} y={y} mv=({},{})",
            mv.x,
            mv.y
        );
    });
}

#[test]
fn bi_average_into_matches_scalar_rounding() {
    vapp_check::check("bi_average_rounding", 64, |rng| {
        let n = rng.random_range(1..=MAX_BLOCK_PIXELS);
        let a: Vec<u8> = (0..n).map(|_| rng.random::<u64>() as u8).collect();
        let b: Vec<u8> = (0..n).map(|_| rng.random::<u64>() as u8).collect();
        let mut got = vec![0u8; n];
        vapp_codec::inter::bi_average_into(&a, &b, &mut got);
        for i in 0..n {
            let want = ((a[i] as u16 + b[i] as u16 + 1) >> 1) as u8;
            assert_eq!(got[i], want, "i={i} a={} b={}", a[i], b[i]);
        }
    });
}
