use vapp_codec::{decode, Encoder, EncoderConfig, EntropyMode};
use vapp_metrics::video_psnr;
use vapp_workloads::{ClipSpec, SceneKind};

#[test]
fn codec_sanity_report() {
    let video = ClipSpec::new(96, 64, 12, SceneKind::MovingBlocks)
        .seed(3)
        .generate();
    let raw_bits = (video.total_pixels() * 8) as f64;
    for (crf, entropy) in [
        (16u8, EntropyMode::Cabac),
        (24, EntropyMode::Cabac),
        (32, EntropyMode::Cabac),
        (24, EntropyMode::Cavlc),
    ] {
        let cfg = EncoderConfig {
            crf,
            entropy,
            keyint: 8,
            bframes: 2,
            ..Default::default()
        };
        let r = Encoder::new(cfg).encode(&video);
        let bits = r.stream.payload_bits() as f64 + r.stream.header_bits() as f64;
        let psnr = video_psnr(&video, &r.reconstruction);
        let dec = decode(&r.stream);
        assert_eq!(dec, r.reconstruction);
        vapp_obs::info!(
            "codec.sanity",
            "crf={crf} {entropy:?}: ratio={:.1}x psnr={psnr:.2}dB bpp={:.3}",
            raw_bits / bits,
            bits / video.total_pixels() as f64
        );
    }
}
