//! An H.264-style video codec with dependency recording, built for the
//! VideoApp reproduction.
//!
//! This crate substitutes for the paper's x264 integration (DESIGN.md §2).
//! It implements the pipeline of paper §2.3 end to end:
//!
//! * pixel-level prediction & compensation — intra 16x16 modes and
//!   integer-pel motion compensation with variable partitions
//!   (16x16 … 4x4),
//! * coding — the H.264 4x4 integer transform, QP quantisation,
//!   predictive metadata coding (median motion-vector prediction,
//!   QP deltas), and two entropy coders: CABAC-class adaptive binary
//!   arithmetic coding and CAVLC-class Exp-Golomb coding,
//! * I/P/B frames with configurable GOP structure and slices,
//! * a **total** decoder: corrupt payloads decode to (deterministic)
//!   garbage, never to a panic — required for approximate storage,
//! * **dependency recording** ([`AnalysisRecord`]): per-macroblock payload
//!   bit spans and pixel-weighted compensation dependencies, the input to
//!   VideoApp's importance analysis.
//!
//! # Example
//!
//! ```
//! use vapp_codec::{Encoder, EncoderConfig};
//! use vapp_media::{Frame, Video};
//!
//! let video = Video::from_frames(vec![Frame::filled(32, 32, 80); 4], 25.0);
//! let result = Encoder::new(EncoderConfig::default()).encode(&video);
//! let decoded = vapp_codec::decode(&result.stream);
//! assert_eq!(decoded.len(), video.len());
//! # assert_eq!(decoded, result.reconstruction);
//! ```

pub mod analysis;
pub mod arith;
pub mod bitstream;
pub mod container;
pub mod deblock;
mod decoder;
mod encoder;
pub mod entropy;
pub mod expgolomb;
pub mod inter;
pub mod intra;
pub mod quant;
pub mod syntax;
pub mod transform;
pub mod types;

pub use analysis::{AnalysisRecord, Dependency, FrameAnalysis, MbAnalysis};
pub use container::ParseContainerError;
pub use decoder::decode;
pub use encoder::{EncodeResult, Encoder, EncoderConfig};
pub use entropy::EntropyMode;
pub use syntax::{EncodedFrame, EncodedVideo, FrameHeader, StreamHeader};
pub use types::{
    FrameType, IntraMode, MotionVector, PartShape, PartitionLayout, PredDir, SubShape,
};
