//! H.264 quantisation (the rate/quality knob, paper §2.3.2).
//!
//! Uses the standard H.264 multiplication-factor (`MF`) and rescale (`V`)
//! tables, so the quantisation step doubles every 6 QP exactly as in the
//! real codec. Quantisation is the only lossy step of the coding stage.

use crate::transform::{forward4x4, inverse4x4, Block4x4};
use std::sync::OnceLock;

/// Highest legal quantisation parameter (H.264 luma).
pub const MAX_QP: u8 = 51;

/// Position class within a 4x4 block: positions (0,0),(0,2),(2,0),(2,2) use
/// class 0; (1,1),(1,3),(3,1),(3,3) class 1; the rest class 2.
fn pos_class(i: usize) -> usize {
    let (r, c) = (i / 4, i % 4);
    match ((r % 2) == 0, (c % 2) == 0) {
        (true, true) => 0,
        (false, false) => 1,
        _ => 2,
    }
}

/// H.264 quantisation multipliers `MF` indexed by `QP % 6` and position
/// class.
const MF: [[i64; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// H.264 rescale factors `V` indexed by `QP % 6` and position class.
const V: [[i32; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

/// Quantises forward-transform output. `intra` selects the H.264 dead-zone
/// rounding offset (`2^qbits / 3` intra, `/ 6` inter).
///
/// # Panics
///
/// Panics if `qp > 51`.
pub fn quantize(coeffs: &Block4x4, qp: u8, intra: bool) -> Block4x4 {
    assert!(qp <= MAX_QP, "qp out of range");
    let qbits = 15 + (qp / 6) as i64;
    let f: i64 = if intra {
        (1i64 << qbits) / 3
    } else {
        (1i64 << qbits) / 6
    };
    let row = &MF[(qp % 6) as usize];
    let mut out = [0i32; 16];
    for i in 0..16 {
        let w = coeffs[i] as i64;
        let level = (w.abs() * row[pos_class(i)] + f) >> qbits;
        out[i] = if w < 0 { -level as i32 } else { level as i32 };
    }
    out
}

/// Rescales (dequantises) levels back to transform-domain coefficients,
/// pre-scaled by 64 for the shift-based inverse transform.
///
/// # Panics
///
/// Panics if `qp > 51`.
pub fn dequantize(levels: &Block4x4, qp: u8) -> Block4x4 {
    assert!(qp <= MAX_QP, "qp out of range");
    let shift = (qp / 6) as i32;
    let row = &V[(qp % 6) as usize];
    let mut out = [0i32; 16];
    for i in 0..16 {
        // H.264 rescale: W' = Z * V * 2^(QP/6); the inverse transform's
        // (x+32)>>6 absorbs the residual 64x scale.
        out[i] = levels[i].saturating_mul(row[pos_class(i)]) << shift;
    }
    out
}

/// Per-QP quantisation constants, expanded from the position-class tables to
/// one entry per block position so the hot loops index directly (no
/// `pos_class` divide/modulo per coefficient).
struct QpTable {
    /// `MF[qp % 6][pos_class(i)]` for each of the 16 positions.
    mf: [i64; 16],
    /// `V[qp % 6][pos_class(i)] << (qp / 6)` — the rescale factor with the
    /// QP shift pre-applied.
    v: [i64; 16],
    /// Quantisation shift `15 + qp / 6`.
    qbits: i64,
    /// Intra dead-zone offset `2^qbits / 3`.
    f_intra: i64,
    /// Inter dead-zone offset `2^qbits / 6`.
    f_inter: i64,
}

/// The 52 per-QP tables, built once on first use.
fn qp_tables() -> &'static [QpTable; 52] {
    static TABLES: OnceLock<[QpTable; 52]> = OnceLock::new();
    TABLES.get_or_init(|| {
        core::array::from_fn(|qp| {
            let qbits = 15 + (qp / 6) as i64;
            QpTable {
                mf: core::array::from_fn(|i| MF[qp % 6][pos_class(i)]),
                v: core::array::from_fn(|i| (V[qp % 6][pos_class(i)] as i64) << (qp / 6)),
                qbits,
                f_intra: (1i64 << qbits) / 3,
                f_inter: (1i64 << qbits) / 6,
            }
        })
    })
}

/// Fused `forward4x4` → `quantize`: transforms a residual block and
/// quantises it in one pass over the per-QP LUT.
///
/// Bit-identical to the scalar pair (`quantize(&forward4x4(r), qp, intra)`),
/// which stays as the reference implementation — the LUT stores exactly the
/// values the scalar path recomputes per coefficient.
///
/// # Panics
///
/// Panics if `qp > 51`.
pub fn forward_quant(residual: &Block4x4, qp: u8, intra: bool) -> Block4x4 {
    assert!(qp <= MAX_QP, "qp out of range");
    let t = &qp_tables()[qp as usize];
    let f = if intra { t.f_intra } else { t.f_inter };
    let coeffs = forward4x4(residual);
    let mut out = [0i32; 16];
    for i in 0..16 {
        let w = coeffs[i] as i64;
        let level = (w.abs() * t.mf[i] + f) >> t.qbits;
        out[i] = if w < 0 { -level as i32 } else { level as i32 };
    }
    out
}

/// Fused `dequantize` → `inverse4x4` for **encoder-produced** levels.
///
/// Uses the pre-shifted rescale LUT in 64-bit arithmetic, so it differs from
/// the scalar `dequantize` (whose `saturating_mul` then shift saturates on
/// absurd inputs) only when `|level * V|` overflows `i32` — impossible for
/// levels that came out of [`quantize`]/[`forward_quant`] on 8-bit residuals
/// (`|level| < 2^13`, `V << shift <= 29 << 8`, product `< 2^26`). The decoder
/// keeps the scalar pair because corrupt streams *can* carry huge levels and
/// their saturation behaviour is part of its contract.
///
/// # Panics
///
/// Panics if `qp > 51`.
pub fn dequant_inverse(levels: &Block4x4, qp: u8) -> Block4x4 {
    assert!(qp <= MAX_QP, "qp out of range");
    let t = &qp_tables()[qp as usize];
    let mut deq = [0i32; 16];
    for i in 0..16 {
        deq[i] = (levels[i] as i64 * t.v[i]) as i32;
    }
    inverse4x4(&deq)
}

/// Zigzag scan order for a 4x4 block (H.264 frame scan).
pub const ZIGZAG4X4: [usize; 16] = [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15];

/// Reorders a row-major block into zigzag order.
pub fn to_zigzag(block: &Block4x4) -> Block4x4 {
    core::array::from_fn(|i| block[ZIGZAG4X4[i]])
}

/// Restores a zigzag-ordered block to row-major order.
pub fn from_zigzag(zz: &Block4x4) -> Block4x4 {
    let mut out = [0i32; 16];
    for (i, &pos) in ZIGZAG4X4.iter().enumerate() {
        out[pos] = zz[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_quantizes_to_zero() {
        let z = [0i32; 16];
        assert_eq!(quantize(&z, 20, true), z);
        assert_eq!(dequantize(&z, 20), z);
    }

    #[test]
    fn qp_plus_six_halves_levels() {
        // The defining property of H.264 quantisation: step doubles per +6.
        let coeffs: Block4x4 = core::array::from_fn(|i| (i as i32 + 1) * 640);
        for qp in [10u8, 20, 30] {
            let a = quantize(&coeffs, qp, false);
            let b = quantize(&coeffs, qp + 6, false);
            for i in 0..16 {
                assert!(
                    (a[i] / 2 - b[i]).abs() <= 1,
                    "qp={qp} i={i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn sign_symmetry() {
        let coeffs: Block4x4 = core::array::from_fn(|i| (i as i32 * 97) - 700);
        let neg: Block4x4 = core::array::from_fn(|i| -coeffs[i]);
        let qa = quantize(&coeffs, 24, true);
        let qb = quantize(&neg, 24, true);
        for i in 0..16 {
            assert_eq!(qa[i], -qb[i]);
        }
    }

    #[test]
    fn zigzag_is_a_permutation_roundtrip() {
        let block: Block4x4 = core::array::from_fn(|i| i as i32);
        let zz = to_zigzag(&block);
        assert_eq!(from_zigzag(&zz), block);
        // Zigzag starts at DC and visits every position once.
        let mut seen = [false; 16];
        for &p in &ZIGZAG4X4 {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert_eq!(zz[0], block[0]);
    }

    #[test]
    #[should_panic(expected = "qp out of range")]
    fn qp_out_of_range_rejected() {
        quantize(&[0; 16], 52, false);
    }

    #[test]
    fn fused_forward_quant_matches_scalar_pair() {
        for qp in 0..=MAX_QP {
            for intra in [false, true] {
                let r: Block4x4 =
                    core::array::from_fn(|i| ((i as i32 * 173 + qp as i32 * 31) % 511) - 255);
                assert_eq!(
                    forward_quant(&r, qp, intra),
                    quantize(&crate::transform::forward4x4(&r), qp, intra),
                    "qp={qp} intra={intra}"
                );
            }
        }
    }

    #[test]
    fn fused_dequant_inverse_matches_scalar_pair() {
        for qp in 0..=MAX_QP {
            // Levels as the encoder would produce them: quantised 8-bit
            // residual coefficients.
            let r: Block4x4 =
                core::array::from_fn(|i| ((i as i32 * 89 + qp as i32 * 17) % 511) - 255);
            let levels = forward_quant(&r, qp, false);
            assert_eq!(
                dequant_inverse(&levels, qp),
                crate::transform::inverse4x4(&dequantize(&levels, qp)),
                "qp={qp}"
            );
        }
    }

    #[test]
    fn intra_rounding_is_more_generous() {
        // With the same coefficient near a quantisation boundary, the intra
        // offset (1/3) rounds up where the inter offset (1/6) rounds down.
        let mut found = false;
        for v in 1..4000 {
            let c: Block4x4 = core::array::from_fn(|i| if i == 0 { v } else { 0 });
            if quantize(&c, 28, true)[0] > quantize(&c, 28, false)[0] {
                found = true;
                break;
            }
        }
        assert!(found);
    }
}
