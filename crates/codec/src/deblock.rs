//! In-loop deblocking filter.
//!
//! Block transforms plus coarse quantisation leave visible discontinuities
//! at 4x4 block edges; H.264 removes them with an adaptive in-loop filter
//! applied to the reconstruction *after* the whole frame is decoded (so
//! intra prediction sees unfiltered samples, exactly as here) and *before*
//! the frame is used as a reference. This is a faithful simplification of
//! the H.264 design: one-tap edge smoothing with QP-adaptive thresholds
//! (`alpha`/`beta` gates, `tc` clipping), applied to every internal 4x4
//! edge.
//!
//! Encoder and decoder run the identical function on identical inputs, so
//! the closed loop stays bit-exact.

use vapp_media::Plane;

/// Edge-activity gate: only filter edges whose step is plausibly a coding
/// artefact (large real edges are left alone). Grows with QP.
fn alpha(qp: u8) -> i32 {
    // Roughly exponential in QP, clamped like the H.264 table endpoints.
    (0.8 * f64::powf(2.0, qp as f64 / 6.0)).min(255.0) as i32
}

/// Local-gradient gate.
fn beta(qp: u8) -> i32 {
    (0.5 * qp as f64).min(18.0) as i32
}

/// Maximum per-pixel correction.
fn tc(qp: u8) -> i32 {
    (1 + qp as i32 / 10).min(25)
}

/// Filters one edge pair `(p1, p0 | q0, q1)`, returning the new
/// `(p0, q0)`.
#[inline]
fn filter_pair(p1: i32, p0: i32, q0: i32, q1: i32, a: i32, b: i32, c: i32) -> (i32, i32) {
    if (p0 - q0).abs() >= a || (p1 - p0).abs() >= b || (q1 - q0).abs() >= b {
        return (p0, q0);
    }
    // H.263/H.264-style one-tap correction.
    let delta = (((q0 - p0) * 4 + (p1 - q1) + 4) >> 3).clamp(-c, c);
    ((p0 + delta).clamp(0, 255), (q0 - delta).clamp(0, 255))
}

/// Deblocks a reconstructed frame in place: all internal vertical and
/// horizontal 4x4-block edges, with thresholds driven by the frame QP.
pub fn deblock_plane(plane: &mut Plane, qp: u8) {
    let a = alpha(qp);
    let b = beta(qp);
    let c = tc(qp);
    let (w, h) = (plane.width(), plane.height());

    // Vertical edges (filter across x = 4, 8, ...).
    let mut x = 4;
    while x < w {
        for y in 0..h {
            let p1 = plane.get(x - 2, y) as i32;
            let p0 = plane.get(x - 1, y) as i32;
            let q0 = plane.get(x, y) as i32;
            let q1 = plane.sample(x as isize + 1, y as isize) as i32;
            let (np0, nq0) = filter_pair(p1, p0, q0, q1, a, b, c);
            plane.set(x - 1, y, np0 as u8);
            plane.set(x, y, nq0 as u8);
        }
        x += 4;
    }

    // Horizontal edges (filter across y = 4, 8, ...).
    let mut y = 4;
    while y < h {
        for x in 0..w {
            let p1 = plane.get(x, y - 2) as i32;
            let p0 = plane.get(x, y - 1) as i32;
            let q0 = plane.get(x, y) as i32;
            let q1 = plane.sample(x as isize, y as isize + 1) as i32;
            let (np0, nq0) = filter_pair(p1, p0, q0, q1, a, b, c);
            plane.set(x, y - 1, np0 as u8);
            plane.set(x, y, nq0 as u8);
        }
        y += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plane with a sharp step at x = 8 (a block edge).
    fn step_plane(step: u8) -> Plane {
        let mut p = Plane::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                p.set(x, y, if x < 8 { 100 } else { 100 + step });
            }
        }
        p
    }

    #[test]
    fn small_steps_are_smoothed() {
        let mut p = step_plane(8);
        deblock_plane(&mut p, 30);
        // The edge pixels must have moved toward each other.
        assert!(p.get(7, 5) > 100, "p0 untouched: {}", p.get(7, 5));
        assert!(p.get(8, 5) < 108, "q0 untouched: {}", p.get(8, 5));
    }

    #[test]
    fn large_real_edges_are_preserved() {
        let mut p = step_plane(120);
        let before = p.clone();
        deblock_plane(&mut p, 24);
        assert_eq!(p, before, "a 120-step real edge must not be filtered");
    }

    #[test]
    fn flat_areas_are_untouched() {
        let mut p = Plane::filled(32, 32, 77);
        let before = p.clone();
        deblock_plane(&mut p, 40);
        assert_eq!(p, before);
    }

    #[test]
    fn higher_qp_filters_more() {
        let mut weak = step_plane(16);
        let mut strong = step_plane(16);
        deblock_plane(&mut weak, 10);
        deblock_plane(&mut strong, 44);
        let moved_weak = (weak.get(7, 3) as i32 - 100).abs();
        let moved_strong = (strong.get(7, 3) as i32 - 100).abs();
        assert!(
            moved_strong >= moved_weak,
            "qp 44 should filter at least as hard: {moved_weak} vs {moved_strong}"
        );
    }

    #[test]
    fn deterministic() {
        let mut a = step_plane(10);
        let mut b = step_plane(10);
        deblock_plane(&mut a, 28);
        deblock_plane(&mut b, 28);
        assert_eq!(a, b);
    }
}
