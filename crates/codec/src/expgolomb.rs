//! Exponential-Golomb codes (the `ue(v)`/`se(v)` of H.264).
//!
//! Used directly by the CAVLC-style entropy coder and for header fields.
//! Decoding is clamped: a corrupted prefix cannot make the decoder consume
//! unbounded bits or overflow.

use crate::bitstream::{BitReader, BitWriter};

/// Longest accepted Exp-Golomb prefix when decoding. A genuine encoder
/// never emits more than 32; corrupt data is clamped here.
const MAX_PREFIX: u32 = 32;

/// Writes an unsigned Exp-Golomb code (`ue(v)`).
pub fn write_ue(w: &mut BitWriter, value: u32) {
    let v = value as u64 + 1;
    let bits = 64 - v.leading_zeros();
    for _ in 0..bits - 1 {
        w.put_bit(false);
    }
    for i in (0..bits).rev() {
        w.put_bit((v >> i) & 1 == 1);
    }
}

/// Reads an unsigned Exp-Golomb code; corrupt prefixes are clamped.
pub fn read_ue(r: &mut BitReader<'_>) -> u32 {
    let mut zeros = 0u32;
    while !r.get_bit() {
        zeros += 1;
        if zeros >= MAX_PREFIX {
            // Corrupt stream: pretend the run ended; yields a large value.
            break;
        }
    }
    let mut v: u64 = 1;
    for _ in 0..zeros {
        v = (v << 1) | r.get_bit() as u64;
    }
    (v - 1).min(u32::MAX as u64) as u32
}

/// Writes a signed Exp-Golomb code (`se(v)`), H.264 mapping:
/// `0, 1, -1, 2, -2, …`.
pub fn write_se(w: &mut BitWriter, value: i32) {
    let mapped = if value > 0 {
        (value as u32) * 2 - 1
    } else {
        (-(value as i64) as u32) * 2
    };
    write_ue(w, mapped);
}

/// Reads a signed Exp-Golomb code.
pub fn read_se(r: &mut BitReader<'_>) -> i32 {
    let v = read_ue(r);
    if v % 2 == 1 {
        ((v / 2) + 1) as i32
    } else {
        -((v / 2) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_known_codewords() {
        // Classic table: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
        let mut w = BitWriter::new();
        write_ue(&mut w, 0);
        write_ue(&mut w, 1);
        write_ue(&mut w, 2);
        write_ue(&mut w, 3);
        assert_eq!(w.bit_len(), 1 + 3 + 3 + 5);
        let b = w.finish();
        let mut r = BitReader::new(&b);
        assert_eq!(read_ue(&mut r), 0);
        assert_eq!(read_ue(&mut r), 1);
        assert_eq!(read_ue(&mut r), 2);
        assert_eq!(read_ue(&mut r), 3);
    }

    #[test]
    fn ue_roundtrip_large_values() {
        let values = [0u32, 5, 255, 1 << 16, u32::MAX - 1];
        let mut w = BitWriter::new();
        for &v in &values {
            write_ue(&mut w, v);
        }
        let b = w.finish();
        let mut r = BitReader::new(&b);
        for &v in &values {
            assert_eq!(read_ue(&mut r), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let values = [0i32, 1, -1, 2, -2, 77, -1000, i32::MAX / 4];
        let mut w = BitWriter::new();
        for &v in &values {
            write_se(&mut w, v);
        }
        let b = w.finish();
        let mut r = BitReader::new(&b);
        for &v in &values {
            assert_eq!(read_se(&mut r), v);
        }
    }

    #[test]
    fn corrupt_prefix_terminates() {
        // All zeros: the ue prefix never ends; decode must clamp, not hang.
        let zeros = vec![0u8; 64];
        let mut r = BitReader::new(&zeros);
        let _ = read_ue(&mut r);
        assert!(r.bit_pos() <= 2 * MAX_PREFIX as u64 + 2);
    }
}
