//! Context-adaptive binary arithmetic coding core (CABAC-class).
//!
//! A classic Witten–Neal–Cleary binary arithmetic coder with 12-bit
//! adaptive probability models. This is the property the paper's error
//! analysis (§3) hinges on: symbols occupy *fractional* bits, the model
//! state adapts with every coded bin, and a single flipped bit therefore
//! desynchronises both the interval and the probability contexts for the
//! rest of the frame.
//!
//! The decoder is total: it consumes zero bits past the end of the buffer
//! and never fails, it just produces garbage bins — exactly the behaviour a
//! robust video decoder needs on an approximate substrate.

use crate::bitstream::{BitReader, BitWriter};

const PROB_BITS: u32 = 12;
const PROB_ONE: u32 = 1 << PROB_BITS;
/// Adaptation rate: higher = slower adaptation.
const ADAPT_SHIFT: u32 = 5;

const TOP: u64 = 1 << 32;
const HALF: u64 = TOP / 2;
const QUARTER: u64 = TOP / 4;
const THREE_QUARTERS: u64 = 3 * TOP / 4;
const MASK: u64 = TOP - 1;

/// An adaptive binary probability model (one "context").
///
/// Stores P(bin = 0) in 12-bit fixed point and adapts exponentially toward
/// the observed bins, like CABAC's state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinContext {
    p0: u16,
}

impl Default for BinContext {
    fn default() -> Self {
        Self::new()
    }
}

impl BinContext {
    /// Creates an unbiased context (P(0) = 1/2).
    pub fn new() -> Self {
        BinContext {
            p0: (PROB_ONE / 2) as u16,
        }
    }

    /// Current probability of a zero bin, in 1/4096 units.
    pub fn p0(&self) -> u16 {
        self.p0
    }

    #[inline]
    fn update(&mut self, bin: bool) {
        if bin {
            // A one was observed: decrease P(0).
            self.p0 -= self.p0 >> ADAPT_SHIFT;
        } else {
            self.p0 += ((PROB_ONE - self.p0 as u32) >> ADAPT_SHIFT) as u16;
        }
        // Keep probabilities away from 0/1 so the interval split is valid.
        self.p0 = self.p0.clamp(32, (PROB_ONE - 32) as u16);
    }
}

/// Arithmetic encoder writing to a [`BitWriter`].
#[derive(Debug)]
pub struct ArithEncoder {
    low: u64,
    high: u64,
    pending: u64,
    bins: u64,
    writer: BitWriter,
}

impl Default for ArithEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithEncoder {
    /// Creates a fresh encoder.
    pub fn new() -> Self {
        ArithEncoder {
            low: 0,
            high: MASK,
            pending: 0,
            bins: 0,
            writer: BitWriter::new(),
        }
    }

    /// Number of bins (binary decisions) coded so far, context-coded and
    /// bypass alike — the `codec.arith.bins` observability counter.
    pub fn bins_coded(&self) -> u64 {
        self.bins
    }

    /// Approximate number of bits produced so far (exact up to carry
    /// bookkeeping). Monotone — used to record macroblock bit spans.
    pub fn bit_pos(&self) -> u64 {
        self.writer.bit_len() + self.pending
    }

    #[inline]
    fn emit(&mut self, bit: bool) {
        self.writer.put_bit(bit);
        while self.pending > 0 {
            self.writer.put_bit(!bit);
            self.pending -= 1;
        }
    }

    /// Encodes one bin with an adaptive context.
    pub fn encode(&mut self, ctx: &mut BinContext, bin: bool) {
        let p0 = ctx.p0 as u64;
        self.encode_raw(bin, p0);
        ctx.update(bin);
    }

    /// Encodes one equiprobable ("bypass") bin.
    pub fn encode_bypass(&mut self, bin: bool) {
        self.encode_raw(bin, (PROB_ONE / 2) as u64);
    }

    fn encode_raw(&mut self, bin: bool, p0: u64) {
        self.bins += 1;
        let range = self.high - self.low + 1;
        let split = self.low + ((range * p0) >> PROB_BITS).clamp(1, range - 1) - 1;
        if bin {
            self.low = split + 1;
        } else {
            self.high = split;
        }
        loop {
            if self.high < HALF {
                self.emit(false);
            } else if self.low >= HALF {
                self.emit(true);
                self.low -= HALF;
                self.high -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.pending += 1;
                self.low -= QUARTER;
                self.high -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
        }
    }

    /// Flushes the interval state and returns the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.pending += 1;
        let bit = self.low >= QUARTER;
        self.emit(bit);
        // Pad so the decoder's initial 32-bit fill reads real data.
        self.writer.put_bit(true);
        self.writer.finish()
    }
}

/// Arithmetic decoder reading from a byte slice.
///
/// Mirrors [`ArithEncoder`] exactly when the data is intact; on corrupted
/// or truncated data it keeps producing deterministic (garbage) bins.
#[derive(Debug)]
pub struct ArithDecoder<'a> {
    low: u64,
    high: u64,
    code: u64,
    reader: BitReader<'a>,
}

impl<'a> ArithDecoder<'a> {
    /// Creates a decoder over coded bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        let mut reader = BitReader::new(bytes);
        let mut code = 0u64;
        for _ in 0..32 {
            code = (code << 1) | reader.get_bit() as u64;
        }
        ArithDecoder {
            low: 0,
            high: MASK,
            code,
            reader,
        }
    }

    /// Whether the underlying bit reader has consumed all real input.
    pub fn exhausted(&self) -> bool {
        self.reader.exhausted()
    }

    /// Decodes one bin with an adaptive context.
    pub fn decode(&mut self, ctx: &mut BinContext) -> bool {
        let bin = self.decode_raw(ctx.p0 as u64);
        ctx.update(bin);
        bin
    }

    /// Decodes one bypass bin.
    pub fn decode_bypass(&mut self) -> bool {
        self.decode_raw((PROB_ONE / 2) as u64)
    }

    fn decode_raw(&mut self, p0: u64) -> bool {
        let range = self.high - self.low + 1;
        let split = self.low + ((range * p0) >> PROB_BITS).clamp(1, range - 1) - 1;
        let bin = self.code > split;
        if bin {
            self.low = split + 1;
        } else {
            self.high = split;
        }
        loop {
            if self.high < HALF {
                // Nothing to subtract.
            } else if self.low >= HALF {
                self.low -= HALF;
                self.high -= HALF;
                self.code -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.low -= QUARTER;
                self.high -= QUARTER;
                self.code -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
            self.code = (self.code << 1) | self.reader.get_bit() as u64;
        }
        bin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bits: &[bool], contexts: usize) {
        let mut enc = ArithEncoder::new();
        let mut ctxs = vec![BinContext::new(); contexts];
        for (i, &b) in bits.iter().enumerate() {
            enc.encode(&mut ctxs[i % contexts], b);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        let mut ctxs = vec![BinContext::new(); contexts];
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode(&mut ctxs[i % contexts]), b, "bin {i}");
        }
    }

    #[test]
    fn roundtrip_simple_patterns() {
        roundtrip(&[true, false, true, true, false], 1);
        roundtrip(&vec![false; 500], 1);
        roundtrip(&vec![true; 500], 1);
        let alternating: Vec<bool> = (0..300).map(|i| i % 2 == 0).collect();
        roundtrip(&alternating, 2);
    }

    #[test]
    fn roundtrip_pseudo_random_with_many_contexts() {
        let mut state = 0x12345678u64;
        let bits: Vec<bool> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) & 1 == 1
            })
            .collect();
        roundtrip(&bits, 17);
    }

    #[test]
    fn bypass_roundtrip() {
        let mut enc = ArithEncoder::new();
        let bits = [true, true, false, true, false, false, true];
        for &b in &bits {
            enc.encode_bypass(b);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        for &b in &bits {
            assert_eq!(dec.decode_bypass(), b);
        }
    }

    #[test]
    fn skewed_input_compresses() {
        // 1000 zeros with an adaptive context must come out far below
        // 1000 bits — the whole point of arithmetic coding (paper §2.3.4).
        let mut enc = ArithEncoder::new();
        let mut ctx = BinContext::new();
        for _ in 0..1000 {
            enc.encode(&mut ctx, false);
        }
        let bytes = enc.finish();
        assert!(bytes.len() * 8 < 200, "got {} bits", bytes.len() * 8);
    }

    #[test]
    fn adaptation_tracks_statistics() {
        let mut ctx = BinContext::new();
        for _ in 0..100 {
            ctx.update(false);
        }
        assert!(ctx.p0() > 3800, "p0 = {}", ctx.p0());
        for _ in 0..100 {
            ctx.update(true);
        }
        assert!(ctx.p0() < 300, "p0 = {}", ctx.p0());
    }

    #[test]
    fn truncated_stream_decodes_deterministically() {
        let mut enc = ArithEncoder::new();
        let mut ctx = BinContext::new();
        for i in 0..200 {
            enc.encode(&mut ctx, i % 3 == 0);
        }
        let mut bytes = enc.finish();
        bytes.truncate(bytes.len() / 2);
        // Two decoders over the same truncated data agree bin-for-bin.
        let mut d1 = ArithDecoder::new(&bytes);
        let mut d2 = ArithDecoder::new(&bytes);
        let mut c1 = BinContext::new();
        let mut c2 = BinContext::new();
        for _ in 0..200 {
            assert_eq!(d1.decode(&mut c1), d2.decode(&mut c2));
        }
    }

    #[test]
    fn corrupted_bit_changes_downstream_bins() {
        // A flip early in the buffer must change decoded bins (error
        // propagation through the entropy coder, paper §3).
        let mut enc = ArithEncoder::new();
        let mut ctx = BinContext::new();
        let bits: Vec<bool> = (0..400).map(|i| (i * 7) % 5 == 0).collect();
        for &b in &bits {
            enc.encode(&mut ctx, b);
        }
        let clean = enc.finish();
        let mut dirty = clean.clone();
        dirty[1] ^= 0x10;
        let mut dd = ArithDecoder::new(&dirty);
        let mut cd = BinContext::new();
        let decoded: Vec<bool> = (0..400).map(|_| dd.decode(&mut cd)).collect();
        assert_ne!(decoded, bits);
    }

    #[test]
    fn bit_pos_is_monotone() {
        let mut enc = ArithEncoder::new();
        let mut ctx = BinContext::new();
        let mut last = 0;
        for i in 0..500 {
            enc.encode(&mut ctx, i % 11 == 0);
            let pos = enc.bit_pos();
            assert!(pos >= last);
            last = pos;
        }
    }
}
