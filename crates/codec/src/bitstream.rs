//! MSB-first bit I/O.
//!
//! The decoder side is deliberately *total*: reading past the end of the
//! buffer yields zero bits instead of failing. Approximate storage delivers
//! corrupted payloads, and a corrupted variable-length code routinely asks
//! for more bits than exist; the decoder must keep going deterministically
//! (paper §3 — the entropy decoder drifts out of sync but resynchronises at
//! the next frame).

/// Writes bits MSB-first into a growable byte buffer.
///
/// # Example
///
/// ```
/// use vapp_codec::bitstream::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.put_bit(true);
/// w.put_bits(0b1011, 4);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert!(r.get_bit());
/// assert_eq!(r.get_bits(4), 0b1011);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already placed in the partially-filled last byte (0..8).
    partial_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        if self.partial_bits == 0 {
            self.bytes.len() as u64 * 8
        } else {
            (self.bytes.len() as u64 - 1) * 8 + self.partial_bits as u64
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("buffer is non-empty here");
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Appends the `count` low-order bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "at most 32 bits per call");
        for i in (0..count).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Pads with zero bits to a byte boundary and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice; reads past the end return zeros.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Current bit position (keeps advancing even past the end).
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Whether the reader has consumed all real bits.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.bytes.len() as u64 * 8
    }

    /// Reads one bit; `false` past the end.
    pub fn get_bit(&mut self) -> bool {
        let byte_index = (self.pos / 8) as usize;
        let bit = if byte_index < self.bytes.len() {
            (self.bytes[byte_index] >> (7 - (self.pos % 8))) & 1 == 1
        } else {
            false
        };
        self.pos += 1;
        bit
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn get_bits(&mut self, count: u32) -> u32 {
        assert!(count <= 32, "at most 32 bits per call");
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.get_bit() as u32;
        }
        v
    }
}

/// Flips bit `bit_index` (MSB-first order, matching [`BitWriter`]) in a byte
/// buffer. No-op when the index is out of range.
pub fn flip_bit(bytes: &mut [u8], bit_index: u64) {
    let byte = (bit_index / 8) as usize;
    if byte < bytes.len() {
        bytes[byte] ^= 1 << (7 - (bit_index % 8));
    }
}

/// Reads `n` bits MSB-first starting at bit `bit` into the low bits of
/// the result (bit `bit` lands highest). Bits past the end of the buffer
/// read as zero, bit-for-bit like repeated [`BitReader::get_bit`] calls.
///
/// `n` is capped at 56 so the span plus any bit offset fits one 8-byte
/// window.
///
/// # Panics
///
/// Panics if `n > 56`.
#[inline]
pub fn read_span(bytes: &[u8], bit: u64, n: usize) -> u64 {
    assert!(n <= 56, "span reads are limited to 56 bits");
    if n == 0 {
        return 0;
    }
    let start = (bit / 8) as usize;
    let mut buf = [0u8; 8];
    let tail = bytes.get(start..).unwrap_or(&[]);
    let avail = tail.len().min(8);
    buf[..avail].copy_from_slice(&tail[..avail]);
    let w = u64::from_be_bytes(buf);
    (w << (bit % 8)) >> (64 - n)
}

/// Writes the low `n` bits of `v` MSB-first starting at bit `bit` (the
/// highest of the `n` bits lands at `bit`). Bytes past the end of the
/// buffer are skipped, matching the out-of-range no-op of single-bit
/// writes.
///
/// # Panics
///
/// Panics if `n > 56`.
#[inline]
pub fn write_span(bytes: &mut [u8], bit: u64, n: usize, v: u64) {
    assert!(n <= 56, "span writes are limited to 56 bits");
    if n == 0 {
        return;
    }
    let s = (bit % 8) as u32;
    // Position the span inside a big-endian 8-byte window: bit `bit` at
    // offset `s` from the top. s + n <= 63, so nothing wraps.
    let w = (v << (64 - n)) >> s;
    let mask = (!0u64 << (64 - n)) >> s;
    let start = (bit / 8) as usize;
    let wb = w.to_be_bytes();
    let mb = mask.to_be_bytes();
    for k in 0..8 {
        if mb[k] == 0 {
            continue;
        }
        if let Some(byte) = bytes.get_mut(start + k) {
            *byte = (*byte & !mb[k]) | wb[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xDEAD, 16);
        w.put_bit(true);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 25);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3), 0b101);
        assert_eq!(r.get_bits(16), 0xDEAD);
        assert!(r.get_bit());
        assert_eq!(r.get_bits(5), 0);
    }

    #[test]
    fn reading_past_end_returns_zeros() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8), 0xFF);
        assert_eq!(r.get_bits(32), 0);
        assert!(r.exhausted());
        assert_eq!(r.bit_pos(), 40);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bit(false);
        assert_eq!(w.bit_len(), 1);
        w.put_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.put_bit(true);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn span_io_matches_single_bit_io() {
        // A fixed irregular pattern read/written at every offset and
        // width must agree with the bit-at-a-time reference.
        let bytes: Vec<u8> = (0u8..12).map(|i| i.wrapping_mul(0x3B) ^ 0xA5).collect();
        let bit_at = |b: &[u8], i: u64| {
            let byte = (i / 8) as usize;
            byte < b.len() && (b[byte] >> (7 - (i % 8))) & 1 == 1
        };
        for bit in 0..(bytes.len() as u64 * 8 + 16) {
            for n in [1usize, 7, 8, 9, 31, 48, 56] {
                let got = read_span(&bytes, bit, n);
                let mut want = 0u64;
                for k in 0..n {
                    want = (want << 1) | bit_at(&bytes, bit + k as u64) as u64;
                }
                assert_eq!(got, want, "read bit={bit} n={n}");

                let mut fast = bytes.clone();
                let mut slow = bytes.clone();
                write_span(&mut fast, bit, n, got ^ 0x5A5A_5A5A_5A5A_5A5A);
                let v = got ^ 0x5A5A_5A5A_5A5A_5A5A;
                for k in 0..n {
                    let b = (v >> (n - 1 - k)) & 1 == 1;
                    let i = bit + k as u64;
                    let byte = (i / 8) as usize;
                    if byte < slow.len() {
                        let mask = 1u8 << (7 - (i % 8));
                        if b {
                            slow[byte] |= mask;
                        } else {
                            slow[byte] &= !mask;
                        }
                    }
                }
                assert_eq!(fast, slow, "write bit={bit} n={n}");
            }
        }
    }

    #[test]
    fn flip_bit_is_involutive_and_bounded() {
        let mut b = vec![0u8; 2];
        flip_bit(&mut b, 0);
        assert_eq!(b[0], 0x80);
        flip_bit(&mut b, 0);
        assert_eq!(b[0], 0);
        flip_bit(&mut b, 15);
        assert_eq!(b[1], 0x01);
        flip_bit(&mut b, 1000); // out of range: no-op
        assert_eq!(b, vec![0, 1]);
    }
}
