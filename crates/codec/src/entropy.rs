//! The entropy-coding layer: one symbol API, two coders.
//!
//! H.264 offers two entropy coders (paper §2.3.4): CABAC (context-adaptive
//! binary arithmetic coding — denser, fragile) and CAVLC (variable-length
//! codes — cheaper, more error-tolerant). The encoder and decoder are
//! generic over [`SymbolWriter`] / [`SymbolReader`]; [`CabacWriter`] models
//! the former with per-element adaptive contexts (including
//! neighbour-conditioned context increments), [`CavlcWriter`] the latter
//! with Exp-Golomb codes.
//!
//! Contexts are created fresh per frame (or per slice), which is what
//! resynchronises the entropy decoder at frame boundaries (§3).

use crate::arith::{ArithDecoder, ArithEncoder, BinContext};
use crate::bitstream::{BitReader, BitWriter};
use crate::expgolomb;

/// Syntax-element categories. Each gets its own context set; `inc` (the
/// context increment, derived from neighbouring macroblocks) selects within
/// the set, mirroring CABAC's neighbour-conditioned context modelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Element {
    /// P/B macroblock skip flag (inc: number of non-skipped neighbours).
    Skip,
    /// Intra-vs-inter flag in P/B frames (inc: intra neighbours).
    Intra,
    /// Intra 16x16 prediction mode.
    IntraMode,
    /// Intra partition flag: 16x16 (0) vs 4x4 (1).
    Intra4,
    /// Intra 4x4 prediction mode of one block.
    Intra4Mode,
    /// Inter partition shape.
    PartShape,
    /// 8x8 sub-partition shape.
    SubShape,
    /// B-frame prediction direction (forward/backward/bi).
    PredDir,
    /// Motion-vector difference, x component (inc: neighbour MVD class).
    MvdX,
    /// Motion-vector difference, y component.
    MvdY,
    /// Per-macroblock quantiser delta.
    QpDelta,
    /// Coded-block-pattern bit for one 8x8 (inc: 8x8 index).
    Cbp,
    /// "This 4x4 block has coefficients" flag.
    Blk4,
    /// Significance flag (inc: coefficient position).
    Sig,
    /// Last-significant flag (inc: coefficient position).
    Last,
    /// Coefficient level magnitude.
    Level,
}

impl Element {
    /// (number of context increments, number of context-coded bins).
    fn dims(self) -> (usize, usize) {
        match self {
            Element::Skip => (3, 1),
            Element::Intra => (3, 1),
            Element::IntraMode => (1, 3),
            Element::Intra4 => (1, 1),
            Element::Intra4Mode => (1, 3),
            Element::PartShape => (1, 3),
            Element::SubShape => (1, 3),
            Element::PredDir => (1, 2),
            Element::MvdX | Element::MvdY => (3, 5),
            Element::QpDelta => (1, 3),
            Element::Cbp => (4, 1),
            Element::Blk4 => (4, 1),
            Element::Sig => (15, 1),
            Element::Last => (15, 1),
            Element::Level => (2, 5),
        }
    }

    fn all() -> [Element; 16] {
        [
            Element::Skip,
            Element::Intra,
            Element::IntraMode,
            Element::Intra4,
            Element::Intra4Mode,
            Element::PartShape,
            Element::SubShape,
            Element::PredDir,
            Element::MvdX,
            Element::MvdY,
            Element::QpDelta,
            Element::Cbp,
            Element::Blk4,
            Element::Sig,
            Element::Last,
            Element::Level,
        ]
    }
}

/// Truncated-unary prefix length before switching to the Exp-Golomb escape
/// in `put_uint`/`get_uint` (UEG0 binarisation, as CABAC uses for MVD).
const TU_LIMIT: u32 = 4;
/// Cap on Exp-Golomb escape prefixes when decoding corrupt data.
const MAX_EG_PREFIX: u32 = 32;

/// Context table shared by the CABAC writer and reader; layout must match
/// on both sides.
#[derive(Clone, Debug)]
struct ContextTable {
    ctxs: Vec<BinContext>,
    offsets: Vec<(Element, usize, usize, usize)>, // (el, offset, incs, bins)
}

impl ContextTable {
    fn new() -> Self {
        let mut offsets = Vec::new();
        let mut total = 0;
        for el in Element::all() {
            let (incs, bins) = el.dims();
            offsets.push((el, total, incs, bins));
            total += incs * bins;
        }
        ContextTable {
            ctxs: vec![BinContext::new(); total],
            offsets,
        }
    }

    #[inline]
    fn index(&self, el: Element, inc: usize, bin: usize) -> usize {
        let &(_, offset, incs, bins) = self
            .offsets
            .iter()
            .find(|&&(e, ..)| e == el)
            .expect("all elements registered");
        offset + inc.min(incs - 1) * bins + bin.min(bins - 1)
    }

    #[inline]
    fn ctx_mut(&mut self, el: Element, inc: usize, bin: usize) -> &mut BinContext {
        let i = self.index(el, inc, bin);
        &mut self.ctxs[i]
    }
}

/// Writes syntax symbols into a coded payload.
pub trait SymbolWriter {
    /// Writes a flag for element `el` with context increment `inc`.
    fn put_flag(&mut self, el: Element, inc: usize, bit: bool);
    /// Writes an unsigned value.
    fn put_uint(&mut self, el: Element, inc: usize, value: u32);
    /// Writes a signed value.
    fn put_sint(&mut self, el: Element, inc: usize, value: i32) {
        self.put_uint(el, inc, value.unsigned_abs());
        if value != 0 {
            self.put_sign(value < 0);
        }
    }
    /// Writes a raw sign/bypass bit.
    fn put_sign(&mut self, negative: bool);
    /// Bits produced so far (monotone; used for macroblock bit spans).
    fn bit_pos(&self) -> u64;
    /// Binary decisions coded so far (CABAC bins, or emitted VLC bits) —
    /// feeds the `codec.arith.bins` observability counter.
    fn bins_coded(&self) -> u64;
    /// Flushes and returns the payload bytes.
    fn finish(self) -> Vec<u8>;
}

/// Reads syntax symbols from a coded payload. Total: corrupt or truncated
/// data yields deterministic garbage values, never an error.
pub trait SymbolReader {
    /// Reads a flag.
    fn get_flag(&mut self, el: Element, inc: usize) -> bool;
    /// Reads an unsigned value (unclamped; caller clamps to its domain).
    fn get_uint(&mut self, el: Element, inc: usize) -> u32;
    /// Reads a signed value.
    fn get_sint(&mut self, el: Element, inc: usize) -> i32 {
        let mag = self.get_uint(el, inc);
        if mag == 0 {
            return 0;
        }
        let neg = self.get_sign();
        let v = mag.min(i32::MAX as u32) as i32;
        if neg {
            -v
        } else {
            v
        }
    }
    /// Reads a raw sign/bypass bit.
    fn get_sign(&mut self) -> bool;
    /// Whether all real input bits have been consumed.
    fn exhausted(&self) -> bool;
}

// ---------------------------------------------------------------- CABAC --

/// CABAC-style writer: adaptive binary arithmetic coding with per-element
/// contexts.
#[derive(Debug)]
pub struct CabacWriter {
    enc: ArithEncoder,
    table: ContextTable,
}

impl Default for CabacWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl CabacWriter {
    /// Creates a writer with fresh (unbiased) contexts.
    pub fn new() -> Self {
        CabacWriter {
            enc: ArithEncoder::new(),
            table: ContextTable::new(),
        }
    }

    fn put_ueg(&mut self, el: Element, inc: usize, value: u32) {
        // Truncated-unary prefix, context coded per bin.
        let prefix = value.min(TU_LIMIT);
        for bin in 0..prefix {
            let ctx = self.table.ctx_mut(el, inc, bin as usize);
            self.enc.encode(ctx, true);
        }
        if prefix < TU_LIMIT {
            let ctx = self.table.ctx_mut(el, inc, prefix as usize);
            self.enc.encode(ctx, false);
            return;
        }
        // Exp-Golomb order-0 escape in bypass bins.
        let rest = (value - TU_LIMIT) as u64 + 1;
        let n = 64 - rest.leading_zeros();
        for _ in 0..n - 1 {
            self.enc.encode_bypass(true);
        }
        self.enc.encode_bypass(false);
        for i in (0..n - 1).rev() {
            self.enc.encode_bypass((rest >> i) & 1 == 1);
        }
    }
}

impl SymbolWriter for CabacWriter {
    fn put_flag(&mut self, el: Element, inc: usize, bit: bool) {
        let ctx = self.table.ctx_mut(el, inc, 0);
        self.enc.encode(ctx, bit);
    }

    fn put_uint(&mut self, el: Element, inc: usize, value: u32) {
        self.put_ueg(el, inc, value);
    }

    fn put_sign(&mut self, negative: bool) {
        self.enc.encode_bypass(negative);
    }

    fn bit_pos(&self) -> u64 {
        self.enc.bit_pos()
    }

    fn bins_coded(&self) -> u64 {
        self.enc.bins_coded()
    }

    fn finish(self) -> Vec<u8> {
        self.enc.finish()
    }
}

/// CABAC-style reader.
#[derive(Debug)]
pub struct CabacReader<'a> {
    dec: ArithDecoder<'a>,
    table: ContextTable,
}

impl<'a> CabacReader<'a> {
    /// Creates a reader with fresh contexts over payload bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        CabacReader {
            dec: ArithDecoder::new(bytes),
            table: ContextTable::new(),
        }
    }

    fn get_ueg(&mut self, el: Element, inc: usize) -> u32 {
        let mut prefix = 0u32;
        while prefix < TU_LIMIT {
            let ctx = self.table.ctx_mut(el, inc, prefix as usize);
            if !self.dec.decode(ctx) {
                return prefix;
            }
            prefix += 1;
        }
        // Escape: Exp-Golomb order 0 in bypass.
        let mut ones = 0u32;
        while self.dec.decode_bypass() {
            ones += 1;
            if ones >= MAX_EG_PREFIX {
                break;
            }
        }
        let mut rest: u64 = 1;
        for _ in 0..ones {
            rest = (rest << 1) | self.dec.decode_bypass() as u64;
        }
        (TU_LIMIT as u64 + rest - 1).min(u32::MAX as u64) as u32
    }
}

impl<'a> SymbolReader for CabacReader<'a> {
    fn get_flag(&mut self, el: Element, inc: usize) -> bool {
        let i = self.table.index(el, inc, 0);
        self.dec.decode(&mut self.table.ctxs[i])
    }

    fn get_uint(&mut self, el: Element, inc: usize) -> u32 {
        self.get_ueg(el, inc)
    }

    fn get_sign(&mut self) -> bool {
        self.dec.decode_bypass()
    }

    fn exhausted(&self) -> bool {
        self.dec.exhausted()
    }
}

// ---------------------------------------------------------------- CAVLC --

/// CAVLC-style writer: plain bits and Exp-Golomb codes (no adaptive
/// contexts, integral code lengths, better error resilience).
#[derive(Debug, Default)]
pub struct CavlcWriter {
    writer: BitWriter,
}

impl CavlcWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SymbolWriter for CavlcWriter {
    fn put_flag(&mut self, _el: Element, _inc: usize, bit: bool) {
        self.writer.put_bit(bit);
    }

    fn put_uint(&mut self, _el: Element, _inc: usize, value: u32) {
        expgolomb::write_ue(&mut self.writer, value);
    }

    fn put_sign(&mut self, negative: bool) {
        self.writer.put_bit(negative);
    }

    fn bit_pos(&self) -> u64 {
        self.writer.bit_len()
    }

    fn bins_coded(&self) -> u64 {
        // Every emitted VLC bit is one binary decision.
        self.writer.bit_len()
    }

    fn finish(self) -> Vec<u8> {
        self.writer.finish()
    }
}

/// CAVLC-style reader.
#[derive(Debug)]
pub struct CavlcReader<'a> {
    reader: BitReader<'a>,
}

impl<'a> CavlcReader<'a> {
    /// Creates a reader over payload bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        CavlcReader {
            reader: BitReader::new(bytes),
        }
    }
}

impl<'a> SymbolReader for CavlcReader<'a> {
    fn get_flag(&mut self, _el: Element, _inc: usize) -> bool {
        self.reader.get_bit()
    }

    fn get_uint(&mut self, _el: Element, _inc: usize) -> u32 {
        expgolomb::read_ue(&mut self.reader)
    }

    fn get_sign(&mut self) -> bool {
        self.reader.get_bit()
    }

    fn exhausted(&self) -> bool {
        self.reader.exhausted()
    }
}

/// Which entropy coder a stream uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EntropyMode {
    /// Context-adaptive binary arithmetic coding (denser, error-fragile).
    #[default]
    Cabac,
    /// Variable-length (Exp-Golomb) coding (cheaper, error-tolerant).
    Cavlc,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbol_roundtrip<W, FR>(mut w: W, mk_reader: FR)
    where
        W: SymbolWriter,
        FR: FnOnce(Vec<u8>) -> Box<dyn FnMut(&mut dyn FnMut(&mut dyn SymbolReader))>,
    {
        let script: Vec<(Element, usize, i64, bool)> = vec![
            (Element::Skip, 0, 1, true),
            (Element::Skip, 2, 0, true),
            (Element::MvdX, 1, -17, false),
            (Element::MvdY, 0, 3, false),
            (Element::Level, 0, 255, false),
            (Element::QpDelta, 0, -2, false),
            (Element::Cbp, 3, 1, true),
            (Element::Sig, 7, 0, true),
            (Element::MvdX, 2, 1000, false),
        ];
        for &(el, inc, v, is_flag) in &script {
            if is_flag {
                w.put_flag(el, inc, v != 0);
            } else {
                w.put_sint(el, inc, v as i32);
            }
        }
        let bytes = w.finish();
        let mut run = mk_reader(bytes);
        run(&mut |r: &mut dyn SymbolReader| {
            for &(el, inc, v, is_flag) in &script {
                if is_flag {
                    assert_eq!(r.get_flag(el, inc), v != 0, "{el:?}");
                } else {
                    assert_eq!(r.get_sint(el, inc), v as i32, "{el:?}");
                }
            }
        });
    }

    #[test]
    fn cabac_symbol_roundtrip() {
        symbol_roundtrip(CabacWriter::new(), |bytes| {
            Box::new(move |f| {
                let mut r = CabacReader::new(&bytes);
                f(&mut r);
            })
        });
    }

    #[test]
    fn cavlc_symbol_roundtrip() {
        symbol_roundtrip(CavlcWriter::new(), |bytes| {
            Box::new(move |f| {
                let mut r = CavlcReader::new(&bytes);
                f(&mut r);
            })
        });
    }

    #[test]
    fn cabac_uint_roundtrip_wide_range() {
        let values = [0u32, 1, 2, 3, 4, 5, 9, 20, 100, 5000, 1 << 20];
        let mut w = CabacWriter::new();
        for &v in &values {
            w.put_uint(Element::Level, 1, v);
        }
        let bytes = w.finish();
        let mut r = CabacReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_uint(Element::Level, 1), v);
        }
    }

    #[test]
    fn cabac_learns_and_beats_cavlc_on_skewed_flags() {
        // 2000 mostly-false skip flags: CABAC's adaptive contexts should
        // compress far below CAVLC's one-bit-per-flag floor (paper: CABAC
        // gives up to 15% better compression).
        let flags: Vec<bool> = (0..2000).map(|i| i % 50 == 0).collect();
        let mut cw = CabacWriter::new();
        let mut vw = CavlcWriter::new();
        for &f in &flags {
            cw.put_flag(Element::Skip, 0, f);
            vw.put_flag(Element::Skip, 0, f);
        }
        let cl = cw.finish().len();
        let vl = vw.finish().len();
        assert!(cl * 2 < vl, "cabac {cl}B vs cavlc {vl}B");
    }

    #[test]
    fn context_increments_are_independent() {
        // Different `inc` values must use distinct adaptive state: train
        // inc 0 toward ones, inc 2 toward zeros, and verify both decode.
        let mut w = CabacWriter::new();
        for _ in 0..100 {
            w.put_flag(Element::Intra, 0, true);
            w.put_flag(Element::Intra, 2, false);
        }
        let bytes = w.finish();
        let mut r = CabacReader::new(&bytes);
        for _ in 0..100 {
            assert!(r.get_flag(Element::Intra, 0));
            assert!(!r.get_flag(Element::Intra, 2));
        }
    }

    #[test]
    fn out_of_range_inc_is_clamped_not_panicking() {
        let mut w = CabacWriter::new();
        w.put_flag(Element::Skip, 99, true);
        let bytes = w.finish();
        let mut r = CabacReader::new(&bytes);
        assert!(r.get_flag(Element::Skip, 99));
    }

    #[test]
    fn corrupt_cabac_payload_reads_totally() {
        let mut w = CabacWriter::new();
        for i in 0..300 {
            w.put_sint(Element::MvdX, i % 3, (i as i32 % 7) - 3);
        }
        let mut bytes = w.finish();
        for b in bytes.iter_mut() {
            *b ^= 0xA5;
        }
        let mut r = CabacReader::new(&bytes);
        for i in 0..300 {
            let _ = r.get_sint(Element::MvdX, i % 3); // must not panic/hang
        }
    }
}
