//! Common codec types: frame types, motion vectors, partitions.

/// Coded frame type (paper §2.3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Self-contained (intra-only) frame; resets error propagation.
    I,
    /// Predicted from one earlier anchor frame.
    P,
    /// Bi-predicted from the surrounding anchors; never referenced here
    /// (the paper's "no B-references" flag is this codec's default).
    B,
}

impl FrameType {
    /// Stable numeric tag for header serialisation.
    pub fn to_tag(self) -> u8 {
        match self {
            FrameType::I => 0,
            FrameType::P => 1,
            FrameType::B => 2,
        }
    }

    /// Parses a header tag, clamping unknown values to `I` (the safest
    /// interpretation: intra frames reference nothing).
    pub fn from_tag(tag: u8) -> Self {
        match tag {
            1 => FrameType::P,
            2 => FrameType::B,
            _ => FrameType::I,
        }
    }
}

/// An integer-pel motion vector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct MotionVector {
    /// Horizontal displacement in pixels.
    pub x: i16,
    /// Vertical displacement in pixels.
    pub y: i16,
}

impl MotionVector {
    /// Zero motion.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Creates a motion vector.
    pub fn new(x: i16, y: i16) -> Self {
        MotionVector { x, y }
    }
}

/// Componentwise median of three motion vectors — the H.264 motion-vector
/// predictor (paper Fig. 1: MB D's vector is predicted as the median of
/// A, B and C; only the differences Δx, Δy are coded).
pub fn median_mv(a: MotionVector, b: MotionVector, c: MotionVector) -> MotionVector {
    fn med(a: i16, b: i16, c: i16) -> i16 {
        a.max(b).min(a.min(b).max(c))
    }
    MotionVector::new(med(a.x, b.x, c.x), med(a.y, b.y, c.y))
}

/// Predicts a motion vector from the neighbours (left A, above B,
/// above-right C), following the simplified H.264 rule: unavailable
/// neighbours count as zero, and a single available neighbour is used
/// directly.
pub fn predict_mv(
    left: Option<MotionVector>,
    above: Option<MotionVector>,
    above_right: Option<MotionVector>,
) -> MotionVector {
    let avail = [left, above, above_right];
    let n = avail.iter().filter(|m| m.is_some()).count();
    if n == 1 {
        return avail.iter().flatten().next().copied().unwrap_or_default();
    }
    median_mv(
        left.unwrap_or_default(),
        above.unwrap_or_default(),
        above_right.unwrap_or_default(),
    )
}

/// Macroblock-level inter partition shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartShape {
    /// One 16x16 partition.
    P16x16,
    /// Two 16x8 partitions.
    P16x8,
    /// Two 8x16 partitions.
    P8x16,
    /// Four 8x8 quadrants, each with its own sub-shape.
    P8x8,
}

impl PartShape {
    /// Stable index for entropy coding.
    pub fn to_index(self) -> u32 {
        match self {
            PartShape::P16x16 => 0,
            PartShape::P16x8 => 1,
            PartShape::P8x16 => 2,
            PartShape::P8x8 => 3,
        }
    }

    /// Parses an index, clamping corrupt values.
    pub fn from_index(i: u32) -> Self {
        match i {
            0 => PartShape::P16x16,
            1 => PartShape::P16x8,
            2 => PartShape::P8x16,
            _ => PartShape::P8x8,
        }
    }
}

/// Sub-partition shape of one 8x8 quadrant (paper §4.1 models all of
/// 16x8, 8x16, 8x8, 4x8, 8x4 and 4x4 compensation units).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SubShape {
    /// One 8x8 block.
    S8x8,
    /// Two 8x4 blocks.
    S8x4,
    /// Two 4x8 blocks.
    S4x8,
    /// Four 4x4 blocks.
    S4x4,
}

impl SubShape {
    /// Stable index for entropy coding.
    pub fn to_index(self) -> u32 {
        match self {
            SubShape::S8x8 => 0,
            SubShape::S8x4 => 1,
            SubShape::S4x8 => 2,
            SubShape::S4x4 => 3,
        }
    }

    /// Parses an index, clamping corrupt values.
    pub fn from_index(i: u32) -> Self {
        match i {
            0 => SubShape::S8x8,
            1 => SubShape::S8x4,
            2 => SubShape::S4x8,
            _ => SubShape::S4x4,
        }
    }
}

/// The full partition layout of an inter macroblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PartitionLayout {
    /// Top-level shape.
    pub shape: PartShape,
    /// Sub-shapes of the four 8x8 quadrants (meaningful for `P8x8` only).
    pub subs: [SubShape; 4],
}

/// Geometry of one prediction block within a macroblock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct BlockGeom {
    /// Offset within the macroblock.
    pub dx: usize,
    /// Offset within the macroblock.
    pub dy: usize,
    /// Block width.
    pub w: usize,
    /// Block height.
    pub h: usize,
}

/// The prediction blocks of one partition layout, inline (no allocation).
///
/// A macroblock has at most 16 blocks (four quadrants of four 4x4 blocks),
/// so the list fits a fixed array; [`PartitionLayout::blocks`] is called in
/// the encoder's per-candidate mode-decision loop, where a heap `Vec` per
/// call was measurable. Derefs to a slice, so iteration and indexing read
/// like before.
#[derive(Clone, Copy, Debug)]
pub struct BlockList {
    blocks: [BlockGeom; 16],
    len: usize,
}

impl BlockList {
    fn new() -> Self {
        BlockList {
            blocks: [BlockGeom::default(); 16],
            len: 0,
        }
    }

    fn push(&mut self, b: BlockGeom) {
        self.blocks[self.len] = b;
        self.len += 1;
    }

    /// The blocks as a slice (what [`std::ops::Deref`] also yields).
    pub fn as_slice(&self) -> &[BlockGeom] {
        &self.blocks[..self.len]
    }
}

impl std::ops::Deref for BlockList {
    type Target = [BlockGeom];

    fn deref(&self) -> &[BlockGeom] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a BlockList {
    type Item = &'a BlockGeom;
    type IntoIter = std::slice::Iter<'a, BlockGeom>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartitionLayout {
    /// A single 16x16 partition.
    pub fn whole() -> Self {
        PartitionLayout {
            shape: PartShape::P16x16,
            subs: [SubShape::S8x8; 4],
        }
    }

    /// Lists the prediction blocks of this layout in coding order.
    pub fn blocks(&self) -> BlockList {
        let b = |dx, dy, w, h| BlockGeom { dx, dy, w, h };
        let mut out = BlockList::new();
        match self.shape {
            PartShape::P16x16 => out.push(b(0, 0, 16, 16)),
            PartShape::P16x8 => {
                out.push(b(0, 0, 16, 8));
                out.push(b(0, 8, 16, 8));
            }
            PartShape::P8x16 => {
                out.push(b(0, 0, 8, 16));
                out.push(b(8, 0, 8, 16));
            }
            PartShape::P8x8 => {
                for (q, sub) in self.subs.iter().enumerate() {
                    let qx = (q % 2) * 8;
                    let qy = (q / 2) * 8;
                    match sub {
                        SubShape::S8x8 => out.push(b(qx, qy, 8, 8)),
                        SubShape::S8x4 => {
                            out.push(b(qx, qy, 8, 4));
                            out.push(b(qx, qy + 4, 8, 4));
                        }
                        SubShape::S4x8 => {
                            out.push(b(qx, qy, 4, 8));
                            out.push(b(qx + 4, qy, 4, 8));
                        }
                        SubShape::S4x4 => {
                            for sy in 0..2 {
                                for sx in 0..2 {
                                    out.push(b(qx + sx * 4, qy + sy * 4, 4, 4));
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Prediction direction for one B-frame block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredDir {
    /// From the previous anchor.
    Forward,
    /// From the next anchor.
    Backward,
    /// Average of both.
    Bi,
}

impl PredDir {
    /// Stable index for entropy coding.
    pub fn to_index(self) -> u32 {
        match self {
            PredDir::Forward => 0,
            PredDir::Backward => 1,
            PredDir::Bi => 2,
        }
    }

    /// Parses an index, clamping corrupt values.
    pub fn from_index(i: u32) -> Self {
        match i {
            0 => PredDir::Forward,
            1 => PredDir::Backward,
            _ => PredDir::Bi,
        }
    }
}

/// Intra 16x16 prediction mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntraMode {
    /// Mean of the available border pixels (128 when none).
    Dc,
    /// Extend the row above downward.
    Vertical,
    /// Extend the column to the left rightward.
    Horizontal,
    /// First-order plane fit of the borders.
    Plane,
}

impl IntraMode {
    /// All modes, in coding-index order.
    pub const ALL: [IntraMode; 4] = [
        IntraMode::Dc,
        IntraMode::Vertical,
        IntraMode::Horizontal,
        IntraMode::Plane,
    ];

    /// Stable index for entropy coding.
    pub fn to_index(self) -> u32 {
        match self {
            IntraMode::Dc => 0,
            IntraMode::Vertical => 1,
            IntraMode::Horizontal => 2,
            IntraMode::Plane => 3,
        }
    }

    /// Parses an index, clamping corrupt values.
    pub fn from_index(i: u32) -> Self {
        match i {
            1 => IntraMode::Vertical,
            2 => IntraMode::Horizontal,
            3 => IntraMode::Plane,
            _ => IntraMode::Dc,
        }
    }
}

/// Intra 4x4 prediction mode (a practical subset of H.264's nine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intra4Mode {
    /// Mean of the available border pixels.
    Dc,
    /// Extend the row above downward.
    Vertical,
    /// Extend the column to the left rightward.
    Horizontal,
    /// Diagonal down-left extrapolation of the row above.
    DiagDownLeft,
    /// Diagonal down-right extrapolation of the corner, row and column.
    DiagDownRight,
}

impl Intra4Mode {
    /// All modes, in coding-index order.
    pub const ALL: [Intra4Mode; 5] = [
        Intra4Mode::Dc,
        Intra4Mode::Vertical,
        Intra4Mode::Horizontal,
        Intra4Mode::DiagDownLeft,
        Intra4Mode::DiagDownRight,
    ];

    /// Stable index for entropy coding.
    pub fn to_index(self) -> u32 {
        match self {
            Intra4Mode::Dc => 0,
            Intra4Mode::Vertical => 1,
            Intra4Mode::Horizontal => 2,
            Intra4Mode::DiagDownLeft => 3,
            Intra4Mode::DiagDownRight => 4,
        }
    }

    /// Parses an index, clamping corrupt values to DC.
    pub fn from_index(i: u32) -> Self {
        *Intra4Mode::ALL.get(i as usize).unwrap_or(&Intra4Mode::Dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_mv_examples() {
        let m = median_mv(
            MotionVector::new(1, 5),
            MotionVector::new(3, -2),
            MotionVector::new(2, 0),
        );
        assert_eq!(m, MotionVector::new(2, 0));
    }

    #[test]
    fn predict_mv_single_neighbor_used_directly() {
        let only = MotionVector::new(7, -3);
        assert_eq!(predict_mv(Some(only), None, None), only);
        assert_eq!(predict_mv(None, Some(only), None), only);
    }

    #[test]
    fn predict_mv_median_with_missing_as_zero() {
        let p = predict_mv(
            Some(MotionVector::new(4, 4)),
            Some(MotionVector::new(8, 8)),
            None,
        );
        assert_eq!(p, MotionVector::new(4, 4)); // median(4,8,0) = 4
        assert_eq!(predict_mv(None, None, None), MotionVector::ZERO);
    }

    #[test]
    fn partition_blocks_tile_the_macroblock() {
        let layouts = [
            PartitionLayout::whole(),
            PartitionLayout {
                shape: PartShape::P16x8,
                subs: [SubShape::S8x8; 4],
            },
            PartitionLayout {
                shape: PartShape::P8x16,
                subs: [SubShape::S8x8; 4],
            },
            PartitionLayout {
                shape: PartShape::P8x8,
                subs: [
                    SubShape::S8x8,
                    SubShape::S8x4,
                    SubShape::S4x8,
                    SubShape::S4x4,
                ],
            },
        ];
        #[allow(clippy::needless_range_loop)] // (x, y) pixel coordinates
        for layout in layouts {
            let mut covered = [[false; 16]; 16];
            for b in &layout.blocks() {
                for y in b.dy..b.dy + b.h {
                    for x in b.dx..b.dx + b.w {
                        assert!(!covered[y][x], "{layout:?} overlaps at ({x},{y})");
                        covered[y][x] = true;
                    }
                }
            }
            assert!(
                covered.iter().all(|row| row.iter().all(|&c| c)),
                "{layout:?} leaves holes"
            );
        }
    }

    #[test]
    fn all_sub_shapes_supported() {
        let layout = PartitionLayout {
            shape: PartShape::P8x8,
            subs: [SubShape::S4x4; 4],
        };
        assert_eq!(layout.blocks().len(), 16);
    }

    #[test]
    fn index_roundtrips_and_clamping() {
        for s in [
            PartShape::P16x16,
            PartShape::P16x8,
            PartShape::P8x16,
            PartShape::P8x8,
        ] {
            assert_eq!(PartShape::from_index(s.to_index()), s);
        }
        assert_eq!(PartShape::from_index(999), PartShape::P8x8);
        for s in [
            SubShape::S8x8,
            SubShape::S8x4,
            SubShape::S4x8,
            SubShape::S4x4,
        ] {
            assert_eq!(SubShape::from_index(s.to_index()), s);
        }
        for d in [PredDir::Forward, PredDir::Backward, PredDir::Bi] {
            assert_eq!(PredDir::from_index(d.to_index()), d);
        }
        for m in IntraMode::ALL {
            assert_eq!(IntraMode::from_index(m.to_index()), m);
        }
        assert_eq!(IntraMode::from_index(77), IntraMode::Dc);
        for m in Intra4Mode::ALL {
            assert_eq!(Intra4Mode::from_index(m.to_index()), m);
        }
        assert_eq!(Intra4Mode::from_index(99), Intra4Mode::Dc);
        for t in [FrameType::I, FrameType::P, FrameType::B] {
            assert_eq!(FrameType::from_tag(t.to_tag()), t);
        }
    }
}
