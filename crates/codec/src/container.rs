//! On-disk container format for encoded videos.
//!
//! A complete serialisation of [`EncodedVideo`] — stream header, frame
//! headers, payloads — so videos can be written to files, shipped between
//! processes, or placed byte-for-byte onto a storage device. The layout
//! keeps headers contiguous and *in front of* the payloads, mirroring how
//! the approximate store separates precise from approximable bits.
//!
//! ```text
//! [stream header][frame count: u32]
//! per frame: [header length: u32][frame header][payload length: u32]
//! then all payloads, back to back, in coding order
//! ```

use crate::syntax::{EncodedFrame, EncodedVideo, FrameHeader, ParseHeaderError, StreamHeader};

/// Errors from container deserialisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseContainerError {
    /// The byte stream ended before the declared structures.
    Truncated,
    /// An embedded header failed to parse.
    Header(ParseHeaderError),
    /// A declared size is inconsistent with the buffer.
    InvalidLength,
}

impl std::fmt::Display for ParseContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseContainerError::Truncated => write!(f, "container truncated"),
            ParseContainerError::Header(e) => write!(f, "bad embedded header: {e}"),
            ParseContainerError::InvalidLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for ParseContainerError {}

impl From<ParseHeaderError> for ParseContainerError {
    fn from(e: ParseHeaderError) -> Self {
        ParseContainerError::Header(e)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseContainerError> {
        if self.pos + n > self.bytes.len() {
            return Err(ParseContainerError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_u32(&mut self) -> Result<u32, ParseContainerError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }
}

impl EncodedVideo {
    /// Serialises the whole coded video into one byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let sh = self.header.to_bytes();
        out.extend_from_slice(&(sh.len() as u32).to_be_bytes());
        out.extend_from_slice(&sh);
        out.extend_from_slice(&(self.frames.len() as u32).to_be_bytes());
        for f in &self.frames {
            let fh = f.header.to_bytes();
            out.extend_from_slice(&(fh.len() as u32).to_be_bytes());
            out.extend_from_slice(&fh);
            out.extend_from_slice(&(f.payload.len() as u32).to_be_bytes());
        }
        for f in &self.frames {
            out.extend_from_slice(&f.payload);
        }
        out
    }

    /// Parses a serialised coded video.
    ///
    /// # Errors
    ///
    /// Returns [`ParseContainerError`] for truncated or inconsistent
    /// buffers — this is the *precise* part of storage; corruption here is
    /// a hard error, unlike payload corruption which the decoder absorbs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseContainerError> {
        let mut c = Cursor { bytes, pos: 0 };
        let sh_len = c.take_u32()? as usize;
        if sh_len > 1024 {
            return Err(ParseContainerError::InvalidLength);
        }
        let header = StreamHeader::from_bytes(c.take(sh_len)?)?;
        let count = c.take_u32()? as usize;
        if count > 10_000_000 {
            return Err(ParseContainerError::InvalidLength);
        }
        let mut metas = Vec::with_capacity(count);
        for _ in 0..count {
            let fh_len = c.take_u32()? as usize;
            if fh_len > 1 << 20 {
                return Err(ParseContainerError::InvalidLength);
            }
            let fh = FrameHeader::from_bytes(c.take(fh_len)?)?;
            let payload_len = c.take_u32()? as usize;
            metas.push((fh, payload_len));
        }
        let mut frames = Vec::with_capacity(count);
        for (header, payload_len) in metas {
            let payload = c.take(payload_len)?.to_vec();
            frames.push(EncodedFrame { header, payload });
        }
        Ok(EncodedVideo { header, frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use vapp_media::{Frame, Video};

    fn sample_stream() -> EncodedVideo {
        let mut v = Video::new(48, 32, 25.0);
        for t in 0..5 {
            let mut f = Frame::new(48, 32);
            for y in 0..32 {
                for x in 0..48 {
                    f.plane_mut().set(x, y, ((x + y * 3 + t * 11) % 256) as u8);
                }
            }
            v.push(f);
        }
        Encoder::new(EncoderConfig {
            keyint: 3,
            bframes: 1,
            ..Default::default()
        })
        .encode(&v)
        .stream
    }

    #[test]
    fn container_roundtrip() {
        let stream = sample_stream();
        let bytes = stream.to_bytes();
        let parsed = EncodedVideo::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, stream);
        // And it still decodes identically.
        assert_eq!(
            crate::decoder::decode(&parsed),
            crate::decoder::decode(&stream)
        );
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_stream().to_bytes();
        for cut in [0usize, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            let r = EncodedVideo::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_magic_is_detected() {
        let mut bytes = sample_stream().to_bytes();
        bytes[4] ^= 0xFF; // first byte of the stream header
        assert!(matches!(
            EncodedVideo::from_bytes(&bytes),
            Err(ParseContainerError::Header(_))
        ));
    }

    #[test]
    fn absurd_lengths_are_rejected() {
        let mut bytes = sample_stream().to_bytes();
        // Claim a gigantic stream-header length.
        bytes[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            EncodedVideo::from_bytes(&bytes),
            Err(ParseContainerError::InvalidLength)
        );
    }

    #[test]
    fn payload_corruption_survives_the_container() {
        // The container carries corrupt payloads untouched — approximate
        // storage corrupts payload bytes, and the decoder absorbs them.
        let stream = sample_stream();
        let mut bytes = stream.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        let parsed = EncodedVideo::from_bytes(&bytes).unwrap();
        assert_ne!(parsed, stream);
        let _ = crate::decoder::decode(&parsed); // must not panic
    }
}
