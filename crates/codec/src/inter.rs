//! Inter prediction: motion estimation and compensation.
//!
//! Integer-pel block matching with a full search around the predicted
//! vector, per-partition refinement, and bi-prediction for B frames. The
//! referenced pixel rectangles double as the temporal compensation
//! dependencies VideoApp records (paper §4.1).

use crate::types::MotionVector;
use vapp_media::Plane;

/// Hard bound on motion-vector components (also the decoder's clamp for
/// corrupt data).
pub const MV_LIMIT: i16 = 1 << 12;

/// Result of a block motion search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchResult {
    /// Best motion vector found.
    pub mv: MotionVector,
    /// Its sum of absolute differences.
    pub sad: u64,
}

/// Full search in a `±range` window around `center` for the `w x h` block
/// of `cur` at `(x, y)`, matching against `reference`.
///
/// Ties break toward the vector closest to `center` (cheaper to code).
#[allow(clippy::too_many_arguments)] // block geometry: x, y, w, h + search window
pub fn motion_search(
    cur: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    center: MotionVector,
    range: i16,
) -> SearchResult {
    let mut best = SearchResult {
        mv: center,
        sad: u64::MAX,
    };
    let mut best_dist = i32::MAX;
    for dy in -range..=range {
        for dx in -range..=range {
            let mv = MotionVector::new(
                (center.x + dx).clamp(-MV_LIMIT, MV_LIMIT),
                (center.y + dy).clamp(-MV_LIMIT, MV_LIMIT),
            );
            let sad = cur.sad(
                x,
                y,
                w,
                h,
                reference,
                x as isize + mv.x as isize,
                y as isize + mv.y as isize,
            );
            let dist =
                (mv.x as i32 - center.x as i32).abs() + (mv.y as i32 - center.y as i32).abs();
            if sad < best.sad || (sad == best.sad && dist < best_dist) {
                best = SearchResult { mv, sad };
                best_dist = dist;
            }
        }
    }
    best
}

/// Motion-compensates a `w x h` block: copies the block at
/// `(x + mv.x, y + mv.y)` from the reference (clamped at borders).
pub fn mc_block(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
) -> Vec<u8> {
    let mut out = vec![0u8; w * h];
    reference.copy_block(
        x as isize + mv.x as isize,
        y as isize + mv.y as isize,
        w,
        h,
        &mut out,
    );
    out
}

/// Motion-compensates a block with **half-pel** precision: `mv` is in
/// half-pel units; fractional positions are bilinearly interpolated
/// (H.264 uses a 6-tap filter for luma half-pel; bilinear preserves the
/// dependence structure at a fraction of the complexity).
pub fn mc_block_halfpel(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
) -> Vec<u8> {
    let bx = x as isize * 2 + mv.x as isize;
    let by = y as isize * 2 + mv.y as isize;
    let ix = bx.div_euclid(2);
    let iy = by.div_euclid(2);
    let fx = bx.rem_euclid(2) as u16;
    let fy = by.rem_euclid(2) as u16;
    let mut out = vec![0u8; w * h];
    for oy in 0..h {
        for ox in 0..w {
            let px = ix + ox as isize;
            let py = iy + oy as isize;
            let p00 = reference.sample(px, py) as u16;
            let v = match (fx, fy) {
                (0, 0) => p00,
                (1, 0) => (p00 + reference.sample(px + 1, py) as u16 + 1) >> 1,
                (0, 1) => (p00 + reference.sample(px, py + 1) as u16 + 1) >> 1,
                _ => {
                    let p10 = reference.sample(px + 1, py) as u16;
                    let p01 = reference.sample(px, py + 1) as u16;
                    let p11 = reference.sample(px + 1, py + 1) as u16;
                    (p00 + p10 + p01 + p11 + 2) >> 2
                }
            };
            out[oy * w + ox] = v as u8;
        }
    }
    out
}

/// Motion compensation at either precision: `mv` is in half-pel units
/// when `subpel` is set, full-pel otherwise.
pub fn mc_block_sub(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    subpel: bool,
) -> Vec<u8> {
    if subpel {
        mc_block_halfpel(reference, x, y, w, h, mv)
    } else {
        mc_block(reference, x, y, w, h, mv)
    }
}

/// The reference rectangle a compensated block reads, for dependency
/// recording: half-pel vectors widen the footprint by one pixel along
/// each fractional axis.
pub fn ref_rect(
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    subpel: bool,
) -> vapp_media::Rect {
    if !subpel {
        return vapp_media::Rect::new(x as isize + mv.x as isize, y as isize + mv.y as isize, w, h);
    }
    let bx = x as isize * 2 + mv.x as isize;
    let by = y as isize * 2 + mv.y as isize;
    vapp_media::Rect::new(
        bx.div_euclid(2),
        by.div_euclid(2),
        w + (bx.rem_euclid(2) != 0) as usize,
        h + (by.rem_euclid(2) != 0) as usize,
    )
}

/// Sum of absolute differences between the source block and an arbitrary
/// prediction buffer.
pub fn sad_against(cur: &Plane, x: usize, y: usize, w: usize, h: usize, pred: &[u8]) -> u64 {
    debug_assert_eq!(pred.len(), w * h);
    let mut total = 0u64;
    for oy in 0..h {
        for ox in 0..w {
            let a = cur.sample((x + ox) as isize, (y + oy) as isize) as i32;
            total += (a - pred[oy * w + ox] as i32).unsigned_abs() as u64;
        }
    }
    total
}

/// Two-stage motion search: full-pel full search around `center` (given
/// in the unit implied by `subpel`), then — with `subpel` — a ±1 half-pel
/// refinement around the winner. The returned vector is in half-pel units
/// when `subpel` is set.
#[allow(clippy::too_many_arguments)]
pub fn search_sub(
    cur: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    center: MotionVector,
    range: i16,
    subpel: bool,
) -> SearchResult {
    if !subpel {
        return motion_search(cur, reference, x, y, w, h, center, range);
    }
    let full_center = MotionVector::new(center.x / 2, center.y / 2);
    let full = motion_search(cur, reference, x, y, w, h, full_center, range);
    let base = MotionVector::new(full.mv.x * 2, full.mv.y * 2);
    let mut best = SearchResult {
        mv: base,
        sad: full.sad,
    };
    for dy in -1i16..=1 {
        for dx in -1i16..=1 {
            if dx == 0 && dy == 0 {
                continue;
            }
            let mv = MotionVector::new(
                (base.x + dx).clamp(-MV_LIMIT, MV_LIMIT),
                (base.y + dy).clamp(-MV_LIMIT, MV_LIMIT),
            );
            let pred = mc_block_halfpel(reference, x, y, w, h, mv);
            let sad = sad_against(cur, x, y, w, h, &pred);
            if sad < best.sad {
                best = SearchResult { mv, sad };
            }
        }
    }
    best
}

/// Bi-prediction: rounds-to-nearest average of forward and backward
/// compensation.
///
/// # Panics
///
/// Panics if the two blocks differ in length.
pub fn bi_average(fwd: &[u8], bwd: &[u8]) -> Vec<u8> {
    assert_eq!(fwd.len(), bwd.len(), "bi-prediction block size mismatch");
    fwd.iter()
        .zip(bwd)
        .map(|(&a, &b)| (a as u16 + b as u16).div_ceil(2) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plane with a distinctive patch at a given offset.
    fn patch_plane(ox: usize, oy: usize) -> Plane {
        let mut p = Plane::filled(64, 64, 50);
        for y in 0..8 {
            for x in 0..8 {
                p.set(ox + x, oy + y, 200 + ((x * y) % 40) as u8);
            }
        }
        p
    }

    #[test]
    fn search_finds_known_translation() {
        let reference = patch_plane(20, 24);
        let cur = patch_plane(24, 26); // moved by (+4, +2)
        let r = motion_search(&cur, &reference, 24, 26, 8, 8, MotionVector::ZERO, 8);
        assert_eq!(r.mv, MotionVector::new(-4, -2));
        assert_eq!(r.sad, 0);
    }

    #[test]
    fn search_prefers_center_on_flat_content() {
        let reference = Plane::filled(64, 64, 90);
        let cur = Plane::filled(64, 64, 90);
        let r = motion_search(&cur, &reference, 16, 16, 16, 16, MotionVector::ZERO, 4);
        assert_eq!(r.mv, MotionVector::ZERO);
        assert_eq!(r.sad, 0);
    }

    #[test]
    fn search_centered_away_from_zero() {
        let reference = patch_plane(20, 20);
        let cur = patch_plane(30, 20);
        // Center the window near the true vector; a small range suffices.
        let r = motion_search(&cur, &reference, 30, 20, 8, 8, MotionVector::new(-8, 0), 3);
        assert_eq!(r.mv, MotionVector::new(-10, 0));
    }

    #[test]
    fn mc_block_reproduces_reference() {
        let reference = patch_plane(20, 24);
        let got = mc_block(&reference, 4, 4, 8, 8, MotionVector::new(16, 20));
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(got[y * 8 + x], reference.get(20 + x, 24 + y));
            }
        }
    }

    #[test]
    fn mc_block_clamps_outside_frame() {
        let reference = patch_plane(0, 0);
        let got = mc_block(&reference, 0, 0, 4, 4, MotionVector::new(-100, -100));
        assert!(got.iter().all(|&v| v == reference.get(0, 0)));
    }

    #[test]
    fn halfpel_integer_positions_match_fullpel() {
        let reference = patch_plane(20, 24);
        let full = mc_block(&reference, 4, 4, 8, 8, MotionVector::new(3, -2));
        let half = mc_block_halfpel(&reference, 4, 4, 8, 8, MotionVector::new(6, -4));
        assert_eq!(full, half);
    }

    #[test]
    fn halfpel_interpolates_between_pixels() {
        let mut reference = Plane::filled(32, 32, 100);
        for y in 0..32 {
            for x in 16..32 {
                reference.set(x, y, 200);
            }
        }
        // Sampling at x=15.5: average of 100 and 200 → 150.
        let half = mc_block_halfpel(&reference, 15, 8, 1, 1, MotionVector::new(1, 0));
        assert_eq!(half[0], 150);
        // Diagonal half position averages four pixels.
        let diag = mc_block_halfpel(&reference, 15, 8, 1, 1, MotionVector::new(1, 1));
        assert_eq!(diag[0], 150);
    }

    #[test]
    fn search_sub_finds_halfpel_motion() {
        // A smooth ramp shifted by half a pixel: the half-pel candidate
        // must beat every full-pel one.
        let mut reference = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                reference.set(x, y, ((x * 4) % 256) as u8);
            }
        }
        let mut cur = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                // Shift by 0.5 px: average of neighbours.
                let a = reference.sample(x as isize, y as isize) as u16;
                let b = reference.sample(x as isize + 1, y as isize) as u16;
                cur.set(x, y, (a + b).div_ceil(2) as u8);
            }
        }
        let r = search_sub(
            &cur,
            &reference,
            16,
            16,
            16,
            16,
            MotionVector::ZERO,
            4,
            true,
        );
        // The ramp is constant vertically, so any y half-offset ties; the
        // x component must be the half-pel shift.
        assert_eq!(r.mv.x, 1, "mv {:?} sad {}", r.mv, r.sad);
        assert_eq!(r.sad, 0);
        let full = search_sub(
            &cur,
            &reference,
            16,
            16,
            16,
            16,
            MotionVector::ZERO,
            4,
            false,
        );
        assert!(
            r.sad < full.sad,
            "half-pel must win: {} vs {}",
            r.sad,
            full.sad
        );
    }

    #[test]
    fn ref_rect_widens_on_fractional_axes() {
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(4, 4), false);
        assert_eq!((r.x, r.y, r.w, r.h), (20, 20, 8, 8));
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(8, 8), true);
        assert_eq!((r.x, r.y, r.w, r.h), (20, 20, 8, 8));
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(9, 8), true);
        assert_eq!((r.x, r.y, r.w, r.h), (20, 20, 9, 8));
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(-1, -3), true);
        assert_eq!((r.x, r.y, r.w, r.h), (15, 14, 9, 9));
    }

    #[test]
    fn sad_against_matches_plane_sad() {
        let a = patch_plane(10, 10);
        let b = patch_plane(12, 11);
        let pred = mc_block(&b, 8, 8, 16, 16, MotionVector::ZERO);
        assert_eq!(
            sad_against(&a, 8, 8, 16, 16, &pred),
            a.sad(8, 8, 16, 16, &b, 8, 8)
        );
    }

    #[test]
    fn bi_average_rounds_to_nearest() {
        assert_eq!(bi_average(&[10, 255], &[11, 0]), vec![11, 128]);
        assert_eq!(bi_average(&[100], &[100]), vec![100]);
    }
}
