//! Inter prediction: motion estimation and compensation.
//!
//! Integer-pel block matching with a full search around the predicted
//! vector, per-partition refinement, and bi-prediction for B frames. The
//! referenced pixel rectangles double as the temporal compensation
//! dependencies VideoApp records (paper §4.1).

use crate::types::MotionVector;
use vapp_media::{Plane, MB_SIZE};

/// Hard bound on motion-vector components (also the decoder's clamp for
/// corrupt data).
pub const MV_LIMIT: i16 = 1 << 12;

/// Result of a block motion search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchResult {
    /// Best motion vector found.
    pub mv: MotionVector,
    /// Its sum of absolute differences.
    pub sad: u64,
}

/// Counters accumulated by the bounded search loops. Threaded through by
/// value per macroblock task (never stored in thread-locals) so the totals
/// are identical at any worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// SAD evaluations pruned by the running-best bound: the evaluation
    /// stopped (possibly mid-block) once its partial sum exceeded the best
    /// candidate so far, so the block was rejected without a full sum.
    pub early_exits: u64,
}

impl SearchStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: SearchStats) {
        self.early_exits += other.early_exits;
    }
}

/// Full search in a `±range` window around `center` for the `w x h` block
/// of `cur` at `(x, y)`, matching against `reference`.
///
/// Ties break toward the vector closest to `center` (cheaper to code).
#[allow(clippy::too_many_arguments)] // block geometry: x, y, w, h + search window
pub fn motion_search(
    cur: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    center: MotionVector,
    range: i16,
) -> SearchResult {
    motion_search_stats(
        cur,
        reference,
        x,
        y,
        w,
        h,
        center,
        range,
        &mut SearchStats::default(),
    )
}

/// [`motion_search`] with early-exit accounting.
///
/// Every candidate SAD is bounded by the running best: a candidate whose
/// partial sum already exceeds `best.sad` can stop summing, because it can
/// win neither the `<` comparison nor the distance tie-break (which requires
/// exact equality, and partial sums only come back when they *exceed* the
/// bound). The winner's SAD is therefore always the exact value — identical
/// to the unbounded search, decision for decision.
///
/// The center candidate is evaluated first (exactly) to seed a tight bound;
/// the winner is the lexicographic minimum of `(sad, distance-to-center)`
/// over the window, which does not depend on evaluation order (equal
/// `(sad, dist)` pairs can only share a motion vector via clamping), so the
/// reordering is also decision-identical.
#[allow(clippy::too_many_arguments)]
pub fn motion_search_stats(
    cur: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    center: MotionVector,
    range: i16,
    stats: &mut SearchStats,
) -> SearchResult {
    let seed_mv = MotionVector::new(
        center.x.clamp(-MV_LIMIT, MV_LIMIT),
        center.y.clamp(-MV_LIMIT, MV_LIMIT),
    );
    let mut best = SearchResult {
        mv: seed_mv,
        sad: cur.sad(
            x,
            y,
            w,
            h,
            reference,
            x as isize + seed_mv.x as isize,
            y as isize + seed_mv.y as isize,
        ),
    };
    let mut best_dist =
        (seed_mv.x as i32 - center.x as i32).abs() + (seed_mv.y as i32 - center.y as i32).abs();
    for dy in -range..=range {
        for dx in -range..=range {
            if dx == 0 && dy == 0 {
                continue;
            }
            let mv = MotionVector::new(
                (center.x + dx).clamp(-MV_LIMIT, MV_LIMIT),
                (center.y + dy).clamp(-MV_LIMIT, MV_LIMIT),
            );
            let sad = cur.sad_bounded(
                x,
                y,
                w,
                h,
                reference,
                x as isize + mv.x as isize,
                y as isize + mv.y as isize,
                best.sad,
            );
            let dist =
                (mv.x as i32 - center.x as i32).abs() + (mv.y as i32 - center.y as i32).abs();
            if sad < best.sad || (sad == best.sad && dist < best_dist) {
                best = SearchResult { mv, sad };
                best_dist = dist;
            } else if sad > best.sad {
                stats.early_exits += 1;
            }
        }
    }
    best
}

/// Motion-compensates a `w x h` block: copies the block at
/// `(x + mv.x, y + mv.y)` from the reference (clamped at borders).
pub fn mc_block(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
) -> Vec<u8> {
    let mut out = vec![0u8; w * h];
    mc_block_into(reference, x, y, w, h, mv, &mut out);
    out
}

/// [`mc_block`] writing into a caller-provided buffer — the allocation-free
/// form the encoder's candidate loops use (one scratch per macroblock task).
///
/// # Panics
///
/// Panics if `out.len() != w * h`.
pub fn mc_block_into(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    out: &mut [u8],
) {
    reference.copy_block(
        x as isize + mv.x as isize,
        y as isize + mv.y as isize,
        w,
        h,
        out,
    );
}

/// Motion-compensates a block with **half-pel** precision: `mv` is in
/// half-pel units; fractional positions are bilinearly interpolated
/// (H.264 uses a 6-tap filter for luma half-pel; bilinear preserves the
/// dependence structure at a fraction of the complexity).
pub fn mc_block_halfpel(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
) -> Vec<u8> {
    let mut out = vec![0u8; w * h];
    mc_block_halfpel_into(reference, x, y, w, h, mv, &mut out);
    out
}

/// [`mc_block_halfpel`] writing into a caller-provided buffer.
///
/// Interior blocks (the fractional footprint fully inside the reference)
/// interpolate whole rows at a time with the word-parallel rounding averages
/// from [`vapp_media::kernels`]; blocks touching a border fall back to the
/// scalar clamped-sampling loop. Both produce identical bytes (pinned by the
/// kernel-equivalence property tests).
///
/// # Panics
///
/// Panics if `out.len() != w * h`.
pub fn mc_block_halfpel_into(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    out: &mut [u8],
) {
    assert_eq!(out.len(), w * h, "prediction buffer size mismatch");
    let bx = x as isize * 2 + mv.x as isize;
    let by = y as isize * 2 + mv.y as isize;
    let ix = bx.div_euclid(2);
    let iy = by.div_euclid(2);
    let fx = bx.rem_euclid(2) as usize;
    let fy = by.rem_euclid(2) as usize;
    // The footprint is (w + fx) x (h + fy): fractional axes read one extra
    // pixel. When it sits fully inside the plane, rows can be borrowed.
    if reference.block_interior(ix, iy, w + fx, h + fy) {
        let (ix, iy) = (ix as usize, iy as usize);
        match (fx, fy) {
            (0, 0) => {
                for oy in 0..h {
                    out[oy * w..][..w].copy_from_slice(&reference.row(iy + oy)[ix..ix + w]);
                }
            }
            (1, 0) => {
                for oy in 0..h {
                    let row = reference.row(iy + oy);
                    vapp_media::kernels::avg_rounding(
                        &row[ix..ix + w],
                        &row[ix + 1..ix + 1 + w],
                        &mut out[oy * w..][..w],
                    );
                }
            }
            (0, 1) => {
                for oy in 0..h {
                    vapp_media::kernels::avg_rounding(
                        &reference.row(iy + oy)[ix..ix + w],
                        &reference.row(iy + oy + 1)[ix..ix + w],
                        &mut out[oy * w..][..w],
                    );
                }
            }
            _ => {
                for oy in 0..h {
                    let r0 = reference.row(iy + oy);
                    let r1 = reference.row(iy + oy + 1);
                    vapp_media::kernels::avg4_rounding(
                        &r0[ix..ix + w],
                        &r0[ix + 1..ix + 1 + w],
                        &r1[ix..ix + w],
                        &r1[ix + 1..ix + 1 + w],
                        &mut out[oy * w..][..w],
                    );
                }
            }
        }
        return;
    }
    for oy in 0..h {
        for ox in 0..w {
            let px = ix + ox as isize;
            let py = iy + oy as isize;
            let p00 = reference.sample(px, py) as u16;
            let v = match (fx, fy) {
                (0, 0) => p00,
                (1, 0) => (p00 + reference.sample(px + 1, py) as u16 + 1) >> 1,
                (0, 1) => (p00 + reference.sample(px, py + 1) as u16 + 1) >> 1,
                _ => {
                    let p10 = reference.sample(px + 1, py) as u16;
                    let p01 = reference.sample(px, py + 1) as u16;
                    let p11 = reference.sample(px + 1, py + 1) as u16;
                    (p00 + p10 + p01 + p11 + 2) >> 2
                }
            };
            out[oy * w + ox] = v as u8;
        }
    }
}

/// Motion compensation at either precision: `mv` is in half-pel units
/// when `subpel` is set, full-pel otherwise.
pub fn mc_block_sub(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    subpel: bool,
) -> Vec<u8> {
    if subpel {
        mc_block_halfpel(reference, x, y, w, h, mv)
    } else {
        mc_block(reference, x, y, w, h, mv)
    }
}

/// [`mc_block_sub`] writing into a caller-provided buffer.
///
/// # Panics
///
/// Panics if `out.len() != w * h`.
#[allow(clippy::too_many_arguments)] // block geometry + vector + precision + buffer
pub fn mc_block_sub_into(
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    subpel: bool,
    out: &mut [u8],
) {
    if subpel {
        mc_block_halfpel_into(reference, x, y, w, h, mv, out);
    } else {
        mc_block_into(reference, x, y, w, h, mv, out);
    }
}

/// The reference rectangle a compensated block reads, for dependency
/// recording: half-pel vectors widen the footprint by one pixel along
/// each fractional axis.
pub fn ref_rect(
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    subpel: bool,
) -> vapp_media::Rect {
    if !subpel {
        return vapp_media::Rect::new(x as isize + mv.x as isize, y as isize + mv.y as isize, w, h);
    }
    let bx = x as isize * 2 + mv.x as isize;
    let by = y as isize * 2 + mv.y as isize;
    vapp_media::Rect::new(
        bx.div_euclid(2),
        by.div_euclid(2),
        w + (bx.rem_euclid(2) != 0) as usize,
        h + (by.rem_euclid(2) != 0) as usize,
    )
}

/// Pixels in the largest block any search or compensation call handles
/// (one 16x16 macroblock) — the size of the reusable scratch buffers.
pub const MAX_BLOCK_PIXELS: usize = vapp_media::MB_PIXELS;

/// Sum of absolute differences between the source block and an arbitrary
/// prediction buffer.
pub fn sad_against(cur: &Plane, x: usize, y: usize, w: usize, h: usize, pred: &[u8]) -> u64 {
    sad_against_bounded(cur, x, y, w, h, pred, u64::MAX)
}

/// [`sad_against`] with the same early-exit contract as
/// [`Plane::sad_bounded`]: stops once the running total strictly exceeds
/// `bound`. Interior source blocks compare borrowed plane rows against the
/// prediction word-parallel.
#[allow(clippy::too_many_arguments)] // block geometry + prediction + bound
pub fn sad_against_bounded(
    cur: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    pred: &[u8],
    bound: u64,
) -> u64 {
    debug_assert_eq!(pred.len(), w * h);
    let mut total = 0u64;
    if x + w <= cur.width() && y + h <= cur.height() {
        for oy in 0..h {
            let a = &cur.row(y + oy)[x..x + w];
            total += vapp_media::kernels::sad_slices(a, &pred[oy * w..][..w]);
            if total > bound {
                return total;
            }
        }
        return total;
    }
    for oy in 0..h {
        for ox in 0..w {
            let a = cur.sample((x + ox) as isize, (y + oy) as isize) as i32;
            total += (a - pred[oy * w + ox] as i32).unsigned_abs() as u64;
        }
        if total > bound {
            return total;
        }
    }
    total
}

/// Fused half-pel compensation + bounded SAD: interpolates one row at a
/// time into a stack buffer and accumulates the SAD against `cur`, stopping
/// as soon as the running total strictly exceeds `bound` — so a pruned
/// candidate never pays for the rows it would have thrown away.
///
/// Same contract as [`Plane::sad_bounded`]: exact whenever the result is
/// `<= bound`, and any early return is itself `> bound`. Identical bytes to
/// `mc_block_halfpel_into` + `sad_against` (pinned by the unit tests below
/// and the kernel-equivalence property tests).
#[allow(clippy::too_many_arguments)]
pub fn sad_halfpel_bounded(
    cur: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    reference: &Plane,
    mv: MotionVector,
    bound: u64,
) -> u64 {
    debug_assert!(w <= MB_SIZE);
    let bx = x as isize * 2 + mv.x as isize;
    let by = y as isize * 2 + mv.y as isize;
    let ix = bx.div_euclid(2);
    let iy = by.div_euclid(2);
    let fx = bx.rem_euclid(2) as usize;
    let fy = by.rem_euclid(2) as usize;
    let mut total = 0u64;
    if x + w <= cur.width()
        && y + h <= cur.height()
        && reference.block_interior(ix, iy, w + fx, h + fy)
    {
        let (ix, iy) = (ix as usize, iy as usize);
        let mut row_buf = [0u8; MB_SIZE];
        for oy in 0..h {
            let a = &cur.row(y + oy)[x..x + w];
            total += match (fx, fy) {
                (0, 0) => vapp_media::kernels::sad_slices(a, &reference.row(iy + oy)[ix..ix + w]),
                _ => {
                    let pred = &mut row_buf[..w];
                    let r0 = reference.row(iy + oy);
                    match (fx, fy) {
                        (1, 0) => vapp_media::kernels::avg_rounding(
                            &r0[ix..ix + w],
                            &r0[ix + 1..ix + 1 + w],
                            pred,
                        ),
                        (0, 1) => vapp_media::kernels::avg_rounding(
                            &r0[ix..ix + w],
                            &reference.row(iy + oy + 1)[ix..ix + w],
                            pred,
                        ),
                        _ => {
                            let r1 = reference.row(iy + oy + 1);
                            vapp_media::kernels::avg4_rounding(
                                &r0[ix..ix + w],
                                &r0[ix + 1..ix + 1 + w],
                                &r1[ix..ix + w],
                                &r1[ix + 1..ix + 1 + w],
                                pred,
                            );
                        }
                    }
                    vapp_media::kernels::sad_slices(a, pred)
                }
            };
            if total > bound {
                return total;
            }
        }
        return total;
    }
    for oy in 0..h {
        for ox in 0..w {
            let px = ix + ox as isize;
            let py = iy + oy as isize;
            let p00 = reference.sample(px, py) as u16;
            let p = match (fx, fy) {
                (0, 0) => p00,
                (1, 0) => (p00 + reference.sample(px + 1, py) as u16 + 1) >> 1,
                (0, 1) => (p00 + reference.sample(px, py + 1) as u16 + 1) >> 1,
                _ => {
                    let p10 = reference.sample(px + 1, py) as u16;
                    let p01 = reference.sample(px, py + 1) as u16;
                    let p11 = reference.sample(px + 1, py + 1) as u16;
                    (p00 + p10 + p01 + p11 + 2) >> 2
                }
            };
            let a = cur.sample((x + ox) as isize, (y + oy) as isize) as i32;
            total += (a - p as i32).unsigned_abs() as u64;
        }
        if total > bound {
            return total;
        }
    }
    total
}

/// Two-stage motion search: full-pel full search around `center` (given
/// in the unit implied by `subpel`), then — with `subpel` — a ±1 half-pel
/// refinement around the winner. The returned vector is in half-pel units
/// when `subpel` is set.
#[allow(clippy::too_many_arguments)]
pub fn search_sub(
    cur: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    center: MotionVector,
    range: i16,
    subpel: bool,
) -> SearchResult {
    search_sub_stats(
        cur,
        reference,
        x,
        y,
        w,
        h,
        center,
        range,
        subpel,
        &mut SearchStats::default(),
    )
}

/// [`search_sub`] with early-exit accounting — the allocation-free form
/// used per macroblock task.
///
/// The ±1 refinement bounds each candidate by the running best; only a
/// strictly better candidate replaces it (no tie-break here), so pruning
/// anything whose partial sum exceeds the best is decision-identical. Each
/// candidate runs through the fused [`sad_halfpel_bounded`], so pruned
/// candidates never materialise their prediction at all.
#[allow(clippy::too_many_arguments)]
pub fn search_sub_stats(
    cur: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    center: MotionVector,
    range: i16,
    subpel: bool,
    stats: &mut SearchStats,
) -> SearchResult {
    if !subpel {
        return motion_search_stats(cur, reference, x, y, w, h, center, range, stats);
    }
    let full_center = MotionVector::new(center.x / 2, center.y / 2);
    let full = motion_search_stats(cur, reference, x, y, w, h, full_center, range, stats);
    let base = MotionVector::new(full.mv.x * 2, full.mv.y * 2);
    let mut best = SearchResult {
        mv: base,
        sad: full.sad,
    };
    for dy in -1i16..=1 {
        for dx in -1i16..=1 {
            if dx == 0 && dy == 0 {
                continue;
            }
            let mv = MotionVector::new(
                (base.x + dx).clamp(-MV_LIMIT, MV_LIMIT),
                (base.y + dy).clamp(-MV_LIMIT, MV_LIMIT),
            );
            let sad = sad_halfpel_bounded(cur, x, y, w, h, reference, mv, best.sad);
            if sad < best.sad {
                best = SearchResult { mv, sad };
            } else if sad > best.sad {
                stats.early_exits += 1;
            }
        }
    }
    best
}

/// Bi-prediction: rounds-to-nearest average of forward and backward
/// compensation.
///
/// # Panics
///
/// Panics if the two blocks differ in length.
pub fn bi_average(fwd: &[u8], bwd: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; fwd.len()];
    bi_average_into(fwd, bwd, &mut out);
    out
}

/// [`bi_average`] into a caller-provided buffer, averaging 8 pixel pairs
/// per word (`(a + b).div_ceil(2)` is exactly the half-pel rounding
/// average).
///
/// # Panics
///
/// Panics if the buffer lengths differ.
pub fn bi_average_into(fwd: &[u8], bwd: &[u8], out: &mut [u8]) {
    assert_eq!(fwd.len(), bwd.len(), "bi-prediction block size mismatch");
    assert_eq!(fwd.len(), out.len(), "bi-prediction output size mismatch");
    vapp_media::kernels::avg_rounding(fwd, bwd, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plane with a distinctive patch at a given offset.
    fn patch_plane(ox: usize, oy: usize) -> Plane {
        let mut p = Plane::filled(64, 64, 50);
        for y in 0..8 {
            for x in 0..8 {
                p.set(ox + x, oy + y, 200 + ((x * y) % 40) as u8);
            }
        }
        p
    }

    #[test]
    fn search_finds_known_translation() {
        let reference = patch_plane(20, 24);
        let cur = patch_plane(24, 26); // moved by (+4, +2)
        let r = motion_search(&cur, &reference, 24, 26, 8, 8, MotionVector::ZERO, 8);
        assert_eq!(r.mv, MotionVector::new(-4, -2));
        assert_eq!(r.sad, 0);
    }

    #[test]
    fn search_prefers_center_on_flat_content() {
        let reference = Plane::filled(64, 64, 90);
        let cur = Plane::filled(64, 64, 90);
        let r = motion_search(&cur, &reference, 16, 16, 16, 16, MotionVector::ZERO, 4);
        assert_eq!(r.mv, MotionVector::ZERO);
        assert_eq!(r.sad, 0);
    }

    #[test]
    fn search_centered_away_from_zero() {
        let reference = patch_plane(20, 20);
        let cur = patch_plane(30, 20);
        // Center the window near the true vector; a small range suffices.
        let r = motion_search(&cur, &reference, 30, 20, 8, 8, MotionVector::new(-8, 0), 3);
        assert_eq!(r.mv, MotionVector::new(-10, 0));
    }

    #[test]
    fn mc_block_reproduces_reference() {
        let reference = patch_plane(20, 24);
        let got = mc_block(&reference, 4, 4, 8, 8, MotionVector::new(16, 20));
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(got[y * 8 + x], reference.get(20 + x, 24 + y));
            }
        }
    }

    #[test]
    fn mc_block_clamps_outside_frame() {
        let reference = patch_plane(0, 0);
        let got = mc_block(&reference, 0, 0, 4, 4, MotionVector::new(-100, -100));
        assert!(got.iter().all(|&v| v == reference.get(0, 0)));
    }

    #[test]
    fn halfpel_integer_positions_match_fullpel() {
        let reference = patch_plane(20, 24);
        let full = mc_block(&reference, 4, 4, 8, 8, MotionVector::new(3, -2));
        let half = mc_block_halfpel(&reference, 4, 4, 8, 8, MotionVector::new(6, -4));
        assert_eq!(full, half);
    }

    #[test]
    fn halfpel_interpolates_between_pixels() {
        let mut reference = Plane::filled(32, 32, 100);
        for y in 0..32 {
            for x in 16..32 {
                reference.set(x, y, 200);
            }
        }
        // Sampling at x=15.5: average of 100 and 200 → 150.
        let half = mc_block_halfpel(&reference, 15, 8, 1, 1, MotionVector::new(1, 0));
        assert_eq!(half[0], 150);
        // Diagonal half position averages four pixels.
        let diag = mc_block_halfpel(&reference, 15, 8, 1, 1, MotionVector::new(1, 1));
        assert_eq!(diag[0], 150);
    }

    #[test]
    fn search_sub_finds_halfpel_motion() {
        // A smooth ramp shifted by half a pixel: the half-pel candidate
        // must beat every full-pel one.
        let mut reference = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                reference.set(x, y, ((x * 4) % 256) as u8);
            }
        }
        let mut cur = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                // Shift by 0.5 px: average of neighbours.
                let a = reference.sample(x as isize, y as isize) as u16;
                let b = reference.sample(x as isize + 1, y as isize) as u16;
                cur.set(x, y, (a + b).div_ceil(2) as u8);
            }
        }
        let r = search_sub(
            &cur,
            &reference,
            16,
            16,
            16,
            16,
            MotionVector::ZERO,
            4,
            true,
        );
        // The ramp is constant vertically, so any y half-offset ties; the
        // x component must be the half-pel shift.
        assert_eq!(r.mv.x, 1, "mv {:?} sad {}", r.mv, r.sad);
        assert_eq!(r.sad, 0);
        let full = search_sub(
            &cur,
            &reference,
            16,
            16,
            16,
            16,
            MotionVector::ZERO,
            4,
            false,
        );
        assert!(
            r.sad < full.sad,
            "half-pel must win: {} vs {}",
            r.sad,
            full.sad
        );
    }

    #[test]
    fn ref_rect_widens_on_fractional_axes() {
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(4, 4), false);
        assert_eq!((r.x, r.y, r.w, r.h), (20, 20, 8, 8));
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(8, 8), true);
        assert_eq!((r.x, r.y, r.w, r.h), (20, 20, 8, 8));
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(9, 8), true);
        assert_eq!((r.x, r.y, r.w, r.h), (20, 20, 9, 8));
        let r = ref_rect(16, 16, 8, 8, MotionVector::new(-1, -3), true);
        assert_eq!((r.x, r.y, r.w, r.h), (15, 14, 9, 9));
    }

    #[test]
    fn sad_against_matches_plane_sad() {
        let a = patch_plane(10, 10);
        let b = patch_plane(12, 11);
        let pred = mc_block(&b, 8, 8, 16, 16, MotionVector::ZERO);
        assert_eq!(
            sad_against(&a, 8, 8, 16, 16, &pred),
            a.sad(8, 8, 16, 16, &b, 8, 8)
        );
    }

    #[test]
    fn bi_average_rounds_to_nearest() {
        assert_eq!(bi_average(&[10, 255], &[11, 0]), vec![11, 128]);
        assert_eq!(bi_average(&[100], &[100]), vec![100]);
    }
}
