//! The closed-loop encoder.
//!
//! Implements the two-stage pipeline of paper §2.3.2 — pixel-level
//! prediction/compensation, then coding (transform, quantisation,
//! predictive metadata coding, entropy coding) — plus GOP planning (I/P/B),
//! slices, a CRF-like motion-adaptive quantiser, and dependency recording.
//!
//! The **macroblock syntax** written here must match [`crate::decoder`]
//! symbol for symbol:
//!
//! ```text
//! [P/B] skip flag                      (Element::Skip, inc = non-skip neighbours)
//! [P/B] intra flag                     (Element::Intra, inc = intra neighbours)
//! intra:  mode                         (Element::IntraMode)
//! inter:  partition shape              (Element::PartShape)
//!         [P8x8] 4 sub-shapes          (Element::SubShape)
//!         per block:
//!           [B] prediction direction   (Element::PredDir)
//!           per used direction: mvd x, y (Element::MvdX/MvdY, inc = neighbour MVD class)
//! qp delta                             (Element::QpDelta)
//! 4 cbp flags (8x8 quadrants)          (Element::Cbp, inc = quadrant)
//! per coded quadrant, per 4x4:
//!   coded flag                         (Element::Blk4, inc = sub-index)
//!   if coded: significance/level/last map (Element::Sig/Level/Last)
//! ```

use crate::analysis::{AnalysisRecord, Dependency, FrameAnalysis, MbAnalysis};
use crate::entropy::{CabacWriter, CavlcWriter, Element, EntropyMode, SymbolWriter};
use crate::inter::{
    bi_average_into, mc_block_sub_into, ref_rect, sad_against_bounded, search_sub_stats,
    SearchResult, SearchStats, MAX_BLOCK_PIXELS,
};
use crate::intra::{intra_sources, predict_intra16, predict_intra4, Intra4Avail, IntraAvail};
use crate::quant::{dequant_inverse, forward_quant, to_zigzag, MAX_QP};
use crate::syntax::{EncodedFrame, EncodedVideo, FrameHeader, StreamHeader};
use crate::transform::Block4x4;
use crate::types::{
    predict_mv, BlockGeom, FrameType, Intra4Mode, IntraMode, MotionVector, PartShape,
    PartitionLayout, PredDir, SubShape,
};
use vapp_media::{Frame, MbGrid, Plane, Video, MB_SIZE};

/// Encoder configuration.
///
/// Defaults mirror the paper's "standard quality" setting (§6.3):
/// CRF 24, one slice per frame, CABAC, an I frame every 48 display frames
/// and two B frames between anchors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Constant-rate-factor quality target, 0–51 (lower = better). Maps to
    /// the base QP; frame types apply offsets (I: −2, B: +2) and fast
    /// motion adds +2 per macroblock when `adaptive_qp` is on.
    pub crf: u8,
    /// I-frame interval in display frames (≥ 1).
    pub keyint: u16,
    /// Number of B frames between anchors (0–3).
    pub bframes: u8,
    /// Slices per frame (≥ 1). Slices bound coding-error propagation at
    /// extra storage cost (paper §8).
    pub slices: u8,
    /// Entropy coder.
    pub entropy: EntropyMode,
    /// Motion search range in pixels (±).
    pub search_range: i16,
    /// Motion-adaptive per-macroblock QP (the CRF-style behaviour of §6.3).
    pub adaptive_qp: bool,
    /// In-loop deblocking filter on the reconstruction (applied after
    /// each frame, before it is referenced — H.264 semantics).
    pub deblock: bool,
    /// Half-pel motion compensation (bilinear interpolation, ±1 half-pel
    /// refinement after the full-pel search). Motion vectors are stored
    /// and coded in half-pel units when enabled.
    pub subpel: bool,
    /// Approximability-aware mode decision (the paper's §8 open question):
    /// biases the encoder toward skips and away from intra macroblocks in
    /// predicted frames, polarising the stream into important and
    /// unimportant bits at some rate/quality cost.
    pub approx_bias: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            crf: 24,
            keyint: 48,
            bframes: 2,
            slices: 1,
            entropy: EntropyMode::Cabac,
            search_range: 8,
            adaptive_qp: true,
            deblock: true,
            subpel: true,
            approx_bias: false,
        }
    }
}

impl EncoderConfig {
    fn validate(&self) {
        assert!(self.crf <= MAX_QP, "crf must be 0..=51");
        assert!(self.keyint >= 1, "keyint must be >= 1");
        assert!(self.bframes <= 3, "at most 3 B frames between anchors");
        assert!(self.slices >= 1, "at least one slice per frame");
        assert!(
            (1..=64).contains(&self.search_range),
            "search range must be 1..=64"
        );
    }
}

/// Everything the encoder produces.
#[derive(Clone, Debug)]
pub struct EncodeResult {
    /// The coded stream (headers + entropy payloads), coding order.
    pub stream: EncodedVideo,
    /// Dependency/bit-span records, coding order.
    pub analysis: AnalysisRecord,
    /// The encoder's own reconstruction in display order — identical to
    /// what a decoder produces from an undamaged stream.
    pub reconstruction: Video,
}

/// The H.264-style encoder.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    cfg: EncoderConfig,
}

impl Encoder {
    /// Creates an encoder with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see field docs).
    pub fn new(cfg: EncoderConfig) -> Self {
        cfg.validate();
        Encoder { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Encodes a raw video.
    ///
    /// # Panics
    ///
    /// Panics if `video` is empty.
    pub fn encode(&self, video: &Video) -> EncodeResult {
        assert!(!video.is_empty(), "cannot encode an empty video");
        let frames_total = video.len();
        let _video_span = vapp_obs::span!("codec.video.encode", frames_total);
        let plans = plan_gop(
            video.len(),
            self.cfg.keyint as usize,
            self.cfg.bframes as usize,
        );
        let grid = MbGrid::for_frame(video.width(), video.height());
        let padded: Vec<Plane> =
            vapp_par::par_map(video.iter().collect(), |_, f| pad_to_mb(f.plane()));

        let mut dpb: Vec<Option<Plane>> = vec![None; plans.len()];
        let mut frames = Vec::with_capacity(plans.len());
        let mut analyses = Vec::with_capacity(plans.len());
        let mut recon_display: Vec<Option<Frame>> = vec![None; video.len()];

        // Frames encode in coding order, but a run of consecutive B frames
        // only reads anchors already in the DPB (closed GOPs; B frames are
        // never references), so each run encodes as one parallel wave.
        // Anchors encode alone; their per-macroblock candidate pass
        // parallelises inside `encode_frame` instead. Each frame's output
        // is a pure function of its sources and references, so the stream
        // is byte-identical at any worker count.
        let mut next = 0;
        while next < plans.len() {
            let wave_end = if plans[next].frame_type == FrameType::B {
                plans[next..]
                    .iter()
                    .position(|p| p.frame_type != FrameType::B)
                    .map_or(plans.len(), |off| next + off)
            } else {
                next + 1
            };
            let outs = vapp_par::par_map(plans[next..wave_end].iter().collect(), |_, plan| {
                let cur = &padded[plan.display];
                let ref_fwd = plan
                    .ref_fwd
                    .map(|ci| dpb[ci].as_ref().expect("fwd ref coded"));
                let ref_bwd = plan
                    .ref_bwd
                    .map(|ci| dpb[ci].as_ref().expect("bwd ref coded"));
                let fctx = FrameCtx {
                    cfg: &self.cfg,
                    grid: &grid,
                    plan,
                    cur,
                    ref_fwd,
                    ref_bwd,
                };
                let coding = plan.coding;
                let frame_type = plan.frame_type;
                let _frame_span = vapp_obs::span!("codec.frame.encode", coding, frame_type);
                let mut out = match self.cfg.entropy {
                    EntropyMode::Cabac => encode_frame(&fctx, CabacWriter::new),
                    EntropyMode::Cavlc => encode_frame(&fctx, CavlcWriter::new),
                };
                if self.cfg.deblock {
                    crate::deblock::deblock_plane(&mut out.recon, frame_qp(&self.cfg, frame_type));
                }
                out
            });
            for (plan, out) in plans[next..wave_end].iter().zip(outs) {
                record_frame_metrics(&out);
                let header = FrameHeader {
                    coding_index: plan.coding as u32,
                    display_index: plan.display as u32,
                    frame_type: plan.frame_type,
                    qp: frame_qp(&self.cfg, plan.frame_type),
                    ref_fwd: plan.ref_fwd.map(|v| v as u32),
                    ref_bwd: plan.ref_bwd.map(|v| v as u32),
                    slice_lens: out.slice_lens,
                };
                let mut analysis = out.analysis;
                analysis.coding_index = plan.coding;
                analysis.display_index = plan.display;
                analysis.header_bits = header.bit_len();
                analyses.push(analysis);
                frames.push(EncodedFrame {
                    header,
                    payload: out.payload,
                });
                recon_display[plan.display] = Some(Frame::from_plane(crop(
                    &out.recon,
                    video.width(),
                    video.height(),
                )));
                dpb[plan.coding] = Some(out.recon);
            }
            next = wave_end;
        }

        let stream = EncodedVideo {
            header: StreamHeader {
                width: video.width() as u32,
                height: video.height() as u32,
                fps: video.fps(),
                frame_count: plans.len() as u32,
                entropy: self.cfg.entropy,
                slices: self.cfg.slices,
                subpel: self.cfg.subpel,
                deblock: self.cfg.deblock,
                crf: self.cfg.crf,
                keyint: self.cfg.keyint,
                bframes: self.cfg.bframes,
            },
            frames,
        };
        EncodeResult {
            stream,
            analysis: AnalysisRecord {
                grid,
                frames: analyses,
            },
            reconstruction: Video::from_frames(
                recon_display
                    .into_iter()
                    .map(|f| f.expect("all frames coded"))
                    .collect(),
                video.fps(),
            ),
        }
    }
}

/// Base QP for a frame type (I frames get finer quantisation, B coarser).
pub(crate) fn frame_qp(cfg: &EncoderConfig, ft: FrameType) -> u8 {
    let base = cfg.crf as i32;
    let qp = match ft {
        FrameType::I => base - 2,
        FrameType::P => base,
        FrameType::B => base + 2,
    };
    qp.clamp(0, MAX_QP as i32) as u8
}

/// Lagrangian multiplier for mode decisions (~0.85·2^((QP−12)/3)).
fn lambda(qp: u8) -> u64 {
    (0.85 * f64::powf(2.0, (qp as f64 - 12.0) / 3.0)).max(1.0) as u64
}

// ------------------------------------------------------------------ GOP --

/// One frame's coding plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct FramePlan {
    pub coding: usize,
    pub display: usize,
    pub frame_type: FrameType,
    pub ref_fwd: Option<usize>,
    pub ref_bwd: Option<usize>,
}

/// Plans the GOP: anchors (I at keyint boundaries, P otherwise) every
/// `bframes + 1` display frames, B frames in between, coding order =
/// anchor first then its preceding Bs.
pub(crate) fn plan_gop(n: usize, keyint: usize, bframes: usize) -> Vec<FramePlan> {
    assert!(n > 0 && keyint > 0);
    let mut plans = Vec::with_capacity(n);
    let mut coding = 0usize;
    let mut prev_anchor_ci = 0usize;
    let mut prev_anchor_display = 0usize;

    // First frame is always I.
    plans.push(FramePlan {
        coding,
        display: 0,
        frame_type: FrameType::I,
        ref_fwd: None,
        ref_bwd: None,
    });
    coding += 1;

    while prev_anchor_display + 1 < n {
        let mut next = (prev_anchor_display + bframes + 1).min(n - 1);
        // Force an anchor exactly on keyint boundaries.
        let next_key = (prev_anchor_display / keyint + 1) * keyint;
        if next_key <= next {
            next = next_key;
        }
        let ftype = if next.is_multiple_of(keyint) {
            FrameType::I
        } else {
            FrameType::P
        };
        let anchor_ci = coding;
        plans.push(FramePlan {
            coding,
            display: next,
            frame_type: ftype,
            ref_fwd: (ftype == FrameType::P).then_some(prev_anchor_ci),
            ref_bwd: None,
        });
        coding += 1;
        for d in prev_anchor_display + 1..next {
            plans.push(FramePlan {
                coding,
                display: d,
                frame_type: FrameType::B,
                ref_fwd: Some(prev_anchor_ci),
                // Closed GOPs: a B frame never references across an I
                // boundary, so the dependency components between I frames
                // stay independent (paper §4.3.1) and I frames fully stop
                // error propagation.
                ref_bwd: (ftype != FrameType::I).then_some(anchor_ci),
            });
            coding += 1;
        }
        prev_anchor_ci = anchor_ci;
        prev_anchor_display = next;
    }
    plans
}

// ------------------------------------------------------------- helpers --

/// Pads a plane with edge replication to macroblock multiples.
pub(crate) fn pad_to_mb(p: &Plane) -> Plane {
    let w = p.width().div_ceil(MB_SIZE) * MB_SIZE;
    let h = p.height().div_ceil(MB_SIZE) * MB_SIZE;
    if w == p.width() && h == p.height() {
        return p.clone();
    }
    let mut out = Plane::new(w, h);
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, p.sample(x as isize, y as isize));
        }
    }
    out
}

/// Crops a padded plane back to display size.
pub(crate) fn crop(p: &Plane, w: usize, h: usize) -> Plane {
    if p.width() == w && p.height() == h {
        return p.clone();
    }
    let mut out = Plane::new(w, h);
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, p.get(x, y));
        }
    }
    out
}

/// Per-macroblock state both codecs track for prediction and contexts.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct MbState {
    pub coded: bool,
    pub skip: bool,
    pub intra: bool,
    pub mv_fwd: Option<MotionVector>,
    pub mv_bwd: Option<MotionVector>,
    /// |mvd.x| + |mvd.y| of the first block (context modelling).
    pub mvd_mag: u32,
}

/// Neighbour lookup honouring slice boundaries (prediction and context
/// modelling never cross a slice, paper §8).
pub(crate) struct Neighbors {
    pub left: Option<usize>,
    pub above: Option<usize>,
    pub above_right: Option<usize>,
}

pub(crate) fn neighbors(grid: &MbGrid, mb: usize, slice_top_row: usize) -> Neighbors {
    let (col, row) = grid.mb_position(mb);
    let left = (col > 0).then(|| grid.mb_index(col - 1, row));
    let above = (row > slice_top_row).then(|| grid.mb_index(col, row - 1));
    let above_right =
        (row > slice_top_row && col + 1 < grid.mb_cols()).then(|| grid.mb_index(col + 1, row - 1));
    Neighbors {
        left,
        above,
        above_right,
    }
}

/// Context increment helpers shared with the decoder.
pub(crate) fn skip_ctx_inc(states: &[MbState], nb: &Neighbors) -> usize {
    let count = |i: Option<usize>| i.map_or(0, |i| (states[i].coded && !states[i].skip) as usize);
    count(nb.left) + count(nb.above)
}

pub(crate) fn intra_ctx_inc(states: &[MbState], nb: &Neighbors) -> usize {
    let count = |i: Option<usize>| i.map_or(0, |i| (states[i].coded && states[i].intra) as usize);
    count(nb.left) + count(nb.above)
}

pub(crate) fn mvd_ctx_inc(states: &[MbState], nb: &Neighbors) -> usize {
    let mag = |i: Option<usize>| i.map_or(0, |i| states[i].mvd_mag);
    let e = mag(nb.left) + mag(nb.above);
    if e < 3 {
        0
    } else if e < 32 {
        1
    } else {
        2
    }
}

/// Motion-vector predictor for the first block of a macroblock, per
/// direction (`fwd = true` for list 0).
pub(crate) fn mb_mv_pred(states: &[MbState], nb: &Neighbors, fwd: bool) -> MotionVector {
    let get = |i: Option<usize>| -> Option<MotionVector> {
        let s = &states[i?];
        if !s.coded || s.intra {
            return None;
        }
        Some(if fwd {
            s.mv_fwd.unwrap_or(MotionVector::ZERO)
        } else {
            s.mv_bwd.unwrap_or(MotionVector::ZERO)
        })
    };
    predict_mv(get(nb.left), get(nb.above), get(nb.above_right))
}

/// The rows of macroblocks covered by each slice: `slices` contiguous,
/// near-equal groups.
pub(crate) fn slice_rows(mb_rows: usize, slices: usize) -> Vec<(usize, usize)> {
    let slices = slices.clamp(1, mb_rows);
    let base = mb_rows / slices;
    let extra = mb_rows % slices;
    let mut out = Vec::with_capacity(slices);
    let mut row = 0;
    for s in 0..slices {
        let rows = base + usize::from(s < extra);
        out.push((row, row + rows));
        row += rows;
    }
    out
}

// ------------------------------------------------------ frame encoding --

struct FrameCtx<'a> {
    cfg: &'a EncoderConfig,
    grid: &'a MbGrid,
    plan: &'a FramePlan,
    cur: &'a Plane,
    ref_fwd: Option<&'a Plane>,
    ref_bwd: Option<&'a Plane>,
}

struct FrameOut {
    payload: Vec<u8>,
    slice_lens: Vec<u32>,
    recon: Plane,
    analysis: FrameAnalysis,
    /// Entropy-coder binary decisions across all slices (observability).
    bins: u64,
    /// SAD evaluations pruned by the running-best bound, summed over every
    /// search this frame actually consumed (observability). Candidate-pass
    /// searches count only when the mode decision uses their result, so the
    /// total is identical at any worker count.
    early_exits: u64,
}

/// Batches one coded frame's metrics into the observability registry:
/// macroblock mode mix, per-macroblock bit spans, payload size and
/// entropy-coder bin count. One registry lookup per metric per frame —
/// the per-macroblock work is plain atomic adds on hoisted handles.
fn record_frame_metrics(out: &FrameOut) {
    let reg = vapp_obs::current();
    let (mut intra, mut skip) = (0u64, 0u64);
    let mb_bits = reg.histogram("codec.mb.bits");
    for mb in &out.analysis.mbs {
        intra += mb.intra as u64;
        skip += mb.skip as u64;
        mb_bits.record(mb.bits());
    }
    let total = out.analysis.mbs.len() as u64;
    reg.counter("codec.mb.intra").add(intra);
    reg.counter("codec.mb.skip").add(skip);
    reg.counter("codec.mb.inter").add(total - intra - skip);
    reg.counter("codec.payload.bits")
        .add(out.payload.len() as u64 * 8);
    reg.counter("codec.arith.bins").add(out.bins);
    reg.counter("codec.sad.early_exit").add(out.early_exits);
}

/// The chosen coding mode for one macroblock.
enum MbMode {
    Skip {
        mv: MotionVector,
    },
    Intra {
        mode: IntraMode,
    },
    /// Intra 4x4: per-block modes are chosen during coding (they depend
    /// on the progressive reconstruction).
    Intra4,
    Inter {
        layout: PartitionLayout,
        blocks: Vec<InterBlock>,
    },
}

#[derive(Clone, Copy, Debug)]
struct InterBlock {
    dir: PredDir,
    mv_fwd: MotionVector,
    mv_bwd: MotionVector,
}

fn encode_frame<W, F>(ctx: &FrameCtx<'_>, new_writer: F) -> FrameOut
where
    W: SymbolWriter,
    F: Fn() -> W,
{
    let grid = ctx.grid;
    let mut recon = Plane::new(ctx.cur.width(), ctx.cur.height());
    let mut states = vec![MbState::default(); grid.mb_count()];
    let mut mbs = vec![MbAnalysis::default(); grid.mb_count()];
    let mut payload = Vec::new();
    let mut slice_lens = Vec::new();
    let mut slice_starts = Vec::new();
    let mut bins = 0u64;
    let base_qp = frame_qp(ctx.cfg, ctx.plan.frame_type);
    let slices = slice_rows(grid.mb_rows(), ctx.cfg.slices as usize);

    // Parallel candidate pass: every probe that reads only the source and
    // reference planes (adaptive QP, intra cost probes, the backward full
    // search) is computed for all macroblocks up front, leaving the
    // sequential pass below just the state-dependent work. The values are
    // exactly what the sequential pass would compute inline, so the coded
    // stream is bit-identical with or without workers.
    let mut slice_top = vec![0usize; grid.mb_rows()];
    for &(row_start, row_end) in &slices {
        slice_top[row_start..row_end].fill(row_start);
    }
    let with_bwd = ctx.ref_bwd.is_some() && vapp_par::would_parallelize();
    let cands = vapp_par::par_map((0..grid.mb_count()).collect(), |_, mb| {
        let (_, row) = grid.mb_position(mb);
        mb_candidates(ctx, mb, slice_top[row], base_qp, with_bwd)
    });

    let mut search_stats = SearchStats::default();
    for &(row_start, row_end) in &slices {
        let mut w = new_writer();
        let slice_base_bits = payload.len() as u64 * 8;
        slice_starts.push(grid.mb_index(0, row_start));
        let mut prev_qp = base_qp;
        for row in row_start..row_end {
            for col in 0..grid.mb_cols() {
                let mb = grid.mb_index(col, row);
                let bit_start = slice_base_bits + w.bit_pos();
                let (analysis_deps, intra, skip) = encode_mb(
                    ctx,
                    &mut w,
                    &mut recon,
                    &mut states,
                    mb,
                    row_start,
                    &cands[mb],
                    &mut prev_qp,
                    &mut search_stats,
                );
                mbs[mb] = MbAnalysis {
                    bit_start,
                    bit_end: slice_base_bits + w.bit_pos(),
                    deps: analysis_deps,
                    intra,
                    skip,
                };
            }
        }
        bins += w.bins_coded();
        let bytes = w.finish();
        // The flush bits belong to the last macroblock of the slice.
        if let Some(last_row) = (row_start..row_end).last() {
            let last_mb = grid.mb_index(grid.mb_cols() - 1, last_row);
            mbs[last_mb].bit_end = slice_base_bits + bytes.len() as u64 * 8;
        }
        slice_lens.push(bytes.len() as u32);
        payload.extend_from_slice(&bytes);
    }

    FrameOut {
        payload,
        slice_lens,
        recon,
        analysis: FrameAnalysis {
            coding_index: 0,
            display_index: 0,
            frame_type: ctx.plan.frame_type,
            header_bits: 0,
            mbs,
            slice_starts,
        },
        bins,
        early_exits: search_stats.early_exits,
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_mb<W: SymbolWriter>(
    ctx: &FrameCtx<'_>,
    w: &mut W,
    recon: &mut Plane,
    states: &mut [MbState],
    mb: usize,
    slice_top_row: usize,
    cand: &MbCandidates,
    prev_qp: &mut u8,
    stats: &mut SearchStats,
) -> (Vec<Dependency>, bool, bool) {
    let grid = ctx.grid;
    let (col, row) = grid.mb_position(mb);
    let (mb_x, mb_y) = (col * MB_SIZE, row * MB_SIZE);
    let nb = neighbors(grid, mb, slice_top_row);
    let is_b = ctx.plan.frame_type == FrameType::B;
    let inter_allowed = ctx.ref_fwd.is_some();

    let mut cur_block = [0u8; 256];
    ctx.cur.copy_block(
        mb_x as isize,
        mb_y as isize,
        MB_SIZE,
        MB_SIZE,
        &mut cur_block,
    );

    // Per-MB QP comes from the candidate pass (CRF-like motion-adaptive
    // quantisation); only the MV prediction is state-dependent.
    let qp = cand.qp;
    let pred_fwd = mb_mv_pred(states, &nb, true);
    let lam = lambda(qp);

    // --- mode decision ---
    let mode = {
        let _search_span = vapp_obs::span!("codec.mb.search");
        decide_mode(ctx, mb_x, mb_y, &cur_block, cand, qp, lam, pred_fwd, stats)
    };

    // --- write syntax + reconstruct ---
    let avail = IntraAvail {
        left: nb.left.is_some(),
        top: nb.above.is_some(),
    };
    let mut deps = Vec::new();
    let (intra_flag, skip_flag);
    match mode {
        MbMode::Skip { mv } => {
            w.put_flag(Element::Skip, skip_ctx_inc(states, &nb), true);
            let mut pred = [0u8; MAX_BLOCK_PIXELS];
            mc_block_sub_into(
                ctx.ref_fwd.expect("skip needs a reference"),
                mb_x,
                mb_y,
                MB_SIZE,
                MB_SIZE,
                mv,
                ctx.cfg.subpel,
                &mut pred,
            );
            recon.store_block(mb_x, mb_y, MB_SIZE, MB_SIZE, &pred);
            push_mc_deps(
                &mut deps,
                grid,
                ctx.plan.ref_fwd.expect("skip ref"),
                mb_x,
                mb_y,
                MB_SIZE,
                MB_SIZE,
                mv,
                1.0,
                ctx.cfg.subpel,
            );
            states[mb] = MbState {
                coded: true,
                skip: true,
                intra: false,
                mv_fwd: Some(mv),
                mv_bwd: None,
                mvd_mag: 0,
            };
            intra_flag = false;
            skip_flag = true;
            return (deps, intra_flag, skip_flag);
        }
        MbMode::Intra { mode: im } => {
            if inter_allowed {
                w.put_flag(Element::Skip, skip_ctx_inc(states, &nb), false);
                w.put_flag(Element::Intra, intra_ctx_inc(states, &nb), true);
            }
            w.put_flag(Element::Intra4, 0, false);
            w.put_uint(Element::IntraMode, 0, im.to_index());
            let pred = predict_intra16(recon, mb_x, mb_y, avail, im);
            let frame_ci = ctx.plan.coding;
            for (src_mb, weight) in intra_sources(grid, mb, avail, im) {
                deps.push(Dependency {
                    frame: frame_ci,
                    mb: src_mb,
                    weight,
                });
            }
            code_residual_and_recon(w, recon, mb_x, mb_y, &cur_block, &pred, qp, true, prev_qp);
            states[mb] = MbState {
                coded: true,
                skip: false,
                intra: true,
                mv_fwd: None,
                mv_bwd: None,
                mvd_mag: 0,
            };
            intra_flag = true;
            skip_flag = false;
        }
        MbMode::Intra4 => {
            if inter_allowed {
                w.put_flag(Element::Skip, skip_ctx_inc(states, &nb), false);
                w.put_flag(Element::Intra, intra_ctx_inc(states, &nb), true);
            }
            w.put_flag(Element::Intra4, 0, true);
            let frame_ci = ctx.plan.coding;
            // Spatial dependencies: attributed like a DC intra16 MB (the
            // 4x4 chain ultimately draws on the same neighbour borders).
            for (src_mb, weight) in intra_sources(grid, mb, avail, IntraMode::Dc) {
                deps.push(Dependency {
                    frame: frame_ci,
                    mb: src_mb,
                    weight,
                });
            }
            code_intra4_mb(w, recon, ctx.cur, mb_x, mb_y, avail, qp, prev_qp);
            states[mb] = MbState {
                coded: true,
                skip: false,
                intra: true,
                mv_fwd: None,
                mv_bwd: None,
                mvd_mag: 0,
            };
            intra_flag = true;
            skip_flag = false;
        }
        MbMode::Inter { layout, blocks } => {
            w.put_flag(Element::Skip, skip_ctx_inc(states, &nb), false);
            w.put_flag(Element::Intra, intra_ctx_inc(states, &nb), false);
            w.put_uint(Element::PartShape, 0, layout.shape.to_index());
            if layout.shape == PartShape::P8x8 {
                for s in layout.subs {
                    w.put_uint(Element::SubShape, 0, s.to_index());
                }
            }
            let geoms = layout.blocks();
            let mvd_inc = mvd_ctx_inc(states, &nb);
            let mut prev_fwd: Option<MotionVector> = None;
            let mut prev_bwd: Option<MotionVector> = None;
            let mut first_mvd_mag = 0u32;
            let mut pred16 = [0u8; MAX_BLOCK_PIXELS];
            // Scratch buffers reused by every block of this macroblock: no
            // per-candidate Vec allocations in the compensation loop.
            let mut block_pred = [0u8; MAX_BLOCK_PIXELS];
            let mut bwd_pred = [0u8; MAX_BLOCK_PIXELS];
            for (i, (g, b)) in geoms.iter().zip(&blocks).enumerate() {
                if is_b {
                    w.put_uint(Element::PredDir, 0, b.dir.to_index());
                }
                let use_fwd = b.dir != PredDir::Backward;
                let use_bwd = is_b && b.dir != PredDir::Forward;
                if use_fwd {
                    let pred = prev_fwd.unwrap_or(pred_fwd);
                    let mvd = (b.mv_fwd.x - pred.x, b.mv_fwd.y - pred.y);
                    w.put_sint(Element::MvdX, mvd_inc, mvd.0 as i32);
                    w.put_sint(Element::MvdY, mvd_inc, mvd.1 as i32);
                    if i == 0 {
                        first_mvd_mag = mvd.0.unsigned_abs() as u32 + mvd.1.unsigned_abs() as u32;
                    }
                    prev_fwd = Some(b.mv_fwd);
                }
                if use_bwd {
                    let pred = prev_bwd.unwrap_or_else(|| mb_mv_pred(states, &nb, false));
                    let mvd = (b.mv_bwd.x - pred.x, b.mv_bwd.y - pred.y);
                    w.put_sint(Element::MvdX, mvd_inc, mvd.0 as i32);
                    w.put_sint(Element::MvdY, mvd_inc, mvd.1 as i32);
                    prev_bwd = Some(b.mv_bwd);
                }
                // Build the prediction and record dependencies.
                let bx = mb_x + g.dx;
                let by = mb_y + g.dy;
                let sp = ctx.cfg.subpel;
                let n = g.w * g.h;
                let bp = &mut block_pred[..n];
                match b.dir {
                    PredDir::Forward => {
                        push_mc_deps(
                            &mut deps,
                            grid,
                            ctx.plan.ref_fwd.expect("fwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_fwd,
                            area_frac(g.w, g.h),
                            sp,
                        );
                        mc_block_sub_into(
                            ctx.ref_fwd.expect("fwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_fwd,
                            sp,
                            bp,
                        );
                    }
                    PredDir::Backward => {
                        push_mc_deps(
                            &mut deps,
                            grid,
                            ctx.plan.ref_bwd.expect("bwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_bwd,
                            area_frac(g.w, g.h),
                            sp,
                        );
                        mc_block_sub_into(
                            ctx.ref_bwd.expect("bwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_bwd,
                            sp,
                            bp,
                        );
                    }
                    PredDir::Bi => {
                        push_mc_deps(
                            &mut deps,
                            grid,
                            ctx.plan.ref_fwd.expect("fwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_fwd,
                            area_frac(g.w, g.h) * 0.5,
                            sp,
                        );
                        push_mc_deps(
                            &mut deps,
                            grid,
                            ctx.plan.ref_bwd.expect("bwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_bwd,
                            area_frac(g.w, g.h) * 0.5,
                            sp,
                        );
                        let bw = &mut bwd_pred[..n];
                        mc_block_sub_into(
                            ctx.ref_bwd.expect("bwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_bwd,
                            sp,
                            bw,
                        );
                        let mut fwd = [0u8; MAX_BLOCK_PIXELS];
                        mc_block_sub_into(
                            ctx.ref_fwd.expect("fwd ref"),
                            bx,
                            by,
                            g.w,
                            g.h,
                            b.mv_fwd,
                            sp,
                            &mut fwd[..n],
                        );
                        bi_average_into(&fwd[..n], bw, bp);
                    }
                };
                for y in 0..g.h {
                    pred16[(g.dy + y) * MB_SIZE + g.dx..][..g.w]
                        .copy_from_slice(&bp[y * g.w..][..g.w]);
                }
            }
            code_residual_and_recon(
                w, recon, mb_x, mb_y, &cur_block, &pred16, qp, false, prev_qp,
            );
            let rep_fwd = blocks
                .iter()
                .find(|b| b.dir != PredDir::Backward)
                .map(|b| b.mv_fwd);
            let rep_bwd = blocks
                .iter()
                .find(|b| is_b && b.dir != PredDir::Forward)
                .map(|b| b.mv_bwd);
            states[mb] = MbState {
                coded: true,
                skip: false,
                intra: false,
                mv_fwd: rep_fwd,
                mv_bwd: rep_bwd,
                mvd_mag: first_mvd_mag,
            };
            intra_flag = false;
            skip_flag = false;
        }
    }
    (deps, intra_flag, skip_flag)
}

fn area_frac(w: usize, h: usize) -> f64 {
    (w * h) as f64 / 256.0
}

/// Records compensation dependencies for one motion-compensated block:
/// weight `scale` split across the source macroblocks by overlap pixels.
/// Half-pel vectors widen the referenced footprint by one pixel per
/// fractional axis; normalising by the rect's own area keeps the incoming
/// weights summing to `scale`.
#[allow(clippy::too_many_arguments)]
fn push_mc_deps(
    deps: &mut Vec<Dependency>,
    grid: &MbGrid,
    src_frame: usize,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    mv: MotionVector,
    scale: f64,
    subpel: bool,
) {
    let rect = ref_rect(x, y, w, h, mv, subpel);
    let total = rect.area() as f64;
    for o in grid.overlaps(rect) {
        deps.push(Dependency {
            frame: src_frame,
            mb: o.mb_index,
            weight: scale * o.pixels as f64 / total,
        });
    }
}

// ------------------------------------------------------- mode decision --

/// State-independent per-macroblock probes, computed from the source and
/// reference planes only — never from neighbouring macroblock decisions —
/// so a whole frame's worth computes in parallel before the sequential
/// syntax/reconstruction pass consumes them bit-identically.
struct MbCandidates {
    /// Per-MB QP after motion-adaptive quantisation.
    qp: u8,
    /// Best intra-16x16 probe: (mode, cost at this MB's λ).
    best_intra: (IntraMode, u64),
    /// Intra-4x4 probe cost at this MB's λ.
    intra4_cost: u64,
    /// Backward 16x16 full search (B frames), when precomputed. `None`
    /// means "compute lazily in `decide_mode`" — done when running
    /// single-threaded, where speculative search for macroblocks that end
    /// up skipped would be pure overhead.
    bwd_whole: Option<SearchResult>,
    /// Early-exit stats of the precomputed backward search. Merged into the
    /// frame totals only when `decide_mode` consumes `bwd_whole`, so the
    /// counters match the lazy single-threaded path exactly.
    bwd_stats: SearchStats,
}

fn mb_candidates(
    ctx: &FrameCtx<'_>,
    mb: usize,
    slice_top_row: usize,
    base_qp: u8,
    with_bwd: bool,
) -> MbCandidates {
    let grid = ctx.grid;
    let (col, row) = grid.mb_position(mb);
    let (mb_x, mb_y) = (col * MB_SIZE, row * MB_SIZE);
    let nb = neighbors(grid, mb, slice_top_row);
    let avail = IntraAvail {
        left: nb.left.is_some(),
        top: nb.above.is_some(),
    };
    let inter_allowed = ctx.ref_fwd.is_some();

    let mut cur_block = [0u8; 256];
    ctx.cur.copy_block(
        mb_x as isize,
        mb_y as isize,
        MB_SIZE,
        MB_SIZE,
        &mut cur_block,
    );

    // --- per-MB QP (CRF-like motion-adaptive quantisation) ---
    let mut qp = base_qp;
    if ctx.cfg.adaptive_qp && inter_allowed {
        // Only the threshold comparison matters, so the SAD can stop as
        // soon as it exceeds the activity cutoff (decision-identical).
        const ACTIVITY_CUTOFF: u64 = 12 * 256;
        let activity = ctx.cur.sad_bounded(
            mb_x,
            mb_y,
            MB_SIZE,
            MB_SIZE,
            ctx.ref_fwd.expect("inter_allowed"),
            mb_x as isize,
            mb_y as isize,
            ACTIVITY_CUTOFF,
        );
        if activity > ACTIVITY_CUTOFF {
            qp = (qp + 2).min(MAX_QP);
        }
    }
    let lam = lambda(qp);

    // Intra candidate (always available). The cost probe predicts from the
    // *source* plane — a standard encoder shortcut (the real prediction in
    // encode_mb uses the reconstruction); this only affects mode choice,
    // not correctness.
    let mut best_intra = (IntraMode::Dc, u64::MAX);
    for m in avail.legal_modes() {
        let pred = predict_intra16(ctx.cur, mb_x, mb_y, avail, m);
        let sad = vapp_media::kernels::sad_slices(&cur_block, &pred);
        let cost = sad + lam * if m == IntraMode::Dc { 4 } else { 6 };
        if cost < best_intra.1 {
            best_intra = (m, cost);
        }
    }
    // Intra 4x4 candidate: per-block best mode against source neighbours,
    // plus the signalling cost of 16 mode symbols.
    let intra4_cost = {
        let mut total = lam * 16 * 3;
        for blk in 0..16 {
            let bx = mb_x + (blk % 4) * 4;
            let by = mb_y + (blk / 4) * 4;
            let a4 = Intra4Avail {
                left: blk % 4 > 0 || avail.left,
                top: blk / 4 > 0 || avail.top,
            };
            let mut best = u64::MAX;
            for m in a4.legal_modes() {
                let pred = predict_intra4(ctx.cur, bx, by, a4, m);
                let mut sad = 0u64;
                for y in 0..4 {
                    let i = ((blk / 4) * 4 + y) * MB_SIZE + (blk % 4) * 4;
                    sad +=
                        vapp_media::kernels::sad_slices(&cur_block[i..i + 4], &pred[y * 4..][..4]);
                }
                best = best.min(sad);
            }
            total += best;
        }
        total
    };

    // Backward 16x16 full search: centered on the zero vector, so it
    // reads only the source and backward reference planes.
    let mut bwd_stats = SearchStats::default();
    let bwd_whole = if with_bwd {
        ctx.ref_bwd.map(|rb| {
            search_sub_stats(
                ctx.cur,
                rb,
                mb_x,
                mb_y,
                MB_SIZE,
                MB_SIZE,
                MotionVector::ZERO,
                ctx.cfg.search_range,
                ctx.cfg.subpel,
                &mut bwd_stats,
            )
        })
    } else {
        None
    };

    MbCandidates {
        qp,
        best_intra,
        intra4_cost,
        bwd_whole,
        bwd_stats,
    }
}

#[allow(clippy::too_many_arguments)]
fn decide_mode(
    ctx: &FrameCtx<'_>,
    mb_x: usize,
    mb_y: usize,
    cur_block: &[u8; 256],
    cand: &MbCandidates,
    qp: u8,
    lam: u64,
    pred_fwd: MotionVector,
    stats: &mut SearchStats,
) -> MbMode {
    let is_b = ctx.plan.frame_type == FrameType::B;

    let best_intra = cand.best_intra;
    let intra4_cost = cand.intra4_cost;
    let intra4_better = intra4_cost < best_intra.1;
    let best_intra_cost = best_intra.1.min(intra4_cost);

    let Some(ref_fwd) = ctx.ref_fwd else {
        return if intra4_better {
            MbMode::Intra4
        } else {
            MbMode::Intra { mode: best_intra.0 }
        };
    };

    // One compensation scratch per macroblock task: every candidate probe
    // below reuses it instead of allocating a Vec per candidate.
    let mut scratch = [0u8; MAX_BLOCK_PIXELS];

    // Skip candidate: prediction with the predicted MV and zero residual.
    {
        mc_block_sub_into(
            ref_fwd,
            mb_x,
            mb_y,
            MB_SIZE,
            MB_SIZE,
            pred_fwd,
            ctx.cfg.subpel,
            &mut scratch,
        );
        let sad = vapp_media::kernels::sad_slices(cur_block, &scratch);
        // The approximability-aware decision (paper §8) skips whenever the
        // residual would quantise to zero at a *coarser* QP — unreferenced
        // B macroblocks get the coarsest test since their damage cannot
        // propagate.
        let skip_qp = if ctx.cfg.approx_bias {
            (qp + if is_b { 10 } else { 6 }).min(MAX_QP)
        } else {
            qp
        };
        if sad < 6000 && residual_is_zero(cur_block, &scratch, skip_qp) {
            return MbMode::Skip { mv: pred_fwd };
        }
    }

    // Inter: 16x16 search, then partition refinement.
    let sp = ctx.cfg.subpel;
    let whole = search_sub_stats(
        ctx.cur,
        ref_fwd,
        mb_x,
        mb_y,
        MB_SIZE,
        MB_SIZE,
        pred_fwd,
        ctx.cfg.search_range,
        sp,
        stats,
    );
    // Use the precomputed backward search when the candidate pass ran it
    // (merging its early-exit stats only now, so skipped macroblocks never
    // contribute and the counters are worker-count-invariant); fall back to
    // the identical inline search otherwise.
    let bwd_whole = match cand.bwd_whole {
        some @ Some(_) => {
            stats.merge(cand.bwd_stats);
            some
        }
        None => ctx.ref_bwd.map(|rb| {
            search_sub_stats(
                ctx.cur,
                rb,
                mb_x,
                mb_y,
                MB_SIZE,
                MB_SIZE,
                MotionVector::ZERO,
                ctx.cfg.search_range,
                sp,
                stats,
            )
        }),
    };

    let shapes = [
        PartShape::P16x16,
        PartShape::P16x8,
        PartShape::P8x16,
        PartShape::P8x8,
    ];
    let mut best_inter: Option<(PartitionLayout, Vec<InterBlock>, u64)> = None;
    // The P8x8 sub-shape trials and the final P8x8 block list run the same
    // (geometry, whole.mv, range-2) forward searches; cache the trial
    // results so the winning layout's blocks are never searched twice. The
    // search is deterministic, so replaying a cached result is
    // decision-identical to recomputing it.
    let mut p8_cache = [(BlockGeom::default(), whole); 36];
    let mut p8_len = 0usize;
    for shape in shapes {
        let mut layout = PartitionLayout {
            shape,
            subs: [SubShape::S8x8; 4],
        };
        if shape == PartShape::P8x8 {
            // Choose each quadrant's sub-shape independently.
            for q in 0..4 {
                let mut best_sub = (SubShape::S8x8, u64::MAX);
                for sub in [
                    SubShape::S8x8,
                    SubShape::S8x4,
                    SubShape::S4x8,
                    SubShape::S4x4,
                ] {
                    let trial = PartitionLayout {
                        shape: PartShape::P8x8,
                        subs: [sub; 4],
                    };
                    // Cost just for this quadrant's blocks. Block costs only
                    // ever add, and the comparison below is strict, so a
                    // trial whose partial cost already reaches the best can
                    // be abandoned: it cannot win, and its remaining blocks
                    // are only ever looked up in the cache if their
                    // sub-shape won (which requires the full trial to have
                    // run).
                    let mut cost = 0u64;
                    let mut abandoned = false;
                    for g in trial
                        .blocks()
                        .iter()
                        .filter(|g| g.dx / 8 == q % 2 && g.dy / 8 == q / 2)
                    {
                        if cost >= best_sub.1 {
                            abandoned = true;
                            break;
                        }
                        let r = search_sub_stats(
                            ctx.cur,
                            ref_fwd,
                            mb_x + g.dx,
                            mb_y + g.dy,
                            g.w,
                            g.h,
                            whole.mv,
                            2,
                            sp,
                            stats,
                        );
                        p8_cache[p8_len] = (*g, r);
                        p8_len += 1;
                        cost += r.sad + lam * 10;
                    }
                    if !abandoned && cost < best_sub.1 {
                        best_sub = (sub, cost);
                    }
                }
                layout.subs[q] = best_sub.0;
            }
        }
        let geoms = layout.blocks();
        let mut blocks = Vec::with_capacity(geoms.len());
        let mut cost = lam * 4; // shape signalling
        for g in &geoms {
            let bx = mb_x + g.dx;
            let by = mb_y + g.dy;
            let refine = if *g == geoms[0] && shape == PartShape::P16x16 {
                0
            } else {
                2
            };
            let fwd = if refine == 0 {
                whole
            } else if let Some(&(_, r)) = p8_cache[..p8_len].iter().find(|(cg, _)| cg == g) {
                r
            } else {
                search_sub_stats(
                    ctx.cur, ref_fwd, bx, by, g.w, g.h, whole.mv, refine, sp, stats,
                )
            };
            let mut dir = PredDir::Forward;
            let mut chosen_sad = fwd.sad;
            let mut mv_b = MotionVector::ZERO;
            if let (Some(rb), Some(bw)) = (ctx.ref_bwd, bwd_whole) {
                let bwd = search_sub_stats(ctx.cur, rb, bx, by, g.w, g.h, bw.mv, 2, sp, stats);
                if bwd.sad + lam * 2 < chosen_sad {
                    dir = PredDir::Backward;
                    chosen_sad = bwd.sad;
                }
                // Bi-prediction. The decision is `bi_sad + lam*6 <
                // chosen_sad`, so the SAD may stop once it exceeds
                // `chosen_sad - lam*6`: past that the comparison is already
                // lost (and when `lam*6 >= chosen_sad` it is unwinnable, so
                // any partial value keeps the decision identical).
                let n = g.w * g.h;
                let mut fwd_pred = [0u8; MAX_BLOCK_PIXELS];
                let mut bi = [0u8; MAX_BLOCK_PIXELS];
                mc_block_sub_into(ref_fwd, bx, by, g.w, g.h, fwd.mv, sp, &mut fwd_pred[..n]);
                mc_block_sub_into(rb, bx, by, g.w, g.h, bwd.mv, sp, &mut scratch[..n]);
                bi_average_into(&fwd_pred[..n], &scratch[..n], &mut bi[..n]);
                let bi_bound = chosen_sad.saturating_sub(lam * 6);
                let bi_sad = sad_against_bounded(ctx.cur, bx, by, g.w, g.h, &bi[..n], bi_bound);
                if bi_sad + lam * 6 < chosen_sad {
                    dir = PredDir::Bi;
                    chosen_sad = bi_sad;
                } else if bi_sad > bi_bound {
                    stats.early_exits += 1;
                }
                mv_b = bwd.mv;
            }
            cost += chosen_sad + lam * (10 + if is_b { 2 } else { 0 });
            blocks.push(InterBlock {
                dir,
                mv_fwd: fwd.mv,
                mv_bwd: mv_b,
            });
        }
        if best_inter.as_ref().is_none_or(|b| cost < b.2) {
            best_inter = Some((layout, blocks, cost));
        }
    }
    let (layout, blocks, inter_cost) = best_inter.expect("at least one shape evaluated");

    // Bias against intra in inter frames: intra costs more bits and, for
    // VideoApp, creates in-frame dependency chains. The approximability-
    // aware mode penalises intra harder (spatial dependencies raise the
    // importance of every preceding macroblock).
    let intra_penalty = if ctx.cfg.approx_bias {
        lam * 48
    } else {
        lam * 8
    };
    if best_intra_cost + intra_penalty < inter_cost {
        if intra4_better {
            MbMode::Intra4
        } else {
            MbMode::Intra { mode: best_intra.0 }
        }
    } else {
        MbMode::Inter { layout, blocks }
    }
}

/// Whether the residual between `cur` and `pred` quantises to all-zero at
/// `qp` (the skip test).
fn residual_is_zero(cur: &[u8; 256], pred: &[u8; 256], qp: u8) -> bool {
    for by in 0..4 {
        for bx in 0..4 {
            let mut blk: Block4x4 = [0; 16];
            for y in 0..4 {
                for x in 0..4 {
                    let i = (by * 4 + y) * MB_SIZE + bx * 4 + x;
                    blk[y * 4 + x] = cur[i] as i32 - pred[i] as i32;
                }
            }
            let q = forward_quant(&blk, qp, false);
            if q.iter().any(|&v| v != 0) {
                return false;
            }
        }
    }
    true
}

// -------------------------------------------------- residual + recon ----

/// Codes the QP delta, CBP and residual blocks, and writes the
/// reconstruction into `recon`. Shared by intra and inter macroblocks.
#[allow(clippy::too_many_arguments)]
fn code_residual_and_recon<W: SymbolWriter>(
    w: &mut W,
    recon: &mut Plane,
    mb_x: usize,
    mb_y: usize,
    cur: &[u8; 256],
    pred: &[u8; 256],
    qp: u8,
    intra: bool,
    prev_qp: &mut u8,
) {
    let _transform_span = vapp_obs::span!("codec.mb.transform");
    // QP delta (predictive metadata coding, paper §2.3.2).
    let delta = qp as i32 - *prev_qp as i32;
    w.put_sint(Element::QpDelta, 0, delta);
    *prev_qp = qp;

    // Transform and quantise all 16 4x4 blocks.
    let mut levels = [[0i32; 16]; 16];
    let mut coded4 = [false; 16];
    for blk in 0..16 {
        let (bx, by) = (blk % 4, blk / 4);
        let mut r: Block4x4 = [0; 16];
        for y in 0..4 {
            for x in 0..4 {
                let i = (by * 4 + y) * MB_SIZE + bx * 4 + x;
                r[y * 4 + x] = cur[i] as i32 - pred[i] as i32;
            }
        }
        let q = forward_quant(&r, qp, intra);
        coded4[blk] = q.iter().any(|&v| v != 0);
        levels[blk] = q;
    }

    // CBP per 8x8 quadrant.
    for q in 0..4 {
        let any = quadrant_blocks(q).iter().any(|&b| coded4[b]);
        w.put_flag(Element::Cbp, q, any);
    }
    for q in 0..4 {
        let blocks = quadrant_blocks(q);
        if !blocks.iter().any(|&b| coded4[b]) {
            continue;
        }
        for (s, &blk) in blocks.iter().enumerate() {
            w.put_flag(Element::Blk4, s, coded4[blk]);
            if coded4[blk] {
                code_block_coeffs(w, &levels[blk]);
            }
        }
    }

    // Reconstruct.
    for blk in 0..16 {
        let (bx, by) = (blk % 4, blk / 4);
        let res = if coded4[blk] {
            dequant_inverse(&levels[blk], qp)
        } else {
            [0; 16]
        };
        for y in 0..4 {
            for x in 0..4 {
                let i = (by * 4 + y) * MB_SIZE + bx * 4 + x;
                let v = (pred[i] as i32 + res[y * 4 + x]).clamp(0, 255) as u8;
                recon.set(mb_x + bx * 4 + x, mb_y + by * 4 + y, v);
            }
        }
    }
}

/// Codes an intra 4x4 macroblock: per-block mode choice against the
/// progressive reconstruction, interleaved residual coding (the next
/// block predicts from this block's reconstruction).
#[allow(clippy::too_many_arguments)]
fn code_intra4_mb<W: SymbolWriter>(
    w: &mut W,
    recon: &mut Plane,
    cur_plane: &Plane,
    mb_x: usize,
    mb_y: usize,
    avail: IntraAvail,
    qp: u8,
    prev_qp: &mut u8,
) {
    let _transform_span = vapp_obs::span!("codec.mb.transform");
    let delta = qp as i32 - *prev_qp as i32;
    w.put_sint(Element::QpDelta, 0, delta);
    *prev_qp = qp;

    for blk in 0..16 {
        let bx = mb_x + (blk % 4) * 4;
        let by = mb_y + (blk / 4) * 4;
        let a4 = Intra4Avail {
            left: blk % 4 > 0 || avail.left,
            top: blk / 4 > 0 || avail.top,
        };
        // Choose the best mode against the *reconstruction* (what the
        // decoder will predict from).
        let mut best = (Intra4Mode::Dc, u64::MAX, [0u8; 16]);
        for m in a4.legal_modes() {
            let pred = predict_intra4(recon, bx, by, a4, m);
            let mut sad = 0u64;
            for y in 0..4 {
                for x in 0..4 {
                    sad += (cur_plane.get(bx + x, by + y) as i32 - pred[y * 4 + x] as i32)
                        .unsigned_abs() as u64;
                }
            }
            if sad < best.1 {
                best = (m, sad, pred);
            }
        }
        w.put_uint(Element::Intra4Mode, 0, best.0.to_index());

        // Residual for this block.
        let mut r: Block4x4 = [0; 16];
        for y in 0..4 {
            for x in 0..4 {
                r[y * 4 + x] = cur_plane.get(bx + x, by + y) as i32 - best.2[y * 4 + x] as i32;
            }
        }
        let levels = forward_quant(&r, qp, true);
        let coded = levels.iter().any(|&v| v != 0);
        w.put_flag(Element::Blk4, blk % 4, coded);
        if coded {
            code_block_coeffs(w, &levels);
        }
        // Reconstruct immediately so the next block predicts from it.
        let res = if coded {
            dequant_inverse(&levels, qp)
        } else {
            [0; 16]
        };
        for y in 0..4 {
            for x in 0..4 {
                let v = (best.2[y * 4 + x] as i32 + res[y * 4 + x]).clamp(0, 255) as u8;
                recon.set(bx + x, by + y, v);
            }
        }
    }
}

/// The four 4x4 block indices of 8x8 quadrant `q` (row-major MB layout).
pub(crate) fn quadrant_blocks(q: usize) -> [usize; 4] {
    let base = (q / 2) * 8 + (q % 2) * 2;
    [base, base + 1, base + 4, base + 5]
}

/// Codes one 4x4 block's coefficients: zigzag significance map with
/// interleaved levels and last flags.
fn code_block_coeffs<W: SymbolWriter>(w: &mut W, levels: &Block4x4) {
    let zz = to_zigzag(levels);
    let last = (0..16)
        .rev()
        .find(|&i| zz[i] != 0)
        .expect("coded block has a coefficient");
    for (i, &z) in zz.iter().enumerate() {
        let sig = z != 0;
        w.put_flag(Element::Sig, i.min(14), sig);
        if sig {
            w.put_uint(Element::Level, usize::from(i != 0), z.unsigned_abs() - 1);
            w.put_sign(z < 0);
            let is_last = i == last;
            w.put_flag(Element::Last, i.min(14), is_last);
            if is_last {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gop_all_p_when_no_bframes() {
        let plans = plan_gop(5, 100, 0);
        assert_eq!(plans.len(), 5);
        assert_eq!(plans[0].frame_type, FrameType::I);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.coding, i);
            assert_eq!(p.display, i);
            if i > 0 {
                assert_eq!(p.frame_type, FrameType::P);
                assert_eq!(p.ref_fwd, Some(i - 1));
            }
        }
    }

    #[test]
    fn gop_with_bframes_reorders() {
        let plans = plan_gop(7, 100, 2);
        // Display: I0 [P3: B1 B2] [P6: B4 B5]
        let order: Vec<(usize, FrameType)> =
            plans.iter().map(|p| (p.display, p.frame_type)).collect();
        assert_eq!(
            order,
            vec![
                (0, FrameType::I),
                (3, FrameType::P),
                (1, FrameType::B),
                (2, FrameType::B),
                (6, FrameType::P),
                (4, FrameType::B),
                (5, FrameType::B),
            ]
        );
        // B frames reference both anchors.
        let b1 = plans.iter().find(|p| p.display == 1).unwrap();
        assert_eq!(b1.ref_fwd, Some(0));
        assert_eq!(b1.ref_bwd, Some(1)); // coding index of P3
    }

    #[test]
    fn gop_inserts_i_frames_at_keyint() {
        let plans = plan_gop(10, 4, 0);
        for p in &plans {
            let expect = if p.display % 4 == 0 {
                FrameType::I
            } else {
                FrameType::P
            };
            assert_eq!(p.frame_type, expect, "display {}", p.display);
        }
    }

    #[test]
    fn gop_covers_every_display_frame_once() {
        for (n, key, b) in [(1, 8, 2), (2, 8, 2), (13, 5, 3), (30, 7, 1), (9, 3, 0)] {
            let plans = plan_gop(n, key, b);
            assert_eq!(plans.len(), n, "n={n} key={key} b={b}");
            let mut seen = vec![false; n];
            for p in &plans {
                assert!(!seen[p.display]);
                seen[p.display] = true;
                // References must already be coded.
                if let Some(r) = p.ref_fwd {
                    assert!(r < p.coding);
                }
                if let Some(r) = p.ref_bwd {
                    assert!(r < p.coding);
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn slice_rows_partition_evenly() {
        assert_eq!(slice_rows(6, 1), vec![(0, 6)]);
        assert_eq!(slice_rows(6, 2), vec![(0, 3), (3, 6)]);
        assert_eq!(slice_rows(7, 3), vec![(0, 3), (3, 5), (5, 7)]);
        // More slices than rows: clamped.
        assert_eq!(slice_rows(2, 5), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn pad_and_crop_roundtrip() {
        let mut p = Plane::new(20, 13);
        for y in 0..13 {
            for x in 0..20 {
                p.set(x, y, ((x * 7 + y * 3) % 256) as u8);
            }
        }
        let padded = pad_to_mb(&p);
        assert_eq!(padded.width(), 32);
        assert_eq!(padded.height(), 16);
        assert_eq!(crop(&padded, 20, 13), p);
        // Padding replicates edges.
        assert_eq!(padded.get(31, 5), p.get(19, 5));
        assert_eq!(padded.get(4, 15), p.get(4, 12));
    }

    #[test]
    fn quadrant_blocks_cover_all_sixteen() {
        let mut seen = [false; 16];
        for q in 0..4 {
            for b in quadrant_blocks(q) {
                assert!(!seen[b]);
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn frame_qp_offsets() {
        let cfg = EncoderConfig::default();
        assert_eq!(frame_qp(&cfg, FrameType::I), 22);
        assert_eq!(frame_qp(&cfg, FrameType::P), 24);
        assert_eq!(frame_qp(&cfg, FrameType::B), 26);
        let extreme = EncoderConfig { crf: 0, ..cfg };
        assert_eq!(frame_qp(&extreme, FrameType::I), 0);
    }
}
