//! Intra 16x16 prediction (spatial prediction, paper §2.3.2–2.3.3).
//!
//! Besides producing the prediction itself, this module reports *which
//! neighbouring macroblocks supplied the reference pixels* and in what
//! proportion — the spatial compensation dependencies VideoApp records
//! (paper §4.1: "for certain prediction directions, the set of extrapolated
//! pixels may belong to multiple MBs … distribute the weight of 1 across
//! all MBs proportionally to the number of pixels they contribute").

use crate::types::{Intra4Mode, IntraMode};
use vapp_media::{MbGrid, Plane, MB_SIZE};

/// Which intra reference borders exist for the current macroblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntraAvail {
    /// The macroblock to the left is available (same slice).
    pub left: bool,
    /// The macroblock above is available (same slice).
    pub top: bool,
}

impl IntraAvail {
    /// Modes that may be used given these borders. DC is always legal.
    pub fn legal_modes(self) -> Vec<IntraMode> {
        let mut modes = vec![IntraMode::Dc];
        if self.top {
            modes.push(IntraMode::Vertical);
        }
        if self.left {
            modes.push(IntraMode::Horizontal);
        }
        if self.top && self.left {
            modes.push(IntraMode::Plane);
        }
        modes
    }
}

/// Predicts a 16x16 macroblock at pixel origin `(mb_x, mb_y)` from the
/// reconstructed plane. Returns the 256 predicted pixels row-major.
///
/// Illegal modes for the given availability degrade to DC — this keeps the
/// decoder total under corrupt mode values.
pub fn predict_intra16(
    recon: &Plane,
    mb_x: usize,
    mb_y: usize,
    avail: IntraAvail,
    mode: IntraMode,
) -> [u8; 256] {
    let mode = if avail.legal_modes().contains(&mode) {
        mode
    } else {
        IntraMode::Dc
    };
    let x = mb_x as isize;
    let y = mb_y as isize;
    let mut out = [0u8; 256];
    match mode {
        IntraMode::Dc => {
            let mut sum = 0u32;
            let mut count = 0u32;
            if avail.top {
                for i in 0..MB_SIZE {
                    sum += recon.sample(x + i as isize, y - 1) as u32;
                }
                count += MB_SIZE as u32;
            }
            if avail.left {
                for i in 0..MB_SIZE {
                    sum += recon.sample(x - 1, y + i as isize) as u32;
                }
                count += MB_SIZE as u32;
            }
            let dc = (sum + count / 2)
                .checked_div(count)
                .map_or(128, |v| v as u8);
            out.fill(dc);
        }
        IntraMode::Vertical => {
            for col in 0..MB_SIZE {
                let v = recon.sample(x + col as isize, y - 1);
                for row in 0..MB_SIZE {
                    out[row * MB_SIZE + col] = v;
                }
            }
        }
        IntraMode::Horizontal => {
            for row in 0..MB_SIZE {
                let v = recon.sample(x - 1, y + row as isize);
                for col in 0..MB_SIZE {
                    out[row * MB_SIZE + col] = v;
                }
            }
        }
        IntraMode::Plane => {
            // H.264 Intra_16x16 plane prediction.
            let mut h = 0i32;
            let mut v = 0i32;
            for i in 0..8i32 {
                h += (i + 1)
                    * (recon.sample(x + 8 + i as isize, y - 1) as i32
                        - recon.sample(x + 6 - i as isize, y - 1) as i32);
                v += (i + 1)
                    * (recon.sample(x - 1, y + 8 + i as isize) as i32
                        - recon.sample(x - 1, y + 6 - i as isize) as i32);
            }
            let a = 16 * (recon.sample(x - 1, y + 15) as i32 + recon.sample(x + 15, y - 1) as i32);
            let b = (5 * h + 32) >> 6;
            let c = (5 * v + 32) >> 6;
            for row in 0..MB_SIZE as i32 {
                for col in 0..MB_SIZE as i32 {
                    let p = (a + b * (col - 7) + c * (row - 7) + 16) >> 5;
                    out[(row as usize) * MB_SIZE + col as usize] = p.clamp(0, 255) as u8;
                }
            }
        }
    }
    out
}

/// Which intra references exist for one 4x4 block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Intra4Avail {
    /// Pixels to the left of the block are reconstructed.
    pub left: bool,
    /// Pixels above the block are reconstructed.
    pub top: bool,
}

impl Intra4Avail {
    /// Modes usable with these borders (DC always; diagonal modes need
    /// the full border set they extrapolate from).
    pub fn legal_modes(self) -> Vec<Intra4Mode> {
        let mut modes = vec![Intra4Mode::Dc];
        if self.top {
            modes.push(Intra4Mode::Vertical);
            modes.push(Intra4Mode::DiagDownLeft);
        }
        if self.left {
            modes.push(Intra4Mode::Horizontal);
        }
        if self.top && self.left {
            modes.push(Intra4Mode::DiagDownRight);
        }
        modes
    }
}

/// Predicts one 4x4 block at pixel origin `(x, y)` from the reconstructed
/// plane. Top-right extension pixels beyond the block's own top row are
/// replicated from the last top pixel — a deterministic simplification of
/// H.264's availability rules that encoder and decoder share.
///
/// Illegal modes degrade to DC (keeps the decoder total under corruption).
pub fn predict_intra4(
    recon: &Plane,
    x: usize,
    y: usize,
    avail: Intra4Avail,
    mode: Intra4Mode,
) -> [u8; 16] {
    let mode = if avail.legal_modes().contains(&mode) {
        mode
    } else {
        Intra4Mode::Dc
    };
    let xi = x as isize;
    let yi = y as isize;
    // Border pixels. t[0..4] is the row above; t[4..8] replicates t[3]
    // (see doc comment). l[0..4] is the column to the left; c the corner.
    let mut t = [0u8; 8];
    for (i, tv) in t.iter_mut().enumerate().take(4) {
        *tv = recon.sample(xi + i as isize, yi - 1);
    }
    for i in 4..8 {
        t[i] = t[3];
    }
    let mut l = [0u8; 4];
    for (i, lv) in l.iter_mut().enumerate() {
        *lv = recon.sample(xi - 1, yi + i as isize);
    }
    let c = recon.sample(xi - 1, yi - 1);

    let mut out = [0u8; 16];
    match mode {
        Intra4Mode::Dc => {
            let mut sum = 0u32;
            let mut count = 0u32;
            if avail.top {
                sum += t[..4].iter().map(|&v| v as u32).sum::<u32>();
                count += 4;
            }
            if avail.left {
                sum += l.iter().map(|&v| v as u32).sum::<u32>();
                count += 4;
            }
            let dc = (sum + count / 2)
                .checked_div(count)
                .map_or(128, |v| v as u8);
            out.fill(dc);
        }
        Intra4Mode::Vertical => {
            for row in 0..4 {
                out[row * 4..row * 4 + 4].copy_from_slice(&t[..4]);
            }
        }
        Intra4Mode::Horizontal => {
            for row in 0..4 {
                out[row * 4..row * 4 + 4].fill(l[row]);
            }
        }
        Intra4Mode::DiagDownLeft => {
            for row in 0..4 {
                for col in 0..4 {
                    let i = row + col;
                    let v = if i == 6 {
                        (t[6] as u16 + 3 * t[7] as u16 + 2) >> 2
                    } else {
                        (t[i] as u16 + 2 * t[i + 1] as u16 + t[i + 2] as u16 + 2) >> 2
                    };
                    out[row * 4 + col] = v as u8;
                }
            }
        }
        Intra4Mode::DiagDownRight => {
            // H.264 DDR with border samples t (top), l (left), c (corner).
            let filt3 = |a: u8, b: u8, m: u8| ((a as u16 + 2 * m as u16 + b as u16 + 2) >> 2) as u8;
            for row in 0..4i32 {
                for col in 0..4i32 {
                    let d = col - row;
                    let v = match d.cmp(&0) {
                        std::cmp::Ordering::Greater => {
                            // Above the diagonal: from the top row.
                            let k = (d - 1) as usize;
                            if k == 0 {
                                filt3(c, t[1], t[0])
                            } else {
                                filt3(t[k - 1], t[k + 1], t[k])
                            }
                        }
                        std::cmp::Ordering::Equal => filt3(t[0], l[0], c),
                        std::cmp::Ordering::Less => {
                            let k = (-d - 1) as usize;
                            if k == 0 {
                                filt3(c, l[1], l[0])
                            } else {
                                filt3(l[k - 1], l[(k + 1).min(3)], l[k])
                            }
                        }
                    };
                    out[(row * 4 + col) as usize] = v;
                }
            }
        }
    }
    out
}

/// Spatial dependency sources of an intra macroblock: `(source MB index,
/// weight)` pairs with weights summing to 1 (when any reference exists).
///
/// Attribution follows pixel counts: vertical uses the 16 pixels above
/// (the MB above), horizontal the 16 to the left, DC both rows (half
/// each), plane additionally the top-left corner pixel.
pub fn intra_sources(
    grid: &MbGrid,
    mb_index: usize,
    avail: IntraAvail,
    mode: IntraMode,
) -> Vec<(usize, f64)> {
    let mode = if avail.legal_modes().contains(&mode) {
        mode
    } else {
        IntraMode::Dc
    };
    let (col, row) = grid.mb_position(mb_index);
    let left = (col > 0).then(|| grid.mb_index(col - 1, row));
    let above = (row > 0).then(|| grid.mb_index(col, row - 1));
    let above_left = (col > 0 && row > 0).then(|| grid.mb_index(col - 1, row - 1));

    match mode {
        IntraMode::Dc => match (
            avail.left.then_some(left).flatten(),
            avail.top.then_some(above).flatten(),
        ) {
            (Some(l), Some(a)) => vec![(a, 0.5), (l, 0.5)],
            (Some(l), None) => vec![(l, 1.0)],
            (None, Some(a)) => vec![(a, 1.0)],
            (None, None) => Vec::new(),
        },
        IntraMode::Vertical => above.map(|a| vec![(a, 1.0)]).unwrap_or_default(),
        IntraMode::Horizontal => left.map(|l| vec![(l, 1.0)]).unwrap_or_default(),
        IntraMode::Plane => {
            // 16 top pixels + 16 left pixels + 1 corner = 33 contributors.
            let mut out = Vec::new();
            if let Some(a) = above {
                out.push((a, 16.0 / 33.0));
            }
            if let Some(l) = left {
                out.push((l, 16.0 / 33.0));
            }
            if let Some(c) = above_left {
                out.push((c, 1.0 / 33.0));
            } else if let Some(first) = out.first_mut() {
                // Corner unavailable: fold its weight into the first source
                // so the total stays 1.
                first.1 += 1.0 / 33.0;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_plane() -> Plane {
        let mut p = Plane::new(48, 48);
        for y in 0..48 {
            for x in 0..48 {
                p.set(x, y, ((x * 3 + y * 5) % 256) as u8);
            }
        }
        p
    }

    const BOTH: IntraAvail = IntraAvail {
        left: true,
        top: true,
    };
    const NONE: IntraAvail = IntraAvail {
        left: false,
        top: false,
    };

    #[test]
    fn dc_without_neighbors_is_mid_gray() {
        let p = ramp_plane();
        let pred = predict_intra16(&p, 16, 16, NONE, IntraMode::Dc);
        assert!(pred.iter().all(|&v| v == 128));
    }

    #[test]
    fn vertical_copies_top_row() {
        let p = ramp_plane();
        let pred = predict_intra16(&p, 16, 16, BOTH, IntraMode::Vertical);
        for col in 0..16 {
            let expect = p.get(16 + col, 15);
            for row in 0..16 {
                assert_eq!(pred[row * 16 + col], expect);
            }
        }
    }

    #[test]
    fn horizontal_copies_left_column() {
        let p = ramp_plane();
        let pred = predict_intra16(&p, 16, 16, BOTH, IntraMode::Horizontal);
        for row in 0..16 {
            let expect = p.get(15, 16 + row);
            for col in 0..16 {
                assert_eq!(pred[row * 16 + col], expect);
            }
        }
    }

    #[test]
    fn plane_mode_tracks_linear_gradients_well() {
        // On a perfect gradient, plane prediction should be near-exact.
        let p = ramp_plane();
        let pred = predict_intra16(&p, 16, 16, BOTH, IntraMode::Plane);
        let mut max_err = 0i32;
        for row in 0..16 {
            for col in 0..16 {
                let actual = p.get(16 + col, 16 + row) as i32;
                // Skip wrap-around positions of the % 256 ramp.
                if actual < 16 {
                    continue;
                }
                max_err = max_err.max((pred[row * 16 + col] as i32 - actual).abs());
            }
        }
        assert!(max_err <= 8, "plane err {max_err}");
    }

    #[test]
    fn illegal_mode_degrades_to_dc() {
        let p = ramp_plane();
        let v = predict_intra16(&p, 16, 16, NONE, IntraMode::Vertical);
        let dc = predict_intra16(&p, 16, 16, NONE, IntraMode::Dc);
        assert_eq!(v, dc);
    }

    const BOTH4: Intra4Avail = Intra4Avail {
        left: true,
        top: true,
    };

    #[test]
    fn intra4_dc_without_neighbors_is_mid_gray() {
        let p = ramp_plane();
        let pred = predict_intra4(
            &p,
            20,
            20,
            Intra4Avail {
                left: false,
                top: false,
            },
            Intra4Mode::Dc,
        );
        assert!(pred.iter().all(|&v| v == 128));
    }

    #[test]
    fn intra4_vertical_and_horizontal_copy_borders() {
        let p = ramp_plane();
        let v = predict_intra4(&p, 20, 20, BOTH4, Intra4Mode::Vertical);
        for col in 0..4 {
            let expect = p.get(20 + col, 19);
            for row in 0..4 {
                assert_eq!(v[row * 4 + col], expect);
            }
        }
        let h = predict_intra4(&p, 20, 20, BOTH4, Intra4Mode::Horizontal);
        for row in 0..4 {
            let expect = p.get(19, 20 + row);
            for col in 0..4 {
                assert_eq!(h[row * 4 + col], expect);
            }
        }
    }

    #[test]
    fn intra4_diagonal_modes_track_diagonal_gradients() {
        // A diagonal ramp: DDR should predict it nearly exactly.
        let mut p = Plane::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, ((x as i32 - y as i32) * 8 + 128).clamp(0, 255) as u8);
            }
        }
        let pred = predict_intra4(&p, 16, 16, BOTH4, Intra4Mode::DiagDownRight);
        let mut max_err = 0i32;
        for row in 0..4 {
            for col in 0..4 {
                let actual = p.get(16 + col, 16 + row) as i32;
                max_err = max_err.max((pred[row * 4 + col] as i32 - actual).abs());
            }
        }
        assert!(max_err <= 4, "DDR err {max_err}");
    }

    #[test]
    fn intra4_illegal_mode_degrades_to_dc() {
        let p = ramp_plane();
        let none = Intra4Avail {
            left: false,
            top: false,
        };
        let ddl = predict_intra4(&p, 20, 20, none, Intra4Mode::DiagDownLeft);
        let dc = predict_intra4(&p, 20, 20, none, Intra4Mode::Dc);
        assert_eq!(ddl, dc);
    }

    #[test]
    fn intra4_legal_mode_sets() {
        assert_eq!(
            Intra4Avail {
                left: false,
                top: false
            }
            .legal_modes()
            .len(),
            1
        );
        assert_eq!(
            Intra4Avail {
                left: true,
                top: false
            }
            .legal_modes()
            .len(),
            2
        );
        assert_eq!(
            Intra4Avail {
                left: false,
                top: true
            }
            .legal_modes()
            .len(),
            3
        );
        assert_eq!(BOTH4.legal_modes().len(), 5);
    }

    #[test]
    fn sources_sum_to_one_when_references_exist() {
        let grid = MbGrid::for_frame(64, 64);
        for mode in IntraMode::ALL {
            let s = intra_sources(&grid, 5, BOTH, mode);
            let total: f64 = s.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "{mode:?}: {total}");
        }
    }

    #[test]
    fn sources_point_to_the_right_neighbors() {
        let grid = MbGrid::for_frame(64, 64); // 4 cols
        let s = intra_sources(&grid, 5, BOTH, IntraMode::Vertical);
        assert_eq!(s, vec![(1, 1.0)]);
        let s = intra_sources(&grid, 5, BOTH, IntraMode::Horizontal);
        assert_eq!(s, vec![(4, 1.0)]);
        let s = intra_sources(&grid, 5, BOTH, IntraMode::Plane);
        let mbs: Vec<usize> = s.iter().map(|&(m, _)| m).collect();
        assert_eq!(mbs, vec![1, 4, 0]);
    }

    #[test]
    fn no_sources_without_neighbors() {
        let grid = MbGrid::for_frame(64, 64);
        assert!(intra_sources(&grid, 0, NONE, IntraMode::Dc).is_empty());
    }
}
