//! The H.264 4x4 integer transform pair.
//!
//! Forward: `W = Cf · X · Cfᵀ` with the standard integer core matrix; the
//! scaling normally folded into quantisation lives in
//! [`crate::quant`]. Inverse: the shift-based H.264 inverse transform with
//! final `(x + 32) >> 6` rounding. Encoder reconstruction and decoder use
//! the *same* integer inverse path, so both always agree bit-exactly —
//! which is what makes closed-loop prediction work.

/// A 4x4 block of transform coefficients (or residuals), row-major.
pub type Block4x4 = [i32; 16];

/// Forward 4x4 core transform (no normalisation; see [`crate::quant`]).
pub fn forward4x4(input: &Block4x4) -> Block4x4 {
    let mut tmp = [0i32; 16];
    // Transform rows: Cf * X.
    for col in 0..4 {
        let (a, b, c, d) = (input[col], input[4 + col], input[8 + col], input[12 + col]);
        let s0 = a + d;
        let s1 = b + c;
        let s2 = b - c;
        let s3 = a - d;
        tmp[col] = s0 + s1;
        tmp[4 + col] = 2 * s3 + s2;
        tmp[8 + col] = s0 - s1;
        tmp[12 + col] = s3 - 2 * s2;
    }
    let mut out = [0i32; 16];
    // Transform columns: (Cf * X) * Cf^T.
    for row in 0..4 {
        let base = row * 4;
        let (a, b, c, d) = (tmp[base], tmp[base + 1], tmp[base + 2], tmp[base + 3]);
        let s0 = a + d;
        let s1 = b + c;
        let s2 = b - c;
        let s3 = a - d;
        out[base] = s0 + s1;
        out[base + 1] = 2 * s3 + s2;
        out[base + 2] = s0 - s1;
        out[base + 3] = s3 - 2 * s2;
    }
    out
}

/// Inverse 4x4 transform with H.264 rounding; input is *dequantised*
/// coefficients, output is the residual.
pub fn inverse4x4(input: &Block4x4) -> Block4x4 {
    let mut tmp = [0i32; 16];
    // Rows first.
    for row in 0..4 {
        let base = row * 4;
        let (a, b, c, d) = (
            input[base],
            input[base + 1],
            input[base + 2],
            input[base + 3],
        );
        let e0 = a + c;
        let e1 = a - c;
        let e2 = (b >> 1) - d;
        let e3 = b + (d >> 1);
        tmp[base] = e0 + e3;
        tmp[base + 1] = e1 + e2;
        tmp[base + 2] = e1 - e2;
        tmp[base + 3] = e0 - e3;
    }
    let mut out = [0i32; 16];
    // Then columns, with the final (x + 32) >> 6 rounding.
    for col in 0..4 {
        let (a, b, c, d) = (tmp[col], tmp[4 + col], tmp[8 + col], tmp[12 + col]);
        let e0 = a + c;
        let e1 = a - c;
        let e2 = (b >> 1) - d;
        let e3 = b + (d >> 1);
        out[col] = (e0 + e3 + 32) >> 6;
        out[4 + col] = (e1 + e2 + 32) >> 6;
        out[8 + col] = (e1 - e2 + 32) >> 6;
        out[12 + col] = (e0 - e3 + 32) >> 6;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{dequantize, quantize};

    #[test]
    fn dc_block_transforms_to_dc_coefficient() {
        let x = [10i32; 16];
        let w = forward4x4(&x);
        assert_eq!(w[0], 160); // 16 * 10
        assert!(w[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn transform_is_linear() {
        let a: Block4x4 = core::array::from_fn(|i| (i as i32 * 7) % 23 - 11);
        let b: Block4x4 = core::array::from_fn(|i| (i as i32 * 13) % 19 - 9);
        let sum: Block4x4 = core::array::from_fn(|i| a[i] + b[i]);
        let wa = forward4x4(&a);
        let wb = forward4x4(&b);
        let ws = forward4x4(&sum);
        for i in 0..16 {
            assert_eq!(ws[i], wa[i] + wb[i]);
        }
    }

    #[test]
    fn quantized_roundtrip_error_is_small_at_low_qp() {
        // The canonical codec sanity check: transform → quantise → dequantise
        // → inverse ≈ identity for small QP.
        let residual: Block4x4 = core::array::from_fn(|i| ((i as i32 * 37) % 101) - 50);
        let w = forward4x4(&residual);
        for qp in [0u8, 4, 8] {
            let levels = quantize(&w, qp, false);
            let deq = dequantize(&levels, qp);
            let rec = inverse4x4(&deq);
            for i in 0..16 {
                let err = (rec[i] - residual[i]).abs();
                assert!(err <= 3 + qp as i32, "qp={qp} i={i} err={err}");
            }
        }
    }

    #[test]
    fn higher_qp_gives_coarser_reconstruction() {
        let residual: Block4x4 = core::array::from_fn(|i| ((i as i32 * 53) % 121) - 60);
        let w = forward4x4(&residual);
        let mut last_sse = 0i64;
        let mut increased = false;
        for qp in [4u8, 16, 28, 40] {
            let levels = quantize(&w, qp, false);
            let deq = dequantize(&levels, qp);
            let rec = inverse4x4(&deq);
            let sse: i64 = (0..16)
                .map(|i| {
                    let d = (rec[i] - residual[i]) as i64;
                    d * d
                })
                .sum();
            if sse > last_sse {
                increased = true;
            }
            last_sse = sse;
        }
        assert!(increased, "quantisation error never grew with QP");
    }

    #[test]
    fn inverse_of_zero_is_zero() {
        let z = [0i32; 16];
        assert_eq!(inverse4x4(&z), z);
    }
}
