//! The total (never-failing) decoder.
//!
//! Mirrors the macroblock syntax documented in [`crate::encoder`]. On an
//! undamaged stream the output is bit-exact with the encoder's own
//! reconstruction. On a damaged stream the decoder keeps going: every
//! value is clamped to its domain, variable-length reads are bounded, and
//! reads past the end of a payload produce deterministic garbage — the
//! error then propagates through contexts, predictive metadata and motion
//! compensation exactly as the paper's §3 describes, and resynchronises at
//! the next frame (or slice) boundary because each payload gets a fresh
//! entropy context.

use crate::encoder::{
    crop, intra_ctx_inc, mb_mv_pred, mvd_ctx_inc, neighbors, quadrant_blocks, skip_ctx_inc,
    slice_rows, MbState,
};
use crate::entropy::{CabacReader, CavlcReader, Element, EntropyMode, SymbolReader};
use crate::inter::{bi_average, mc_block_sub, MV_LIMIT};
use crate::intra::{predict_intra16, predict_intra4, Intra4Avail, IntraAvail};
use crate::quant::{dequantize, from_zigzag, MAX_QP};
use crate::syntax::EncodedVideo;
use crate::transform::{inverse4x4, Block4x4};
use crate::types::{
    FrameType, Intra4Mode, IntraMode, MotionVector, PartShape, PartitionLayout, PredDir, SubShape,
};
use vapp_media::{Frame, MbGrid, Plane, Video, MB_SIZE};

/// Decodes an encoded video into display order.
///
/// Total: corrupted payloads produce visually damaged frames, never a
/// panic. Headers are trusted (they live in precise storage in the
/// approximate-storage system, paper §4.4).
///
/// # Panics
///
/// Panics only if the *headers* are structurally inconsistent (e.g. a
/// reference index pointing at an uncoded frame), which precise storage
/// rules out.
pub fn decode(stream: &EncodedVideo) -> Video {
    let width = stream.header.width as usize;
    let height = stream.header.height as usize;
    let grid = MbGrid::for_frame(width, height);
    let n = stream.frames.len();
    let mut dpb: Vec<Option<Plane>> = vec![None; n];
    let mut display: Vec<Option<Frame>> = vec![None; stream.header.frame_count as usize];

    let frames_total = n;
    let _video_span = vapp_obs::span!("codec.video.decode", frames_total);
    for f in &stream.frames {
        let ci = f.header.coding_index as usize;
        let frame_type = f.header.frame_type;
        let _frame_span = vapp_obs::span!("codec.frame.decode", ci, frame_type);
        vapp_obs::counter!("codec.frame.decoded");
        let ref_fwd = f.header.ref_fwd.map(|r| {
            dpb[r as usize]
                .as_ref()
                .expect("forward reference coded before use")
        });
        let ref_bwd = f.header.ref_bwd.map(|r| {
            dpb[r as usize]
                .as_ref()
                .expect("backward reference coded before use")
        });
        let mut recon = decode_frame(stream, f, &grid, ref_fwd, ref_bwd);
        if stream.header.deblock {
            crate::deblock::deblock_plane(&mut recon, f.header.qp.min(crate::quant::MAX_QP));
        }
        let di = f.header.display_index as usize;
        if di < display.len() {
            display[di] = Some(Frame::from_plane(crop(&recon, width, height)));
        }
        if ci < dpb.len() {
            dpb[ci] = Some(recon);
        }
    }

    Video::from_frames(
        display
            .into_iter()
            .map(|f| f.unwrap_or_else(|| Frame::filled(width, height, 128)))
            .collect(),
        stream.header.fps,
    )
}

fn decode_frame(
    stream: &EncodedVideo,
    frame: &crate::syntax::EncodedFrame,
    grid: &MbGrid,
    ref_fwd: Option<&Plane>,
    ref_bwd: Option<&Plane>,
) -> Plane {
    let subpel = stream.header.subpel;
    let pw = grid.mb_cols() * MB_SIZE;
    let ph = grid.mb_rows() * MB_SIZE;
    let mut recon = Plane::filled(pw, ph, 128);
    let mut states = vec![MbState::default(); grid.mb_count()];
    let base_qp = frame.header.qp.min(MAX_QP);

    let ranges = frame.slice_ranges();
    let row_groups = slice_rows(grid.mb_rows(), ranges.len().max(1));
    for (slice_idx, &(row_start, row_end)) in row_groups.iter().enumerate() {
        let empty: &[u8] = &[];
        let bytes = ranges
            .get(slice_idx)
            .map(|r| &frame.payload[r.clone()])
            .unwrap_or(empty);
        match stream.header.entropy {
            EntropyMode::Cabac => {
                let mut r = CabacReader::new(bytes);
                decode_slice(
                    &mut r,
                    grid,
                    frame,
                    ref_fwd,
                    ref_bwd,
                    &mut recon,
                    &mut states,
                    row_start,
                    row_end,
                    base_qp,
                    subpel,
                );
            }
            EntropyMode::Cavlc => {
                let mut r = CavlcReader::new(bytes);
                decode_slice(
                    &mut r,
                    grid,
                    frame,
                    ref_fwd,
                    ref_bwd,
                    &mut recon,
                    &mut states,
                    row_start,
                    row_end,
                    base_qp,
                    subpel,
                );
            }
        }
    }
    recon
}

#[allow(clippy::too_many_arguments)]
fn decode_slice<R: SymbolReader>(
    r: &mut R,
    grid: &MbGrid,
    frame: &crate::syntax::EncodedFrame,
    ref_fwd: Option<&Plane>,
    ref_bwd: Option<&Plane>,
    recon: &mut Plane,
    states: &mut [MbState],
    row_start: usize,
    row_end: usize,
    base_qp: u8,
    subpel: bool,
) {
    let mut prev_qp = base_qp;
    for row in row_start..row_end {
        for col in 0..grid.mb_cols() {
            let mb = grid.mb_index(col, row);
            decode_mb(
                r,
                grid,
                frame,
                ref_fwd,
                ref_bwd,
                recon,
                states,
                mb,
                row_start,
                &mut prev_qp,
                subpel,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn decode_mb<R: SymbolReader>(
    r: &mut R,
    grid: &MbGrid,
    frame: &crate::syntax::EncodedFrame,
    ref_fwd: Option<&Plane>,
    ref_bwd: Option<&Plane>,
    recon: &mut Plane,
    states: &mut [MbState],
    mb: usize,
    slice_top_row: usize,
    prev_qp: &mut u8,
    subpel: bool,
) {
    let (col, row) = grid.mb_position(mb);
    let (mb_x, mb_y) = (col * MB_SIZE, row * MB_SIZE);
    let nb = neighbors(grid, mb, slice_top_row);
    let is_b = frame.header.frame_type == FrameType::B;
    let inter_allowed = ref_fwd.is_some();
    let pred_fwd = mb_mv_pred(states, &nb, true);

    // --- skip flag ---
    if inter_allowed {
        let skip = r.get_flag(Element::Skip, skip_ctx_inc(states, &nb));
        if skip {
            let pred = mc_block_sub(
                ref_fwd.expect("inter_allowed"),
                mb_x,
                mb_y,
                MB_SIZE,
                MB_SIZE,
                pred_fwd,
                subpel,
            );
            recon.store_block(mb_x, mb_y, MB_SIZE, MB_SIZE, &pred);
            states[mb] = MbState {
                coded: true,
                skip: true,
                intra: false,
                mv_fwd: Some(pred_fwd),
                mv_bwd: None,
                mvd_mag: 0,
            };
            return;
        }
    }

    // --- intra / inter ---
    let intra = if inter_allowed {
        r.get_flag(Element::Intra, intra_ctx_inc(states, &nb))
    } else {
        true
    };

    let avail = IntraAvail {
        left: nb.left.is_some(),
        top: nb.above.is_some(),
    };

    let pred: [u8; 256];
    let mut new_state = MbState {
        coded: true,
        skip: false,
        intra,
        mv_fwd: None,
        mv_bwd: None,
        mvd_mag: 0,
    };

    if intra {
        let is4 = r.get_flag(Element::Intra4, 0);
        if is4 {
            decode_intra4_mb(r, recon, mb_x, mb_y, avail, prev_qp);
            states[mb] = new_state;
            return;
        }
        let mode = IntraMode::from_index(r.get_uint(Element::IntraMode, 0).min(3));
        pred = predict_intra16(recon, mb_x, mb_y, avail, mode);
    } else {
        let shape = PartShape::from_index(r.get_uint(Element::PartShape, 0).min(3));
        let mut layout = PartitionLayout {
            shape,
            subs: [SubShape::S8x8; 4],
        };
        if shape == PartShape::P8x8 {
            for q in 0..4 {
                layout.subs[q] = SubShape::from_index(r.get_uint(Element::SubShape, 0).min(3));
            }
        }
        let mvd_inc = mvd_ctx_inc(states, &nb);
        let mut prev_fwd: Option<MotionVector> = None;
        let mut prev_bwd: Option<MotionVector> = None;
        let mut pred16 = [0u8; 256];
        for (i, g) in layout.blocks().iter().enumerate() {
            let dir = if is_b {
                PredDir::from_index(r.get_uint(Element::PredDir, 0).min(2))
            } else {
                PredDir::Forward
            };
            let use_fwd = dir != PredDir::Backward;
            let use_bwd = is_b && dir != PredDir::Forward;
            let mut mv_f = MotionVector::ZERO;
            let mut mv_b = MotionVector::ZERO;
            if use_fwd {
                let p = prev_fwd.unwrap_or(pred_fwd);
                let dx = clamp_mv(r.get_sint(Element::MvdX, mvd_inc));
                let dy = clamp_mv(r.get_sint(Element::MvdY, mvd_inc));
                mv_f = MotionVector::new(
                    (p.x as i32 + dx as i32).clamp(-(MV_LIMIT as i32), MV_LIMIT as i32) as i16,
                    (p.y as i32 + dy as i32).clamp(-(MV_LIMIT as i32), MV_LIMIT as i32) as i16,
                );
                if i == 0 {
                    new_state.mvd_mag = dx.unsigned_abs() as u32 + dy.unsigned_abs() as u32;
                }
                prev_fwd = Some(mv_f);
                if new_state.mv_fwd.is_none() {
                    new_state.mv_fwd = Some(mv_f);
                }
            }
            if use_bwd {
                let p = prev_bwd.unwrap_or_else(|| mb_mv_pred(states, &nb, false));
                let dx = clamp_mv(r.get_sint(Element::MvdX, mvd_inc));
                let dy = clamp_mv(r.get_sint(Element::MvdY, mvd_inc));
                mv_b = MotionVector::new(
                    (p.x as i32 + dx as i32).clamp(-(MV_LIMIT as i32), MV_LIMIT as i32) as i16,
                    (p.y as i32 + dy as i32).clamp(-(MV_LIMIT as i32), MV_LIMIT as i32) as i16,
                );
                prev_bwd = Some(mv_b);
                if new_state.mv_bwd.is_none() {
                    new_state.mv_bwd = Some(mv_b);
                }
            }
            let bx = mb_x + g.dx;
            let by = mb_y + g.dy;
            // Fall back to mid-gray prediction when a reference is missing
            // (corrupt direction in a frame without that reference).
            let block_pred = match (dir, ref_fwd, ref_bwd) {
                (PredDir::Forward, Some(rf), _) => mc_block_sub(rf, bx, by, g.w, g.h, mv_f, subpel),
                (PredDir::Backward, _, Some(rb)) => {
                    mc_block_sub(rb, bx, by, g.w, g.h, mv_b, subpel)
                }
                (PredDir::Bi, Some(rf), Some(rb)) => bi_average(
                    &mc_block_sub(rf, bx, by, g.w, g.h, mv_f, subpel),
                    &mc_block_sub(rb, bx, by, g.w, g.h, mv_b, subpel),
                ),
                (_, Some(rf), _) => mc_block_sub(rf, bx, by, g.w, g.h, mv_f, subpel),
                _ => vec![128u8; g.w * g.h],
            };
            for y in 0..g.h {
                for x in 0..g.w {
                    pred16[(g.dy + y) * MB_SIZE + g.dx + x] = block_pred[y * g.w + x];
                }
            }
        }
        pred = pred16;
    }

    // --- qp delta, cbp, residual ---
    let delta = r
        .get_sint(Element::QpDelta, 0)
        .clamp(-(MAX_QP as i32), MAX_QP as i32);
    let qp = (*prev_qp as i32 + delta).clamp(0, MAX_QP as i32) as u8;
    *prev_qp = qp;

    let mut coded4 = [false; 16];
    let mut levels = [[0i32; 16]; 16];
    let mut cbp = [false; 4];
    for (q, c) in cbp.iter_mut().enumerate() {
        *c = r.get_flag(Element::Cbp, q);
    }
    for (q, &quadrant_coded) in cbp.iter().enumerate() {
        if !quadrant_coded {
            continue;
        }
        for (s, &blk) in quadrant_blocks(q).iter().enumerate() {
            let coded = r.get_flag(Element::Blk4, s);
            coded4[blk] = coded;
            if coded {
                levels[blk] = decode_block_coeffs(r);
            }
        }
    }

    // --- reconstruct ---
    for blk in 0..16 {
        let (bx, by) = (blk % 4, blk / 4);
        let res = if coded4[blk] {
            inverse4x4(&dequantize(&levels[blk], qp))
        } else {
            [0; 16]
        };
        for y in 0..4 {
            for x in 0..4 {
                let i = (by * 4 + y) * MB_SIZE + bx * 4 + x;
                let v = (pred[i] as i32 + res[y * 4 + x]).clamp(0, 255) as u8;
                recon.set(mb_x + bx * 4 + x, mb_y + by * 4 + y, v);
            }
        }
    }
    states[mb] = new_state;
}

/// Mirror of the encoder's `code_intra4_mb`: interleaved per-block mode,
/// residual and reconstruction.
fn decode_intra4_mb<R: SymbolReader>(
    r: &mut R,
    recon: &mut Plane,
    mb_x: usize,
    mb_y: usize,
    avail: IntraAvail,
    prev_qp: &mut u8,
) {
    use crate::quant::{dequantize, MAX_QP as MAXQ};
    let delta = r
        .get_sint(Element::QpDelta, 0)
        .clamp(-(MAXQ as i32), MAXQ as i32);
    let qp = (*prev_qp as i32 + delta).clamp(0, MAXQ as i32) as u8;
    *prev_qp = qp;

    for blk in 0..16 {
        let bx = mb_x + (blk % 4) * 4;
        let by = mb_y + (blk / 4) * 4;
        let a4 = Intra4Avail {
            left: blk % 4 > 0 || avail.left,
            top: blk / 4 > 0 || avail.top,
        };
        let mode = Intra4Mode::from_index(r.get_uint(Element::Intra4Mode, 0).min(4));
        let pred = predict_intra4(recon, bx, by, a4, mode);
        let coded = r.get_flag(Element::Blk4, blk % 4);
        let res = if coded {
            inverse4x4(&dequantize(&decode_block_coeffs(r), qp))
        } else {
            [0; 16]
        };
        for y in 0..4 {
            for x in 0..4 {
                let v = (pred[y * 4 + x] as i32 + res[y * 4 + x]).clamp(0, 255) as u8;
                recon.set(bx + x, by + y, v);
            }
        }
    }
}

/// Clamps a decoded motion-vector difference to the legal domain.
fn clamp_mv(v: i32) -> i16 {
    v.clamp(-(MV_LIMIT as i32), MV_LIMIT as i32) as i16
}

/// Mirror of the encoder's `code_block_coeffs`.
fn decode_block_coeffs<R: SymbolReader>(r: &mut R) -> Block4x4 {
    let mut zz: Block4x4 = [0; 16];
    for (i, z) in zz.iter_mut().enumerate() {
        let sig = r.get_flag(Element::Sig, i.min(14));
        if sig {
            let mag = r.get_uint(Element::Level, usize::from(i != 0)).min(1 << 15) + 1;
            let neg = r.get_sign();
            *z = if neg { -(mag as i32) } else { mag as i32 };
            let last = r.get_flag(Element::Last, i.min(14));
            if last {
                break;
            }
        }
    }
    from_zigzag(&zz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use vapp_media::Video;

    fn tiny_video(frames: usize) -> Video {
        let mut v = Video::new(48, 32, 25.0);
        for t in 0..frames {
            let mut f = Frame::new(48, 32);
            for y in 0..32 {
                for x in 0..48 {
                    let val = ((x * 5 + y * 3 + t * 7) % 200 + 20) as u8;
                    f.plane_mut().set(x, y, val);
                }
            }
            v.push(f);
        }
        v
    }

    #[test]
    fn clean_stream_matches_encoder_reconstruction() {
        let video = tiny_video(5);
        for entropy in [EntropyMode::Cabac, EntropyMode::Cavlc] {
            let cfg = EncoderConfig {
                entropy,
                bframes: 1,
                keyint: 4,
                ..EncoderConfig::default()
            };
            let result = Encoder::new(cfg).encode(&video);
            let decoded = decode(&result.stream);
            assert_eq!(
                decoded, result.reconstruction,
                "entropy {entropy:?}: decode != encoder recon"
            );
        }
    }

    #[test]
    fn corrupt_payload_never_panics_and_stays_in_frame() {
        let video = tiny_video(6);
        let result = Encoder::new(EncoderConfig {
            bframes: 0,
            keyint: 3,
            ..EncoderConfig::default()
        })
        .encode(&video);
        let mut stream = result.stream.clone();
        // Corrupt every byte of frame 1's payload (display frame 1).
        for b in stream.frames[1].payload.iter_mut() {
            *b = b.wrapping_mul(31).wrapping_add(17);
        }
        let decoded = decode(&stream);
        assert_eq!(decoded.len(), video.len());
        // Frame 0 is an I frame coded before the damage: identical.
        assert_eq!(
            decoded.get(0).unwrap(),
            result.reconstruction.get(0).unwrap()
        );
        // Frame 3 starts a new GOP (keyint 3): the damage cannot reach it.
        assert_eq!(
            decoded.get(3).unwrap(),
            result.reconstruction.get(3).unwrap()
        );
    }

    #[test]
    fn truncated_payload_decodes_totally() {
        let video = tiny_video(3);
        let result = Encoder::new(EncoderConfig::default()).encode(&video);
        let mut stream = result.stream;
        for f in &mut stream.frames {
            f.payload.truncate(f.payload.len() / 3);
        }
        let decoded = decode(&stream);
        assert_eq!(decoded.len(), 3);
    }
}
