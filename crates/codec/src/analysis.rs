//! Dependency and bit-span records produced during encoding.
//!
//! This is the hook VideoApp consumes: for every macroblock, *where its
//! bits live* in the frame payload, and *which macroblocks it references*
//! (compensation dependencies with pixel-proportional weights, paper §4.1).
//! Coding dependencies are implied by the scan order within a slice and
//! are reconstructed by the analysis crate (weight 1 per §4.2), so they
//! are not stored per macroblock.

use crate::types::FrameType;
use vapp_media::MbGrid;

/// One incoming compensation dependency: this macroblock references
/// `weight` (fraction of its area) worth of pixels in macroblock `mb` of
/// the frame with coding index `frame`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dependency {
    /// Coding index of the source frame (may equal the current frame for
    /// intra/spatial dependencies).
    pub frame: usize,
    /// Macroblock index within the source frame.
    pub mb: usize,
    /// Fraction of the destination macroblock's area compensated from the
    /// source (incoming weights sum to 1 for predicted macroblocks).
    pub weight: f64,
}

/// Per-macroblock analysis record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MbAnalysis {
    /// First payload bit of this macroblock (within the frame payload).
    pub bit_start: u64,
    /// One past the last payload bit.
    pub bit_end: u64,
    /// Incoming compensation dependencies (sources this MB references).
    pub deps: Vec<Dependency>,
    /// Whether the macroblock was intra coded.
    pub intra: bool,
    /// Whether the macroblock was coded as a skip.
    pub skip: bool,
}

impl MbAnalysis {
    /// Number of payload bits occupied by this macroblock.
    pub fn bits(&self) -> u64 {
        self.bit_end.saturating_sub(self.bit_start)
    }
}

/// Per-frame analysis record (coding order).
#[derive(Clone, Debug, PartialEq)]
pub struct FrameAnalysis {
    /// Coding-order index.
    pub coding_index: usize,
    /// Display-order index.
    pub display_index: usize,
    /// Frame type.
    pub frame_type: FrameType,
    /// Bits of the precise frame header.
    pub header_bits: u64,
    /// Macroblock records in scan order.
    pub mbs: Vec<MbAnalysis>,
    /// First macroblock index of each slice (scan order); coding
    /// dependencies do not cross these boundaries (paper §8).
    pub slice_starts: Vec<usize>,
}

/// The complete analysis side-channel for an encoded video.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisRecord {
    /// Macroblock grid shared by all frames.
    pub grid: MbGrid,
    /// Per-frame records in coding order.
    pub frames: Vec<FrameAnalysis>,
}

impl AnalysisRecord {
    /// Macroblocks per frame.
    pub fn mbs_per_frame(&self) -> usize {
        self.grid.mb_count()
    }

    /// Total macroblocks across all frames.
    pub fn total_mbs(&self) -> usize {
        self.frames.iter().map(|f| f.mbs.len()).sum()
    }

    /// Global node id of `(coding frame, mb)` for graph algorithms.
    pub fn node_id(&self, frame: usize, mb: usize) -> usize {
        frame * self.mbs_per_frame() + mb
    }

    /// Inverse of [`AnalysisRecord::node_id`].
    pub fn node_location(&self, node: usize) -> (usize, usize) {
        (node / self.mbs_per_frame(), node % self.mbs_per_frame())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let rec = AnalysisRecord {
            grid: MbGrid::for_frame(64, 48),
            frames: Vec::new(),
        };
        let per = rec.mbs_per_frame();
        assert_eq!(per, 12);
        for frame in 0..5 {
            for mb in 0..per {
                let id = rec.node_id(frame, mb);
                assert_eq!(rec.node_location(id), (frame, mb));
            }
        }
    }

    #[test]
    fn mb_bits_are_span_length() {
        let mb = MbAnalysis {
            bit_start: 100,
            bit_end: 164,
            ..Default::default()
        };
        assert_eq!(mb.bits(), 64);
        let empty = MbAnalysis::default();
        assert_eq!(empty.bits(), 0);
    }
}
