//! Stream and frame headers and the encoded-video container.
//!
//! Headers are serialised with plain fixed-width fields, *not* entropy
//! coded: in the approximate-storage system they are kept in precise
//! storage (paper §4.4 — "corrupting the frame header would destroy the
//! entire frame, so we assign it the strongest error correction"). The
//! entropy-coded macroblock payloads are the approximable part.

use crate::bitstream::{BitReader, BitWriter};
use crate::entropy::EntropyMode;
use crate::types::FrameType;

/// Errors from header deserialisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseHeaderError {
    /// Magic number mismatch: not a VideoApp stream.
    BadMagic,
    /// A field held an impossible value.
    InvalidField(&'static str),
}

impl std::fmt::Display for ParseHeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseHeaderError::BadMagic => write!(f, "not a VideoApp stream header"),
            ParseHeaderError::InvalidField(name) => write!(f, "invalid header field `{name}`"),
        }
    }
}

impl std::error::Error for ParseHeaderError {}

const MAGIC: u32 = 0x5641_5031; // "VAP1"

/// Sequence-level header.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamHeader {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second (stored in 1/100 units).
    pub fps: f64,
    /// Total coded frames.
    pub frame_count: u32,
    /// Entropy coder used by the payloads.
    pub entropy: EntropyMode,
    /// Slices per frame.
    pub slices: u8,
    /// Constant-rate-factor quality target (base QP).
    pub crf: u8,
    /// I-frame interval in display frames.
    pub keyint: u16,
    /// Number of B frames between anchors.
    pub bframes: u8,
    /// Whether motion vectors are in half-pel units.
    pub subpel: bool,
    /// Whether the in-loop deblocking filter is applied.
    pub deblock: bool,
}

impl StreamHeader {
    /// Serialises the header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put_bits(MAGIC, 32);
        w.put_bits(self.width, 32);
        w.put_bits(self.height, 32);
        w.put_bits((self.fps * 100.0).round() as u32, 32);
        w.put_bits(self.frame_count, 32);
        w.put_bits(
            match self.entropy {
                EntropyMode::Cabac => 0,
                EntropyMode::Cavlc => 1,
            },
            8,
        );
        w.put_bits(self.slices as u32, 8);
        w.put_bits(self.crf as u32, 8);
        w.put_bits(self.keyint as u32, 16);
        w.put_bits(self.bframes as u32, 8);
        // Flags byte: bit 0 subpel, bit 1 deblock.
        w.put_bits(self.subpel as u32 | (self.deblock as u32) << 1, 8);
        w.finish()
    }

    /// Parses a serialised header.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHeaderError`] when the magic or a field is invalid.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseHeaderError> {
        let mut r = BitReader::new(bytes);
        if r.get_bits(32) != MAGIC {
            return Err(ParseHeaderError::BadMagic);
        }
        let width = r.get_bits(32);
        let height = r.get_bits(32);
        let fps = r.get_bits(32) as f64 / 100.0;
        let frame_count = r.get_bits(32);
        let entropy = match r.get_bits(8) {
            0 => EntropyMode::Cabac,
            1 => EntropyMode::Cavlc,
            _ => return Err(ParseHeaderError::InvalidField("entropy")),
        };
        let slices = r.get_bits(8) as u8;
        let crf = r.get_bits(8) as u8;
        let keyint = r.get_bits(16) as u16;
        let bframes = r.get_bits(8) as u8;
        let flags = r.get_bits(8);
        let subpel = flags & 1 == 1;
        let deblock = flags & 2 == 2;
        if width == 0 || height == 0 {
            return Err(ParseHeaderError::InvalidField("dimensions"));
        }
        if slices == 0 || keyint == 0 {
            return Err(ParseHeaderError::InvalidField("structure"));
        }
        Ok(StreamHeader {
            width,
            height,
            fps,
            frame_count,
            entropy,
            slices,
            crf,
            keyint,
            bframes,
            subpel,
            deblock,
        })
    }
}

/// Per-frame header (kept in precise storage).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Position in coding (bitstream) order.
    pub coding_index: u32,
    /// Position in display order.
    pub display_index: u32,
    /// Frame type.
    pub frame_type: FrameType,
    /// Base quantiser for the frame.
    pub qp: u8,
    /// Coding index of the forward reference (P and B frames).
    pub ref_fwd: Option<u32>,
    /// Coding index of the backward reference (B frames).
    pub ref_bwd: Option<u32>,
    /// Byte length of each slice payload, in coding order.
    pub slice_lens: Vec<u32>,
}

impl FrameHeader {
    /// Serialises the header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put_bits(self.coding_index, 32);
        w.put_bits(self.display_index, 32);
        w.put_bits(self.frame_type.to_tag() as u32, 8);
        w.put_bits(self.qp as u32, 8);
        w.put_bits(self.ref_fwd.map_or(u32::MAX, |v| v), 32);
        w.put_bits(self.ref_bwd.map_or(u32::MAX, |v| v), 32);
        w.put_bits(self.slice_lens.len() as u32, 8);
        for &len in &self.slice_lens {
            w.put_bits(len, 32);
        }
        w.finish()
    }

    /// Parses a serialised frame header.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHeaderError`] for impossible field values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseHeaderError> {
        let mut r = BitReader::new(bytes);
        let coding_index = r.get_bits(32);
        let display_index = r.get_bits(32);
        let frame_type = FrameType::from_tag(r.get_bits(8) as u8);
        let qp = r.get_bits(8) as u8;
        let rf = r.get_bits(32);
        let rb = r.get_bits(32);
        let n = r.get_bits(8) as usize;
        if n == 0 {
            return Err(ParseHeaderError::InvalidField("slice_lens"));
        }
        let mut slice_lens = Vec::with_capacity(n);
        for _ in 0..n {
            slice_lens.push(r.get_bits(32));
        }
        Ok(FrameHeader {
            coding_index,
            display_index,
            frame_type,
            qp,
            ref_fwd: (rf != u32::MAX).then_some(rf),
            ref_bwd: (rb != u32::MAX).then_some(rb),
            slice_lens,
        })
    }

    /// Size of the serialised header in bits (precise-storage accounting).
    pub fn bit_len(&self) -> u64 {
        self.to_bytes().len() as u64 * 8
    }
}

/// One coded frame: precise header + approximable entropy payload
/// (concatenated slice buffers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedFrame {
    /// The frame header.
    pub header: FrameHeader,
    /// Entropy-coded payload: slice buffers back to back.
    pub payload: Vec<u8>,
}

impl EncodedFrame {
    /// Payload length in bits.
    pub fn payload_bits(&self) -> u64 {
        self.payload.len() as u64 * 8
    }

    /// Byte ranges of each slice within the payload.
    pub fn slice_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::with_capacity(self.header.slice_lens.len());
        let mut off = 0usize;
        for &len in &self.header.slice_lens {
            let end = (off + len as usize).min(self.payload.len());
            out.push(off..end);
            off = end;
        }
        out
    }
}

/// A complete encoded video in coding order.
#[derive(Clone, Debug, PartialEq)]
pub struct EncodedVideo {
    /// Sequence header.
    pub header: StreamHeader,
    /// Frames in coding order.
    pub frames: Vec<EncodedFrame>,
}

impl EncodedVideo {
    /// Total approximable payload bits across all frames.
    pub fn payload_bits(&self) -> u64 {
        self.frames.iter().map(EncodedFrame::payload_bits).sum()
    }

    /// Total precise header bits (stream header + frame headers).
    pub fn header_bits(&self) -> u64 {
        self.header.to_bytes().len() as u64 * 8
            + self.frames.iter().map(|f| f.header.bit_len()).sum::<u64>()
    }

    /// Bit offset of frame `coding_index`'s payload within the
    /// concatenation of all payloads (the global approximate-storage
    /// address space).
    pub fn payload_base_bits(&self, coding_index: usize) -> u64 {
        self.frames[..coding_index]
            .iter()
            .map(EncodedFrame::payload_bits)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream_header() -> StreamHeader {
        StreamHeader {
            width: 320,
            height: 180,
            fps: 29.97,
            frame_count: 120,
            entropy: EntropyMode::Cabac,
            slices: 2,
            crf: 24,
            keyint: 48,
            bframes: 2,
            subpel: true,
            deblock: true,
        }
    }

    #[test]
    fn stream_header_roundtrip() {
        let h = sample_stream_header();
        let parsed = StreamHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn stream_header_rejects_bad_magic() {
        let mut bytes = sample_stream_header().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            StreamHeader::from_bytes(&bytes),
            Err(ParseHeaderError::BadMagic)
        );
    }

    #[test]
    fn frame_header_roundtrip() {
        let h = FrameHeader {
            coding_index: 7,
            display_index: 9,
            frame_type: FrameType::B,
            qp: 26,
            ref_fwd: Some(4),
            ref_bwd: Some(10),
            slice_lens: vec![1000, 2000, 3000],
        };
        let parsed = FrameHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(h.bit_len() % 8, 0);
    }

    #[test]
    fn frame_header_none_refs_roundtrip() {
        let h = FrameHeader {
            coding_index: 0,
            display_index: 0,
            frame_type: FrameType::I,
            qp: 22,
            ref_fwd: None,
            ref_bwd: None,
            slice_lens: vec![512],
        };
        assert_eq!(FrameHeader::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn slice_ranges_tile_payload() {
        let f = EncodedFrame {
            header: FrameHeader {
                coding_index: 0,
                display_index: 0,
                frame_type: FrameType::I,
                qp: 20,
                ref_fwd: None,
                ref_bwd: None,
                slice_lens: vec![3, 5],
            },
            payload: vec![0u8; 8],
        };
        assert_eq!(f.slice_ranges(), vec![0..3, 3..8]);
        assert_eq!(f.payload_bits(), 64);
    }

    #[test]
    fn payload_base_accumulates() {
        let mk = |len| EncodedFrame {
            header: FrameHeader {
                coding_index: 0,
                display_index: 0,
                frame_type: FrameType::I,
                qp: 20,
                ref_fwd: None,
                ref_bwd: None,
                slice_lens: vec![len as u32],
            },
            payload: vec![0u8; len],
        };
        let v = EncodedVideo {
            header: sample_stream_header(),
            frames: vec![mk(10), mk(20), mk(30)],
        };
        assert_eq!(v.payload_base_bits(0), 0);
        assert_eq!(v.payload_base_bits(1), 80);
        assert_eq!(v.payload_base_bits(2), 240);
        assert_eq!(v.payload_bits(), 480);
        assert!(v.header_bits() > 0);
    }
}
