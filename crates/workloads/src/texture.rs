//! Seeded value-noise textures.
//!
//! Natural video frames have spatially-correlated luma; pure white noise
//! would make motion estimation useless and inflate bitrates unrealistically.
//! [`ValueNoise`] produces smooth, band-limited 2D noise by bilinear
//! interpolation of a seeded random lattice at several octaves.

use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};

/// A deterministic 2D value-noise field.
///
/// # Example
///
/// ```
/// use vapp_workloads::ValueNoise;
///
/// let n = ValueNoise::new(42, 16.0);
/// let a = n.sample(1.5, 2.5);
/// assert_eq!(a, n.sample(1.5, 2.5)); // deterministic
/// ```
#[derive(Clone, Debug)]
pub struct ValueNoise {
    lattice: Vec<f64>,
    size: usize,
    scale: f64,
}

impl ValueNoise {
    /// Lattice resolution (wraps around, so textures tile).
    const SIZE: usize = 64;

    /// Creates a noise field from a seed. `scale` is the feature size in
    /// pixels (larger = smoother).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let lattice = (0..Self::SIZE * Self::SIZE)
            .map(|_| rng.random::<f64>())
            .collect();
        ValueNoise {
            lattice,
            size: Self::SIZE,
            scale,
        }
    }

    fn lattice_at(&self, ix: i64, iy: i64) -> f64 {
        let n = self.size as i64;
        let x = ix.rem_euclid(n) as usize;
        let y = iy.rem_euclid(n) as usize;
        self.lattice[y * self.size + x]
    }

    /// Samples the field at pixel coordinates; result in `[0, 1]`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let fx = x / self.scale;
        let fy = y / self.scale;
        let ix = fx.floor() as i64;
        let iy = fy.floor() as i64;
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        // Smoothstep interpolation avoids visible lattice artifacts.
        let sx = tx * tx * (3.0 - 2.0 * tx);
        let sy = ty * ty * (3.0 - 2.0 * ty);
        let v00 = self.lattice_at(ix, iy);
        let v10 = self.lattice_at(ix + 1, iy);
        let v01 = self.lattice_at(ix, iy + 1);
        let v11 = self.lattice_at(ix + 1, iy + 1);
        let top = v00 + (v10 - v00) * sx;
        let bottom = v01 + (v11 - v01) * sx;
        top + (bottom - top) * sy
    }

    /// Samples fractal (multi-octave) noise at pixel coordinates; result in
    /// `[0, 1]`.
    pub fn fractal(&self, x: f64, y: f64, octaves: u32) -> f64 {
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut norm = 0.0;
        let mut freq = 1.0;
        for _ in 0..octaves.max(1) {
            total += amplitude * self.sample(x * freq, y * freq);
            norm += amplitude;
            amplitude *= 0.5;
            freq *= 2.0;
        }
        total / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = ValueNoise::new(9, 8.0);
        let b = ValueNoise::new(9, 8.0);
        for i in 0..20 {
            let (x, y) = (i as f64 * 1.7, i as f64 * 0.9);
            assert_eq!(a.sample(x, y), b.sample(x, y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1, 8.0);
        let b = ValueNoise::new(2, 8.0);
        let differs = (0..50).any(|i| {
            let (x, y) = (i as f64 * 2.3, i as f64 * 1.1);
            (a.sample(x, y) - b.sample(x, y)).abs() > 1e-9
        });
        assert!(differs);
    }

    #[test]
    fn samples_in_unit_range() {
        let n = ValueNoise::new(3, 4.0);
        for i in 0..200 {
            let v = n.fractal(i as f64 * 0.37, i as f64 * 0.73, 4);
            assert!((0.0..=1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn smooth_across_small_steps() {
        let n = ValueNoise::new(5, 16.0);
        let a = n.sample(10.0, 10.0);
        let b = n.sample(10.5, 10.0);
        assert!((a - b).abs() < 0.2, "noise too rough: {a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ValueNoise::new(0, 0.0);
    }
}
