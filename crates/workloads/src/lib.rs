//! Deterministic synthetic raw-video generators.
//!
//! The paper evaluates on 14 Xiph.Org raw 720p clips (§6.3). Raw test
//! footage is not available here, so this crate generates synthetic clips
//! with the *statistics the experiments depend on*: textured backgrounds
//! (so residuals are non-trivial), coherent motion (so motion compensation
//! creates long temporal dependence chains), local motion against static
//! backgrounds, global panning, sensor noise, and scene cuts (which force
//! intra macroblocks). Every generator is seeded and fully deterministic.
//!
//! [`suite`] returns a named collection of clips mirroring the diversity of
//! the paper's 14-clip suite at configurable resolution; individual
//! generators are available through [`ClipSpec`].
//!
//! # Example
//!
//! ```
//! use vapp_workloads::{ClipSpec, SceneKind};
//!
//! let video = ClipSpec::new(64, 48, 12, SceneKind::MovingBlocks)
//!     .seed(7)
//!     .generate();
//! assert_eq!(video.len(), 12);
//! assert_eq!(video.width(), 64);
//! ```

mod scenes;
mod texture;

pub use scenes::{ClipSpec, SceneKind};
pub use texture::ValueNoise;

use vapp_media::Video;

/// A named workload clip.
#[derive(Clone, Debug)]
pub struct NamedClip {
    /// Human-readable clip name (stands in for the Xiph clip name).
    pub name: &'static str,
    /// The generated raw video.
    pub video: Video,
}

/// Generates the standard evaluation suite: a diverse set of clips that
/// stands in for the paper's 14 Xiph sequences.
///
/// `width`/`height` control the resolution (tests use small sizes; benches
/// use larger ones), `frames` the clip length. Deterministic: same inputs,
/// same clips.
///
/// # Panics
///
/// Panics if any dimension or `frames` is zero.
pub fn suite(width: usize, height: usize, frames: usize) -> Vec<NamedClip> {
    assert!(frames > 0, "suite needs at least one frame");
    let mk = |name, kind, seed| NamedClip {
        name,
        video: ClipSpec::new(width, height, frames, kind)
            .seed(seed)
            .generate(),
    };
    vec![
        mk("blocks_slow", SceneKind::MovingBlocks, 11),
        mk("blocks_fast", SceneKind::FastMotion, 12),
        mk("pan_texture", SceneKind::Panning, 13),
        mk("static_talker", SceneKind::LocalMotion, 14),
        mk("noisy_sensor", SceneKind::NoisyStatic, 15),
        mk("scene_cuts", SceneKind::SceneCuts, 16),
        mk("zoomish", SceneKind::Breathing, 17),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        let a = suite(48, 32, 4);
        let b = suite(48, 32, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.video, y.video);
        }
    }

    #[test]
    fn suite_clips_have_requested_geometry() {
        for clip in suite(64, 48, 3) {
            assert_eq!(clip.video.width(), 64);
            assert_eq!(clip.video.height(), 48);
            assert_eq!(clip.video.len(), 3);
        }
    }
}
