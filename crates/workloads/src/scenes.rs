//! Scene generators.

use crate::texture::ValueNoise;
use vapp_media::{Frame, Video};
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};

/// The kind of synthetic scene to generate.
///
/// Each kind targets a statistic the paper's experiments depend on; see the
/// crate docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Textured background with several slowly moving textured rectangles.
    MovingBlocks,
    /// Like [`SceneKind::MovingBlocks`] but with large per-frame motion,
    /// stressing motion search and producing large residuals.
    FastMotion,
    /// Global horizontal/vertical pan over a large texture (every MB moves
    /// coherently — long compensation chains).
    Panning,
    /// Static background with one small region in motion (talking-head
    /// analog; most MBs are cheap skips/small residuals).
    LocalMotion,
    /// Static scene with per-pixel sensor noise (worst case for temporal
    /// prediction of fine detail).
    NoisyStatic,
    /// Alternating scenes with hard cuts every ~2 seconds worth of frames
    /// (forces intra-heavy frames mid-GOP).
    SceneCuts,
    /// Slow global brightness/scale oscillation ("breathing" zoom analog).
    Breathing,
}

/// Builder for one synthetic clip.
#[derive(Clone, Debug)]
pub struct ClipSpec {
    width: usize,
    height: usize,
    frames: usize,
    fps: f64,
    seed: u64,
    kind: SceneKind,
    noise_level: f64,
}

impl ClipSpec {
    /// Creates a spec with default fps (50, as in the Xiph suite), seed 0
    /// and mild sensor noise.
    ///
    /// # Panics
    ///
    /// Panics if a dimension or the frame count is zero.
    pub fn new(width: usize, height: usize, frames: usize, kind: SceneKind) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be nonzero");
        assert!(frames > 0, "frame count must be nonzero");
        ClipSpec {
            width,
            height,
            frames,
            fps: 50.0,
            seed: 0,
            kind,
            noise_level: 1.0,
        }
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the frame rate (metadata only).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite and positive.
    pub fn fps(mut self, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        self.fps = fps;
        self
    }

    /// Sets the sensor-noise amplitude in luma steps (0 disables).
    pub fn noise_level(mut self, level: f64) -> Self {
        assert!(level >= 0.0, "noise level must be non-negative");
        self.noise_level = level;
        self
    }

    /// Generates the clip.
    pub fn generate(&self) -> Video {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let bg = ValueNoise::new(self.seed.wrapping_add(1), 24.0);
        let detail = ValueNoise::new(self.seed.wrapping_add(2), 5.0);
        let sprite_tex = ValueNoise::new(self.seed.wrapping_add(3), 7.0);

        let sprites = self.make_sprites(&mut rng);
        let mut frames = Vec::with_capacity(self.frames);
        for t in 0..self.frames {
            frames.push(self.render_frame(t, &bg, &detail, &sprite_tex, &sprites, &mut rng));
        }
        Video::from_frames(frames, self.fps)
    }

    fn make_sprites(&self, rng: &mut StdRng) -> Vec<Sprite> {
        let n = match self.kind {
            SceneKind::MovingBlocks | SceneKind::FastMotion => 4,
            SceneKind::LocalMotion => 1,
            SceneKind::SceneCuts => 3,
            _ => 0,
        };
        let speed = match self.kind {
            SceneKind::FastMotion => 6.0,
            SceneKind::LocalMotion => 1.2,
            _ => 1.8,
        };
        (0..n)
            .map(|_| Sprite {
                x: rng.random_range(0.0..self.width as f64),
                y: rng.random_range(0.0..self.height as f64),
                vx: rng.random_range(-speed..speed),
                vy: rng.random_range(-speed..speed),
                w: rng.random_range(self.width as f64 * 0.12..self.width as f64 * 0.3),
                h: rng.random_range(self.height as f64 * 0.12..self.height as f64 * 0.3),
                shade: rng.random_range(-60.0..60.0),
            })
            .collect()
    }

    fn render_frame(
        &self,
        t: usize,
        bg: &ValueNoise,
        detail: &ValueNoise,
        sprite_tex: &ValueNoise,
        sprites: &[Sprite],
        rng: &mut StdRng,
    ) -> Frame {
        let tf = t as f64;
        // Scene-cut clips swap texture phase every `cut_period` frames.
        let cut_period = 24usize.max(self.frames / 4);
        let scene_id = if self.kind == SceneKind::SceneCuts {
            t / cut_period
        } else {
            0
        };
        let scene_off = scene_id as f64 * 1000.0;

        let (pan_x, pan_y) = match self.kind {
            SceneKind::Panning => (tf * 2.0, tf * 0.7),
            SceneKind::MovingBlocks | SceneKind::LocalMotion | SceneKind::SceneCuts => {
                (tf * 0.2, 0.0)
            }
            SceneKind::FastMotion => (tf * 4.0, tf * 1.5),
            _ => (0.0, 0.0),
        };
        let breath = if self.kind == SceneKind::Breathing {
            1.0 + 0.05 * (tf * 0.15).sin()
        } else {
            1.0
        };
        let brightness = if self.kind == SceneKind::Breathing {
            10.0 * (tf * 0.1).sin()
        } else {
            0.0
        };

        let mut frame = Frame::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let sx = (x as f64 + pan_x + scene_off) * breath;
                let sy = (y as f64 + pan_y + scene_off * 0.5) * breath;
                let base = bg.fractal(sx, sy, 3) * 170.0 + detail.sample(sx, sy) * 50.0 + 20.0;
                let mut v = base + brightness;

                for s in sprites {
                    let (cx, cy) = s.position(tf, self.width as f64, self.height as f64);
                    let dx = x as f64 - cx;
                    let dy = y as f64 - cy;
                    if dx.abs() < s.w / 2.0 && dy.abs() < s.h / 2.0 {
                        let tex = sprite_tex.sample(dx + scene_off, dy + scene_off * 0.3) * 40.0;
                        v = base * 0.4 + 90.0 + s.shade + tex;
                    }
                }

                if self.noise_level > 0.0
                    && (self.kind == SceneKind::NoisyStatic || self.noise_level > 1.5)
                {
                    v += rng.random_range(-3.0 * self.noise_level..3.0 * self.noise_level);
                } else if self.noise_level > 0.0 {
                    v += rng.random_range(-self.noise_level..self.noise_level);
                }
                frame.plane_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        frame
    }
}

#[derive(Clone, Copy, Debug)]
struct Sprite {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    w: f64,
    h: f64,
    shade: f64,
}

impl Sprite {
    /// Position at time `t`, bouncing off the frame borders.
    fn position(&self, t: f64, width: f64, height: f64) -> (f64, f64) {
        (
            reflect(self.x + self.vx * t, width),
            reflect(self.y + self.vy * t, height),
        )
    }
}

/// Reflects an unbounded coordinate into `[0, bound)` (triangle wave).
fn reflect(v: f64, bound: f64) -> f64 {
    if bound <= 0.0 {
        return 0.0;
    }
    let period = 2.0 * bound;
    let m = v.rem_euclid(period);
    if m < bound {
        m
    } else {
        period - m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let v = ClipSpec::new(32, 24, 5, SceneKind::Panning).generate();
        assert_eq!((v.width(), v.height(), v.len()), (32, 24, 5));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ClipSpec::new(32, 24, 3, SceneKind::MovingBlocks)
            .seed(5)
            .generate();
        let b = ClipSpec::new(32, 24, 3, SceneKind::MovingBlocks)
            .seed(5)
            .generate();
        assert_eq!(a, b);
        let c = ClipSpec::new(32, 24, 3, SceneKind::MovingBlocks)
            .seed(6)
            .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn panning_scene_actually_moves() {
        let v = ClipSpec::new(48, 32, 4, SceneKind::Panning)
            .noise_level(0.0)
            .generate();
        let first = v.get(0).unwrap();
        let last = v.get(3).unwrap();
        assert!(
            first.plane().sse(last.plane()) > 0,
            "pan produced static frames"
        );
    }

    #[test]
    fn static_noisy_scene_differs_only_by_noise() {
        let v = ClipSpec::new(32, 32, 3, SceneKind::NoisyStatic).generate();
        let sse01 = v.get(0).unwrap().plane().sse(v.get(1).unwrap().plane());
        // Noise makes frames differ, but only slightly per pixel.
        assert!(sse01 > 0);
        let mse = sse01 as f64 / 1024.0;
        assert!(mse < 100.0, "noise too strong: mse {mse}");
    }

    #[test]
    fn scene_cut_changes_content_sharply() {
        let frames = 64;
        let v = ClipSpec::new(32, 32, frames, SceneKind::SceneCuts)
            .noise_level(0.0)
            .generate();
        let cut_period = 24usize.max(frames / 4);
        // Compare across the first cut against within-scene difference.
        let within = v.get(0).unwrap().plane().sse(v.get(1).unwrap().plane());
        let across = v
            .get(cut_period - 1)
            .unwrap()
            .plane()
            .sse(v.get(cut_period).unwrap().plane());
        assert!(
            across > within * 4,
            "cut not sharp: within {within}, across {across}"
        );
    }

    #[test]
    fn reflect_stays_in_bounds() {
        for i in -100..100 {
            let r = reflect(i as f64 * 3.7, 32.0);
            assert!((0.0..=32.0).contains(&r));
        }
    }

    #[test]
    fn luma_values_span_a_reasonable_range() {
        let v = ClipSpec::new(64, 64, 2, SceneKind::MovingBlocks).generate();
        let data = v.get(0).unwrap().plane().data();
        let min = *data.iter().min().unwrap();
        let max = *data.iter().max().unwrap();
        assert!(max - min > 40, "texture too flat: {min}..{max}");
    }
}
