//! Statistical sanity for the in-repo PRNG: the Monte Carlo machinery in
//! `vapp-sim` (paper §6.4) assumes uniform, decorrelated draws, so the
//! generator itself is held to mean/variance and chi-squared tolerances
//! here. Failures here invalidate every experiment downstream.

use vapp_rand::rngs::StdRng;
use vapp_rand::{RngCore, RngExt, SeedableRng};

#[test]
fn cross_seed_determinism() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}");
        }
    }
}

#[test]
fn distinct_seeds_distinct_streams() {
    let mut outputs: Vec<u64> = (0..64u64)
        .map(|seed| StdRng::seed_from_u64(seed).next_u64())
        .collect();
    outputs.sort_unstable();
    outputs.dedup();
    assert_eq!(outputs.len(), 64, "first draws must differ across seeds");
}

#[test]
fn unit_floats_have_uniform_mean_and_variance() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 100_000;
    let samples: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    // Uniform(0,1): mean 1/2 (se ~ 0.0009), variance 1/12 (~0.0833).
    assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
}

#[test]
fn random_bool_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(12);
    for &p in &[0.01, 0.25, 0.5, 0.9] {
        let n = 100_000u32;
        let hits = (0..n).filter(|_| rng.random_bool(p)).count() as f64;
        let expect = p * n as f64;
        // Five standard deviations of Binomial(n, p).
        let tol = 5.0 * (n as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (hits - expect).abs() < tol,
            "p={p}: {hits} hits, expected {expect} ± {tol}"
        );
    }
}

#[test]
fn random_range_is_uniform_by_chi_squared() {
    // 16 buckets over 100k draws: df = 15, chi² < 37.7 at p = 0.999.
    let mut rng = StdRng::seed_from_u64(13);
    let buckets = 16usize;
    let n = 100_000;
    let mut counts = vec![0u64; buckets];
    for _ in 0..n {
        counts[rng.random_range(0..buckets)] += 1;
    }
    let expect = n as f64 / buckets as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expect).powi(2) / expect)
        .sum();
    assert!(chi2 < 37.7, "chi² {chi2} over {counts:?}");
}

#[test]
fn byte_output_is_uniform_by_chi_squared() {
    // 256 buckets over 1M bytes: df = 255, chi² < 330.5 at p = 0.999.
    let mut rng = StdRng::seed_from_u64(14);
    let mut bytes = vec![0u8; 1 << 20];
    rng.fill_bytes(&mut bytes);
    let mut counts = [0u64; 256];
    for &b in &bytes {
        counts[b as usize] += 1;
    }
    let expect = bytes.len() as f64 / 256.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expect).powi(2) / expect)
        .sum();
    assert!(chi2 < 330.5, "chi² {chi2}");
}

#[test]
fn bit_balance_across_all_64_positions() {
    // Every output bit position must be ~50% set (the ** scrambler's
    // claim); 100k draws give se ~ 158, allow 5 se.
    let mut rng = StdRng::seed_from_u64(15);
    let n = 100_000u64;
    let mut ones = [0u64; 64];
    for _ in 0..n {
        let x = rng.next_u64();
        for (bit, count) in ones.iter_mut().enumerate() {
            *count += (x >> bit) & 1;
        }
    }
    let tol = 5.0 * (n as f64 * 0.25).sqrt();
    for (bit, &count) in ones.iter().enumerate() {
        assert!(
            (count as f64 - n as f64 / 2.0).abs() < tol,
            "bit {bit}: {count} ones of {n}"
        );
    }
}

#[test]
fn lagged_autocorrelation_is_negligible() {
    let mut rng = StdRng::seed_from_u64(16);
    let n = 50_000;
    let xs: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    for lag in [1usize, 2, 7, 64] {
        let cov: f64 = xs.windows(lag + 1).map(|w| w[0] * w[lag]).sum::<f64>() / (n - lag) as f64;
        // Var = 1/12; normalized autocorrelation under 5/sqrt(n).
        let rho = cov * 12.0;
        assert!(
            rho.abs() < 5.0 / (n as f64).sqrt(),
            "lag {lag}: autocorrelation {rho}"
        );
    }
}
