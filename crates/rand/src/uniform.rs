//! Uniform sampling from ranges: `rng.random_range(a..b)`.
//!
//! Integers use Lemire's widening-multiply method with rejection, so
//! every value in the range is exactly equally likely (no modulo bias —
//! the Monte Carlo flip-position sampler feeds chi-squared checks that
//! would catch it). Floats use the affine map from the 53-bit unit
//! interval.

use crate::{Random, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range argument accepted by [`RngExt::random_range`](crate::RngExt::random_range).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "empty range {:?}..{:?}",
            self.start,
            self.end
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "empty range {low:?}..={high:?}");
        T::sample_inclusive(rng, low, high)
    }
}

/// Unbiased draw from `[0, span]` (span inclusive) via Lemire's method.
fn lemire_u64<R: RngCore + ?Sized>(rng: &mut R, span_inclusive: u64) -> u64 {
    if span_inclusive == u64::MAX {
        return rng.next_u64();
    }
    let s = span_inclusive + 1; // number of values, >= 1
                                // Reject the low fringe of the 2^64 space that maps unevenly.
    let threshold = s.wrapping_neg() % s; // (2^64 - s) mod s
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (s as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // span in the unsigned domain; high > low so span >= 1.
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(lemire_u64(rng, span - 1) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = <$t>::random(rng);
                // The affine map can land exactly on `high` after
                // rounding when the span is large; clamp keeps the
                // half-open contract.
                let v = low + (high - low) * unit;
                if v >= high { <$t>::max(low, high - (high - low) * <$t>::EPSILON) } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                low + (high - low) * <$t>::random(rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{RngExt, SeedableRng};

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&w));
            let x = rng.random_range(0..=7u8);
            assert!(x <= 7);
        }
    }

    #[test]
    fn singleton_ranges_are_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(rng.random_range(9..10usize), 9);
            assert_eq!(rng.random_range(4..=4i64), 4);
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _ = rng.random_range(0..=u64::MAX);
            let _ = rng.random_range(0..u64::MAX);
            let _ = rng.random_range(i64::MIN..=i64::MAX);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&v));
            let w = rng.random_range(1e-12..1e-2f64);
            assert!((1e-12..1e-2).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(5..5u32);
    }

    #[test]
    fn every_bucket_is_reachable() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
