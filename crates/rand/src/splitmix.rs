//! SplitMix64 (Steele, Lea & Flood): the seed expander recommended by
//! the xoshiro authors. Also a fine standalone generator for seeding.

use crate::{RngCore, SeedableRng};

/// SplitMix64: a 64-bit state generator used to expand `u64` seeds into
/// full xoshiro state (avoiding the all-zero state and decorrelating
/// nearby seeds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs from the public-domain C implementation
    /// (`splitmix64.c`, Vigna) with x = 0 and x = 1234567.
    #[test]
    fn matches_reference_implementation() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);

        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 0x599E_D017_FB08_FC85);
    }
}
