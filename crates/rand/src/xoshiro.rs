//! xoshiro256\*\* 1.0 (Blackman & Vigna, 2018), translated from the
//! public-domain reference implementation.
//!
//! 256 bits of state, period 2^256 − 1, passes BigCrush. The `**`
//! scrambler has no known linear artifacts in any output bit, so the
//! whole 64-bit output is usable for both float and integer derivation.

use crate::splitmix::SplitMix64;
use crate::{RngCore, SeedableRng};

/// The xoshiro256\*\* generator. See the crate docs for the seeding and
/// stream-stability contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is the one fixed point; remap it the
            // same way a zero u64 seed is expanded.
            return Self::seed_from_u64(0);
        }
        Xoshiro256StarStar { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        // SplitMix64 output is equidistributed, so the expanded state is
        // never all-zero in practice (and never for any u64 seed).
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The frozen stream: first outputs for representative seeds,
    /// cross-checked against an independent Python implementation of the
    /// reference C code. If this test ever fails, the PRNG stream
    /// changed and every recorded experiment in EXPERIMENTS.md is
    /// invalidated — do not "fix" the expected values without bumping
    /// the experiment corpus.
    #[test]
    fn golden_sequence_is_frozen() {
        let expect: [(u64, [u64; 5]); 4] = [
            (
                0,
                [
                    0x99EC_5F36_CB75_F2B4,
                    0xBF6E_1F78_4956_452A,
                    0x1A5F_849D_4933_E6E0,
                    0x6AA5_94F1_262D_2D2C,
                    0xBBA5_AD4A_1F84_2E59,
                ],
            ),
            (
                1,
                [
                    0xB3F2_AF6D_0FC7_10C5,
                    0x853B_5596_4736_4CEA,
                    0x92F8_9756_082A_4514,
                    0x642E_1C7B_C266_A3A7,
                    0xB27A_48E2_9A23_3673,
                ],
            ),
            (
                42,
                [
                    0x1578_0B2E_0C2E_C716,
                    0x6104_D986_6D11_3A7E,
                    0xAE17_5332_39E4_99A1,
                    0xECB8_AD47_03B3_60A1,
                    0xFDE6_DC7F_E2EC_5E64,
                ],
            ),
            (
                2024,
                [
                    0x0E48_715A_13D7_772E,
                    0xC837_F3EE_8A7A_1065,
                    0x1272_314B_15EE_5001,
                    0x28E3_23A6_ABE2_A46B,
                    0xC60D_F3B2_6166_0AA7,
                ],
            ),
        ];
        for (seed, outputs) in expect {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            for (i, want) in outputs.into_iter().enumerate() {
                assert_eq!(rng.next_u64(), want, "seed {seed}, draw {i}");
            }
        }
    }

    #[test]
    fn from_seed_roundtrips_the_state_words() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut a = Xoshiro256StarStar::from_seed(seed);
        let mut b = Xoshiro256StarStar::from_seed(seed);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_seed_is_remapped_not_stuck() {
        let mut rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0, "all-zero state must not be a fixed point");
        let mut canonical = Xoshiro256StarStar::seed_from_u64(0);
        assert_eq!(a, canonical.next_u64());
    }

    #[test]
    fn nearby_seeds_produce_decorrelated_streams() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
