//! The workspace's only randomness source: a small, fast, seedable PRNG
//! with zero external dependencies.
//!
//! The paper's Monte Carlo error-injection loop (§6.4) needs a
//! *controlled* randomness source — every experiment must be exactly
//! reproducible from a `u64` seed, across machines and across PRs. This
//! crate owns that contract outright instead of inheriting whatever
//! stream the `rand` crate of the day ships:
//!
//! * [`rngs::StdRng`] is xoshiro256\*\* (Blackman & Vigna), seeded from a
//!   `u64` through SplitMix64. Sub-nanosecond per draw, 256-bit state,
//!   passes BigCrush.
//! * The generated stream is **frozen**: a golden-sequence regression
//!   test pins the first outputs for known seeds, so the stream can
//!   never silently change between PRs (which would invalidate every
//!   recorded experiment).
//!
//! The API mirrors the subset of the `rand` crate the repo already used,
//! so call sites only changed their imports:
//!
//! ```
//! use vapp_rand::rngs::StdRng;
//! use vapp_rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let unit: f64 = rng.random();
//! let coin = rng.random_bool(0.5);
//! let lane = rng.random_range(0..4usize);
//! assert!((0.0..1.0).contains(&unit));
//! assert!(lane < 4);
//! let _ = coin;
//! ```
//!
//! This is **not** cryptographic randomness. Key/IV material in
//! `vapp-crypto` is caller-provided; nothing security-sensitive may be
//! derived from this generator.

mod splitmix;
mod uniform;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use uniform::{SampleRange, SampleUniform};

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::xoshiro::Xoshiro256StarStar;

    /// The workspace's standard generator: xoshiro256\*\*.
    ///
    /// A type alias (not a newtype) so the whole repo agrees on one
    /// concrete generator in function signatures like
    /// `fn store_load(&self, .., rng: &mut StdRng)`.
    pub type StdRng = Xoshiro256StarStar;
}

/// A source of random bits. Everything else is derived from
/// [`next_u64`](RngCore::next_u64).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 random bits (the upper half of one `next_u64` draw —
    /// xoshiro's high bits are its strongest).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (little-endian `next_u64` words).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`from_seed`](SeedableRng::from_seed).
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded to full state via
    /// SplitMix64 (the seeding scheme recommended by xoshiro's authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ergonomic sampling methods, mirroring the `rand::Rng` surface the
/// repo uses: `random()`, `random_bool(p)`, `random_range(a..b)`.
///
/// Blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution:
    /// full-range for integers, `[0, 1)` for floats, fair coin for
    /// `bool`, independent bytes for `[u8; N]`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53-bit comparison: exact for p = 0 and p = 1.
        f64::random(self) < p
    }

    /// Samples uniformly from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(-1.0..1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types with a standard distribution for [`RngExt::random`].
pub trait Random: Sized {
    /// Samples one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Truncation keeps the high bits (the strong ones).
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_random_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                <$u>::random(rng) as $t
            }
        }
    )*};
}
impl_random_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn fill_bytes_matches_next_u64_words() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[0..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..20], &w2[..4]);
    }

    #[test]
    fn array_random_is_deterministic() {
        let mut a = StdRng::seed_from_u64(2);
        let mut b = StdRng::seed_from_u64(2);
        let x: [u8; 16] = a.random();
        let y: [u8; 16] = b.random();
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn random_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        rng.random_bool(1.5);
    }

    #[test]
    fn random_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }
}
