//! The archive core: sharded banks + extent allocators + namespace.
//!
//! [`Archive`] binds the three bookkeeping layers together. Objects are
//! placed on a bank by id hash ([`crate::namespace::shard_of`]), split
//! into per-tenant protection streams ([`TenantPolicy`] ladder), and
//! each stream's blocks come from that bank's [`ExtentAllocator`].
//! Writes store pristine bytes; a read replays the bank's error channel
//! at the stream's strength with a seed derived from
//! `(archive seed, object id, stream index)` — location-independent, so
//! compaction moves bytes without changing what any future read returns.

use std::sync::Arc;

use vapp_storage::bank::{Bank, BLOCK_BYTES};
use vapp_storage::channel::{CorruptTally, Substrate};

use crate::extent::{Extent, ExtentAllocator};
use crate::namespace::{fnv1a, shard_of, Namespace, ObjectId, ObjectMeta, StreamMeta};

/// One rung of a tenant's protection ladder.
#[derive(Clone, Copy, Debug)]
pub struct Rung {
    /// Fraction of the object's payload in this stream (the last rung
    /// absorbs rounding).
    pub frac: f64,
    /// BCH strength for the stream (`0` = unprotected, approximate).
    pub t: usize,
}

/// A tenant's storage contract: how its objects split into protection
/// streams. The paper's insight — most video bytes tolerate errors if
/// the syntax-critical slice is protected — becomes, at the service
/// layer, a per-tenant price/quality knob.
#[derive(Clone, Debug)]
pub struct TenantPolicy {
    /// Display name (reports, docs).
    pub name: &'static str,
    /// Ladder, strongest-first by convention.
    pub ladder: Vec<Rung>,
}

impl TenantPolicy {
    /// The default three-tier fleet: gold keeps everything strong,
    /// silver weakens the tolerant bulk, bronze stores the bulk raw.
    pub fn default_tiers() -> Vec<TenantPolicy> {
        vec![
            TenantPolicy {
                name: "gold",
                ladder: vec![Rung { frac: 0.25, t: 16 }, Rung { frac: 0.75, t: 10 }],
            },
            TenantPolicy {
                name: "silver",
                ladder: vec![Rung { frac: 0.25, t: 16 }, Rung { frac: 0.75, t: 6 }],
            },
            TenantPolicy {
                name: "bronze",
                ladder: vec![Rung { frac: 0.25, t: 10 }, Rung { frac: 0.75, t: 0 }],
            },
        ]
    }
}

/// Why a put was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutError {
    /// The id is already live.
    Exists,
    /// The object's shard bank has too few free blocks.
    OutOfSpace,
}

/// One served read.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// The decoded payload (may differ from the ingested bytes on
    /// unprotected/overwhelmed streams — that's the approximate deal).
    pub bytes: Vec<u8>,
    /// Whether any stream's decoded bytes mismatch its ingest checksum.
    pub degraded: bool,
    /// Merged substrate tally across the object's streams.
    pub tally: CorruptTally,
}

/// Per-read damage seed: a pure function of the archive seed, the
/// object, and the stream — deliberately *not* of the stream's physical
/// location, so compaction is invisible to readers.
fn read_seed(archive_seed: u64, id: ObjectId, stream: usize) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    mix(archive_seed ^ mix(id ^ mix(stream as u64)))
}

/// The sharded archive store.
#[derive(Clone, Debug)]
pub struct Archive {
    banks: Vec<Bank>,
    allocs: Vec<ExtentAllocator>,
    namespace: Namespace,
    tenants: Vec<TenantPolicy>,
    seed: u64,
}

impl Archive {
    /// An empty archive of `banks` independent banks of `bank_blocks`
    /// blocks each, all on the same substrate, damage drawn from `seed`.
    pub fn new(
        banks: usize,
        bank_blocks: u64,
        substrate: Arc<dyn Substrate>,
        tenants: Vec<TenantPolicy>,
        seed: u64,
    ) -> Self {
        assert!(banks > 0 && !tenants.is_empty());
        Archive {
            banks: (0..banks)
                .map(|_| Bank::new(bank_blocks, Arc::clone(&substrate)))
                .collect(),
            allocs: (0..banks)
                .map(|_| ExtentAllocator::new(bank_blocks))
                .collect(),
            namespace: Namespace::new(),
            tenants,
            seed,
        }
    }

    /// Number of banks (shards).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Tenant policies, by index.
    pub fn tenants(&self) -> &[TenantPolicy] {
        &self.tenants
    }

    /// The live-object namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Free blocks across all banks.
    pub fn free_blocks(&self) -> u64 {
        self.allocs.iter().map(|a| a.free_blocks()).sum()
    }

    /// Free-run count of one bank (the compaction signal).
    pub fn fragments(&self, bank: usize) -> usize {
        self.allocs[bank].fragments()
    }

    /// Splits `len` payload bytes into per-rung byte counts (last rung
    /// absorbs rounding; zero-byte rungs are dropped).
    fn split_lengths(ladder: &[Rung], len: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(ladder.len());
        let mut taken = 0usize;
        for (i, rung) in ladder.iter().enumerate() {
            let n = if i + 1 == ladder.len() {
                len - taken
            } else {
                ((len as f64 * rung.frac) as usize).min(len - taken)
            };
            if n > 0 {
                out.push((n, rung.t));
            }
            taken += n;
        }
        out
    }

    /// Stores a new object for `tenant`. The payload is split into the
    /// tenant's ladder streams, each allocated and written on the
    /// object's shard bank. All-or-nothing: on `OutOfSpace` every
    /// partial allocation is rolled back.
    pub fn put(&mut self, id: ObjectId, tenant: u32, payload: &[u8]) -> Result<(), PutError> {
        if self.namespace.get(id).is_some() {
            return Err(PutError::Exists);
        }
        let shard = shard_of(id, self.banks.len());
        let ladder = &self.tenants[tenant as usize % self.tenants.len()].ladder;
        let parts = Self::split_lengths(ladder, payload.len());

        let mut streams = Vec::with_capacity(parts.len());
        let mut off = 0usize;
        for (n, t) in parts {
            let slice = &payload[off..off + n];
            off += n;
            let blocks = (n.div_ceil(BLOCK_BYTES)) as u64;
            let Some(extents) = self.allocs[shard].allocate(blocks) else {
                // Roll back everything this put already took.
                for s in &streams {
                    let s: &StreamMeta = s;
                    self.allocs[shard].release(&s.extents);
                }
                return Err(PutError::OutOfSpace);
            };
            let mut rem = slice;
            for e in &extents {
                let chunk = rem.len().min(e.blocks as usize * BLOCK_BYTES);
                self.banks[shard].write(e.start, &rem[..chunk]);
                rem = &rem[chunk..];
            }
            streams.push(StreamMeta {
                t,
                bytes: n as u64,
                extents,
                checksum: fnv1a(slice),
            });
        }
        let inserted = self.namespace.insert(id, ObjectMeta { tenant, streams });
        debug_assert!(inserted);
        Ok(())
    }

    /// Serves an object through the substrate decode path. Immutable —
    /// concurrent reads of different objects can fan out over the
    /// worker pool.
    pub fn read(&self, id: ObjectId) -> Option<ReadResult> {
        let meta = self.namespace.get(id)?;
        let shard = shard_of(id, self.banks.len());
        let bank = &self.banks[shard];
        let mut bytes = Vec::with_capacity(meta.bytes() as usize);
        let mut degraded = false;
        let mut tally = CorruptTally::default();
        for (k, s) in meta.streams.iter().enumerate() {
            let mut buf = Vec::with_capacity(s.bytes as usize);
            let mut rem = s.bytes as usize;
            for e in &s.extents {
                let chunk = rem.min(e.blocks as usize * BLOCK_BYTES);
                bank.read_into(e.start, chunk, &mut buf);
                rem -= chunk;
            }
            let t = bank.decode_read(&mut buf, s.bytes * 8, s.t, read_seed(self.seed, id, k));
            tally.flips += t.flips;
            tally.clean += t.clean;
            tally.corrected += t.corrected;
            tally.uncorrectable += t.uncorrectable;
            degraded |= fnv1a(&buf) != s.checksum;
            bytes.extend_from_slice(&buf);
        }
        Some(ReadResult {
            bytes,
            degraded,
            tally,
        })
    }

    /// Removes an object, returning its blocks to the shard's free list.
    pub fn delete(&mut self, id: ObjectId) -> bool {
        let Some(meta) = self.namespace.remove(id) else {
            return false;
        };
        let shard = shard_of(id, self.banks.len());
        for s in &meta.streams {
            self.allocs[shard].release(&s.extents);
        }
        true
    }

    /// Compacts one bank: rewrites every live stream contiguously from
    /// block 0 in object-id order (deterministic layout), then resets
    /// the allocator to a single free tail run. Returns blocks moved.
    /// Reads are unaffected: stored bytes are preserved and damage seeds
    /// are location-independent.
    pub fn compact_bank(&mut self, bank: usize) -> u64 {
        // Gather (id, stream index, pristine bytes) for this bank's
        // residents, in id order.
        let mut staged: Vec<(ObjectId, usize, Vec<u8>)> = Vec::new();
        for (&id, meta) in self.namespace.iter() {
            if shard_of(id, self.banks.len()) != bank {
                continue;
            }
            for (k, s) in meta.streams.iter().enumerate() {
                let mut buf = Vec::with_capacity(s.bytes as usize);
                let mut rem = s.bytes as usize;
                for e in &s.extents {
                    let chunk = rem.min(e.blocks as usize * BLOCK_BYTES);
                    self.banks[bank].read_into(e.start, chunk, &mut buf);
                    rem -= chunk;
                }
                staged.push((id, k, buf));
            }
        }
        // Rewrite contiguously and patch the namespace.
        let mut cursor = 0u64;
        let mut moved = 0u64;
        for (id, k, buf) in staged {
            let blocks = (buf.len().div_ceil(BLOCK_BYTES)) as u64;
            self.banks[bank].write(cursor, &buf);
            let meta = self
                .namespace
                .iter_mut()
                .find(|(&oid, _)| oid == id)
                .map(|(_, m)| m)
                .expect("staged object is live");
            let stream = &mut meta.streams[k];
            if !(stream.extents.len() == 1 && stream.extents[0].start == cursor) {
                moved += blocks;
            }
            stream.extents = vec![Extent {
                start: cursor,
                blocks,
            }];
            cursor += blocks;
        }
        self.allocs[bank].reset_compacted(cursor);
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapp_rand::rngs::StdRng;
    use vapp_rand::{RngExt, SeedableRng};
    use vapp_storage::channel::mlc_pcm;

    fn payload(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<u8>()).collect()
    }

    fn archive() -> Archive {
        Archive::new(4, 512, mlc_pcm(0.0), TenantPolicy::default_tiers(), 99)
    }

    #[test]
    fn put_read_delete_roundtrip_on_clean_substrate() {
        let mut a = archive();
        let p = payload(1000, 1);
        a.put(42, 0, &p).unwrap();
        let r = a.read(42).unwrap();
        assert_eq!(r.bytes, p);
        assert!(!r.degraded);
        assert_eq!(a.put(42, 0, &p), Err(PutError::Exists));
        assert!(a.delete(42));
        assert!(a.read(42).is_none());
        assert!(!a.delete(42));
        assert_eq!(a.free_blocks(), 4 * 512);
    }

    #[test]
    fn out_of_space_rolls_back_partial_allocation() {
        let mut a = Archive::new(1, 8, mlc_pcm(0.0), TenantPolicy::default_tiers(), 7);
        let free = a.free_blocks();
        let too_big = payload(16 * BLOCK_BYTES, 2);
        assert_eq!(a.put(1, 0, &too_big), Err(PutError::OutOfSpace));
        assert_eq!(a.free_blocks(), free, "failed put must not leak blocks");
        assert!(a.namespace().is_empty());
    }

    #[test]
    fn compaction_preserves_reads_and_defragments() {
        let mut a = Archive::new(1, 4096, mlc_pcm(1e-3), TenantPolicy::default_tiers(), 5);
        let payloads: Vec<Vec<u8>> = (0..12).map(|i| payload(700 + 37 * i, i as u64)).collect();
        for (i, p) in payloads.iter().enumerate() {
            a.put(i as u64, (i % 3) as u32, p).unwrap();
        }
        // Punch holes, then capture every surviving read.
        for i in [1u64, 4, 7, 10] {
            assert!(a.delete(i));
        }
        let before: Vec<_> = (0..12u64)
            .filter(|i| !matches!(i, 1 | 4 | 7 | 10))
            .map(|i| (i, a.read(i).unwrap()))
            .collect();
        assert!(a.fragments(0) > 1, "holes should fragment the free list");
        a.compact_bank(0);
        assert_eq!(a.fragments(0), 1);
        for (i, want) in before {
            let got = a.read(i).unwrap();
            assert_eq!(
                got.bytes, want.bytes,
                "object {i} changed across compaction"
            );
            assert_eq!(got.degraded, want.degraded);
        }
    }
}
