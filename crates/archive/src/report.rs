//! The `archive_report`: throughput + per-op-class latency quantiles.
//!
//! Renders a fleet run's outcome and its `vapp-obs` snapshot as the
//! fixed-width table the CLI (`vapp archive`) and the bench-side
//! `archive_report` binary print. Latency quantiles come straight from
//! the mergeable sketches behind `archive.op.<class>.ns`.

use vapp_obs::snapshot::Snapshot;

use crate::fleet::FleetOutcome;

/// Latency classes the service records, in report order.
const OP_CLASSES: [&str; 4] = ["ingest", "read_hit", "read_miss", "delete"];

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Renders the archive report table from a fleet outcome and the obs
/// snapshot taken after the run.
pub fn render(outcome: &FleetOutcome, snap: &Snapshot) -> String {
    let mut out = String::new();
    let secs = outcome.elapsed.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "archive fleet: {} completed / {} submitted ({} rejected) in {:.2}s — {:.0} req/s\n",
        outcome.completed,
        outcome.submitted,
        outcome.rejected,
        secs,
        outcome.completed as f64 / secs,
    ));
    out.push_str(&format!(
        "reads served {}  cache {}/{} hit/miss ({} evictions)  degraded {}  ingested {}  deleted {}  compactions {}\n",
        outcome.reads_served,
        outcome.cache_hits,
        outcome.cache_misses,
        outcome.cache_evictions,
        outcome.degraded,
        outcome.ingested,
        outcome.deleted,
        outcome.compaction_runs,
    ));
    out.push_str(&format!("digest 0x{:016x}\n\n", outcome.digest));

    let widths = [10, 10, 10, 10, 10];
    let header = ["op", "count", "p50", "p99", "p999"];
    for (h, w) in header.iter().zip(widths) {
        out.push_str(&format!("{h:<w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>()));
    out.push('\n');
    for class in OP_CLASSES {
        let name = format!("archive.op.{class}.ns");
        let (count, p50, p99, p999) = match snap.histogram(&name) {
            Some(h) => (
                h.count,
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.quantile(0.999)),
            ),
            None => (0, "-".into(), "-".into(), "-".into()),
        };
        let cells = [class.to_string(), count.to_string(), p50, p99, p999];
        for (cell, w) in cells.iter().zip(widths) {
            out.push_str(&format!("{cell:<w$}"));
        }
        out.push('\n');
    }
    out
}
