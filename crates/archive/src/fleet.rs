//! The fleet workload driver: thousands of simulated clients against one
//! archive service, as a pure function of a master seed.
//!
//! Every random decision — catalog payloads, per-round Poisson op
//! counts, Zipf read targets, upload sizes, delete victims — comes from
//! per-client sub-seeds fanned out of the master seed with
//! [`vapp_sim::derive_subseeds`]. Client plans are generated with
//! `par_map` (pure per client, order-preserving), then *submitted* in a
//! fixed round-robin round order, so the entire run — every stored
//! byte, every served byte, every queue rejection, every cache eviction
//! — is byte-identical at any `VAPP_THREADS`. The run digest folds the
//! completion stream and the final stable counters; wall-clock
//! latencies go to `vapp-obs` sketches only and are deliberately
//! excluded.

use std::time::{Duration, Instant};

use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_sim::{derive_subseeds, sample_flip_count};
use vapp_storage::channel::mlc_pcm;

use crate::namespace::ObjectId;
use crate::service::{ArchiveService, Completion, Request, ServiceConfig};
use crate::store::{Archive, TenantPolicy};

/// Fleet shape and archive sizing.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Simulated clients.
    pub clients: usize,
    /// Scheduling rounds (each client submits its round's ops, round-robin).
    pub rounds: usize,
    /// Pre-loaded catalog objects (the Zipf read population).
    pub initial_objects: usize,
    /// Upper bound on object payload bytes (sizes draw from
    /// `[object_bytes/2, object_bytes)`).
    pub object_bytes: usize,
    /// Mean reads per client per round (Poisson-ish).
    pub read_rate: f64,
    /// Mean uploads per client per round.
    pub upload_rate: f64,
    /// Mean deletes per client per round (of the client's own uploads).
    pub delete_rate: f64,
    /// Zipf exponent for read popularity over the catalog.
    pub zipf_s: f64,
    /// Shard banks.
    pub banks: usize,
    /// Blocks per bank.
    pub bank_blocks: u64,
    /// Raw bit error rate of the MLC substrate.
    pub raw_ber: f64,
    /// Scheduler knobs (queue depth, batch, cache bytes, compaction).
    pub service: ServiceConfig,
}

impl FleetConfig {
    /// Tier-1 scale: small enough for CI, queues sized to provoke real
    /// backpressure and the cache sized to force evictions.
    pub fn smoke() -> Self {
        FleetConfig {
            clients: 24,
            rounds: 4,
            initial_objects: 48,
            object_bytes: 1536,
            read_rate: 2.0,
            upload_rate: 0.5,
            delete_rate: 0.25,
            zipf_s: 1.1,
            banks: 4,
            bank_blocks: 4096,
            raw_ber: 1e-3,
            service: ServiceConfig {
                queue_depth: 16,
                batch: 8,
                cache_bytes: 32 * 1024,
                compact_fragments: 2,
            },
        }
    }

    /// Tier-2 scale: thousands of clients (the `#[ignore]`d soak).
    pub fn soak() -> Self {
        FleetConfig {
            clients: 2000,
            rounds: 3,
            initial_objects: 400,
            object_bytes: 2048,
            read_rate: 1.0,
            upload_rate: 0.2,
            delete_rate: 0.1,
            zipf_s: 1.2,
            banks: 8,
            bank_blocks: 1 << 16,
            raw_ber: 1e-3,
            service: ServiceConfig {
                queue_depth: 256,
                batch: 64,
                cache_bytes: 256 * 1024,
                compact_fragments: 12,
            },
        }
    }
}

/// What a fleet run produced: the determinism digest plus the stable
/// counters (everything here is thread-count-invariant except
/// `elapsed`).
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// FNV-1a over the completion stream + final stable counters.
    pub digest: u64,
    /// Submit attempts (accepted + rejected).
    pub submitted: u64,
    /// Typed queue-full rejections.
    pub rejected: u64,
    /// Completions delivered.
    pub completed: u64,
    /// Reads answered with payload bytes.
    pub reads_served: u64,
    /// Hot-cache hits / misses / evictions.
    pub cache_hits: u64,
    /// See `cache_hits`.
    pub cache_misses: u64,
    /// See `cache_hits`.
    pub cache_evictions: u64,
    /// Reads whose decoded bytes mismatched the ingest checksum.
    pub degraded: u64,
    /// Objects ingested through the queue (excludes catalog preload).
    pub ingested: u64,
    /// Objects deleted.
    pub deleted: u64,
    /// Compaction sweeps that ran.
    pub compaction_runs: u64,
    /// Wall-clock run time (NOT part of the digest).
    pub elapsed: Duration,
}

/// One planned client operation. Upload payloads are regenerated from
/// `payload_seed` at submit time so plans stay small.
#[derive(Clone, Debug)]
enum PlannedOp {
    Upload { seq: u32, payload_seed: u64 },
    Read { id: ObjectId },
    Delete { seq: u32 },
}

struct ClientPlan {
    rounds: Vec<Vec<PlannedOp>>,
}

fn make_id(client: usize, seq: u32) -> ObjectId {
    ((client as u64 + 1) << 40) | seq as u64
}

/// Deterministic payload: size in `[max/2, max)`, bytes from the seed.
fn gen_payload(seed: u64, max_bytes: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = (max_bytes / 2).max(1);
    let n = half + rng.random_range(0..half as u64) as usize;
    (0..n).map(|_| rng.random::<u8>()).collect()
}

/// Zipf CDF over ranks `0..n` with weight `1/(r+1)^s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 0..n {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    cdf
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let total = *cdf.last().expect("non-empty catalog");
    let u = rng.random::<f64>() * total;
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// Poisson-ish draw with mean `rate` (binomial with n=1000).
fn poisson_ish(rate: f64, rng: &mut StdRng) -> u64 {
    sample_flip_count(1000, rate / 1000.0, rng)
}

/// Builds one client's whole schedule from its sub-seed. Pure: same
/// seed + config → same plan, regardless of which worker runs it.
fn plan_client(seed: u64, cfg: &FleetConfig, cdf: &[f64]) -> ClientPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_seq = 0u32;
    // Own uploads from *earlier* rounds still alive (delete candidates).
    let mut alive: Vec<u32> = Vec::new();
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for _ in 0..cfg.rounds {
        let mut ops = Vec::new();
        for _ in 0..poisson_ish(cfg.upload_rate, &mut rng) {
            ops.push(PlannedOp::Upload {
                seq: next_seq,
                payload_seed: rng.random::<u64>(),
            });
            next_seq += 1;
        }
        for _ in 0..poisson_ish(cfg.read_rate, &mut rng) {
            ops.push(PlannedOp::Read {
                id: sample_zipf(cdf, &mut rng) as ObjectId,
            });
        }
        for _ in 0..poisson_ish(cfg.delete_rate, &mut rng) {
            if alive.is_empty() {
                continue;
            }
            let k = rng.random_range(0..alive.len() as u64) as usize;
            ops.push(PlannedOp::Delete {
                seq: alive.swap_remove(k),
            });
        }
        // This round's uploads become next round's delete candidates.
        for op in &ops {
            if let PlannedOp::Upload { seq, .. } = op {
                alive.push(*seq);
            }
        }
        rounds.push(ops);
    }
    ClientPlan { rounds }
}

const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fold_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fold_u64(h: &mut u64, v: u64) {
    fold_bytes(h, &v.to_le_bytes());
}

fn fold_completions(h: &mut u64, completions: &[Completion]) {
    for c in completions {
        match c {
            Completion::Ingested { id, error } => {
                fold_u64(h, 1);
                fold_u64(h, *id);
                fold_u64(h, error.is_some() as u64);
            }
            Completion::ReadDone {
                id,
                bytes,
                cache_hit,
                degraded,
            } => {
                fold_u64(h, 2);
                fold_u64(h, *id);
                fold_u64(h, *cache_hit as u64);
                fold_u64(h, *degraded as u64);
                match bytes {
                    Some(b) => {
                        fold_u64(h, b.len() as u64);
                        fold_bytes(h, b);
                    }
                    None => fold_u64(h, u64::MAX),
                }
            }
            Completion::Deleted { id, existed } => {
                fold_u64(h, 3);
                fold_u64(h, *id);
                fold_u64(h, *existed as u64);
            }
        }
    }
}

/// Runs the fleet against a fresh archive. The returned digest and
/// counters are a pure function of `(cfg, master_seed)` — see
/// `tests/archive_service.rs` for the 1-vs-8-thread pin.
pub fn run_fleet(cfg: &FleetConfig, master_seed: u64) -> FleetOutcome {
    let _span = vapp_obs::span!("archive.fleet");
    let start = Instant::now();
    // Counters fold into the digest as *deltas* across this run, so a
    // second run in the same process (same registry) stays a pure
    // function of the seed.
    let snap0 = vapp_obs::registry::current().snapshot();
    let tenants = TenantPolicy::default_tiers();
    let n_tenants = tenants.len();

    let seeds = derive_subseeds(master_seed, 2 + cfg.clients);
    let archive_seed = seeds[0];
    let catalog_seed = seeds[1];

    let archive = Archive::new(
        cfg.banks,
        cfg.bank_blocks,
        mlc_pcm(cfg.raw_ber),
        tenants,
        archive_seed,
    );
    let mut service = ArchiveService::new(archive, cfg.service);

    // Catalog preload: payloads generated in parallel (pure per id),
    // loaded sequentially in id order.
    let catalog_seeds = derive_subseeds(catalog_seed, cfg.initial_objects);
    let catalog = vapp_par::par_map(catalog_seeds, |_, s| gen_payload(s, cfg.object_bytes));
    for (i, payload) in catalog.iter().enumerate() {
        service
            .preload(i as ObjectId, (i % n_tenants) as u32, payload)
            .expect("catalog must fit the configured banks");
    }

    // Client schedules: pure per client, fanned out over the pool.
    let cdf = zipf_cdf(cfg.initial_objects, cfg.zipf_s);
    let plan_inputs: Vec<u64> = seeds[2..].to_vec();
    let plans = vapp_par::par_map(plan_inputs, |_, s| plan_client(s, cfg, &cdf));

    // Drive: fixed round-robin submission order; on backpressure, drain
    // a batch (folding its completions) and resubmit — never drop.
    let mut digest = FNV_BASIS;
    for round in 0..cfg.rounds {
        for (client, plan) in plans.iter().enumerate() {
            for op in &plan.rounds[round] {
                let mut req = match op {
                    PlannedOp::Upload { seq, payload_seed } => Request::Ingest {
                        id: make_id(client, *seq),
                        tenant: (client % n_tenants) as u32,
                        payload: gen_payload(*payload_seed, cfg.object_bytes),
                    },
                    PlannedOp::Read { id } => Request::Read { id: *id },
                    PlannedOp::Delete { seq } => Request::Delete {
                        id: make_id(client, *seq),
                    },
                };
                loop {
                    match service.submit(req) {
                        Ok(()) => break,
                        Err(full) => {
                            req = full.item;
                            let done = service.drain_batch();
                            fold_completions(&mut digest, &done);
                        }
                    }
                }
            }
        }
    }
    let done = service.drain_all();
    fold_completions(&mut digest, &done);

    // Stable counters seal the digest; latency sketches stay out.
    let snap = vapp_obs::registry::current().snapshot();
    let c = |name: &str| snap.counter(name) - snap0.counter(name);
    let stable = [
        c("archive.req.submitted"),
        c("archive.req.rejected"),
        c("archive.req.completed"),
        c("archive.read.served"),
        c("archive.read.degraded"),
        c("archive.cache.hits"),
        c("archive.cache.misses"),
        c("archive.cache.evictions"),
        c("archive.ingest.objects"),
        c("archive.ingest.bytes"),
        c("archive.delete.objects"),
        c("archive.compact.runs"),
        c("archive.compact.moved_blocks"),
    ];
    for v in stable {
        fold_u64(&mut digest, v);
    }

    FleetOutcome {
        digest,
        submitted: stable[0],
        rejected: stable[1],
        completed: stable[2],
        reads_served: stable[3],
        degraded: stable[4],
        cache_hits: stable[5],
        cache_misses: stable[6],
        cache_evictions: stable[7],
        ingested: stable[8],
        deleted: stable[10],
        compaction_runs: stable[11],
        elapsed: start.elapsed(),
    }
}
