//! A sharded multi-tenant archive service over the approximate-storage
//! substrate.
//!
//! The pipeline crates answer "how do compressed/encrypted videos
//! survive an approximate medium?"; this crate answers "what does a
//! *service* built on that medium look like?". It composes:
//!
//! * [`store`] — the archive core: N independent [`vapp_storage::Bank`]
//!   shards (shard = hash of object id), per-bank extent allocation
//!   ([`extent`]), and a volume/object namespace ([`namespace`]) mapping
//!   each object to per-stream extents. Tenants choose a protection
//!   ladder ([`store::TenantPolicy`]): the syntax-critical slice of
//!   every object stays strongly coded while the tolerant bulk rides a
//!   weaker (or no) code — the paper's approximation contract priced as
//!   a storage tier.
//! * [`service`] — bounded ingest/read queues with typed backpressure
//!   ([`queue`]), a batched scheduler that fans read decodes over the
//!   `vapp-par` pool (batch-BCH in 64-block groups underneath), and a
//!   byte-bounded LRU of corrected payloads ([`cache`]).
//! * [`fleet`] — a deterministic fleet workload driver: Zipf readers and
//!   Poisson-ish uploaders whose every random choice derives from
//!   per-client sub-seeds, so a run is a pure function of the master
//!   seed at any thread count.
//! * [`report`] — throughput + p50/p99/p999 per op class from the
//!   `vapp-obs` sketches.
//!
//! # Example
//!
//! ```
//! use vapp_archive::{run_fleet, FleetConfig};
//!
//! let mut cfg = FleetConfig::smoke();
//! cfg.clients = 4;
//! cfg.rounds = 2;
//! cfg.initial_objects = 8;
//! let a = run_fleet(&cfg, 7);
//! let b = run_fleet(&cfg, 7);
//! assert_eq!(a.digest, b.digest); // pure function of the seed
//! assert!(a.completed > 0);
//! ```

pub mod cache;
pub mod extent;
pub mod fleet;
pub mod namespace;
pub mod queue;
pub mod report;
pub mod service;
pub mod store;

pub use cache::{CachedObject, HotCache};
pub use extent::{Extent, ExtentAllocator};
pub use fleet::{run_fleet, FleetConfig, FleetOutcome};
pub use namespace::{shard_of, Namespace, ObjectId, ObjectMeta, StreamMeta};
pub use queue::{Backpressure, BoundedQueue, OpClass, QueueFull};
pub use service::{ArchiveService, Completion, Request, ServiceConfig};
pub use store::{Archive, PutError, ReadResult, Rung, TenantPolicy};
