//! Per-bank extent allocation: contiguous block runs with a coalescing
//! free list.
//!
//! The allocator hands out block-granular [`Extent`]s inside one bank's
//! address space. Allocation is first-fit and may split a request across
//! several free runs (an object stream's extents need not be
//! contiguous); release re-inserts runs sorted by start and coalesces
//! neighbours. The **no-overlap invariant** — at any moment every block
//! is either in exactly one live extent or exactly one free run — is
//! enforced structurally (allocations only take blocks out of free runs,
//! releases assert disjointness) and property-pinned in
//! `tests/alloc_props.rs`.

/// A contiguous run of blocks inside one bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// First block of the run.
    pub start: u64,
    /// Number of blocks in the run (never zero).
    pub blocks: u64,
}

impl Extent {
    /// One past the last block of the run.
    pub fn end(&self) -> u64 {
        self.start + self.blocks
    }
}

/// First-fit block allocator over one bank's `total` blocks.
#[derive(Clone, Debug)]
pub struct ExtentAllocator {
    total: u64,
    /// Free runs, sorted by start, pairwise disjoint and non-adjacent
    /// (adjacent runs coalesce on release).
    free: Vec<Extent>,
}

impl ExtentAllocator {
    /// A fully-free allocator over `total` blocks.
    pub fn new(total: u64) -> Self {
        let free = if total == 0 {
            Vec::new()
        } else {
            vec![Extent {
                start: 0,
                blocks: total,
            }]
        };
        ExtentAllocator { total, free }
    }

    /// Total blocks managed.
    pub fn total_blocks(&self) -> u64 {
        self.total
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.free.iter().map(|e| e.blocks).sum()
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u64 {
        self.total - self.free_blocks()
    }

    /// Number of disjoint free runs — the fragmentation signal the
    /// service's compaction trigger watches.
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// Allocates `blocks` blocks first-fit, splitting across free runs
    /// as needed. Returns `None` (allocating nothing) when fewer than
    /// `blocks` are free in total.
    pub fn allocate(&mut self, blocks: u64) -> Option<Vec<Extent>> {
        if blocks == 0 {
            return Some(Vec::new());
        }
        if self.free_blocks() < blocks {
            return None;
        }
        let mut out = Vec::new();
        let mut need = blocks;
        let mut i = 0;
        while need > 0 {
            let run = &mut self.free[i];
            let take = run.blocks.min(need);
            out.push(Extent {
                start: run.start,
                blocks: take,
            });
            need -= take;
            if take == run.blocks {
                self.free.remove(i);
            } else {
                run.start += take;
                run.blocks -= take;
                i += 1;
            }
        }
        Some(out)
    }

    /// Returns extents to the free list, coalescing adjacent runs.
    ///
    /// # Panics
    ///
    /// Panics if an extent overlaps the free list or runs past the bank
    /// (double free / corruption — the no-overlap invariant).
    pub fn release(&mut self, extents: &[Extent]) {
        for &e in extents {
            assert!(e.blocks > 0 && e.end() <= self.total, "extent out of range");
            let i = self.free.partition_point(|f| f.start < e.start);
            if i > 0 {
                assert!(self.free[i - 1].end() <= e.start, "double free (left)");
            }
            if i < self.free.len() {
                assert!(e.end() <= self.free[i].start, "double free (right)");
            }
            self.free.insert(i, e);
            // Coalesce with the right neighbour, then the left.
            if i + 1 < self.free.len() && self.free[i].end() == self.free[i + 1].start {
                self.free[i].blocks += self.free[i + 1].blocks;
                self.free.remove(i + 1);
            }
            if i > 0 && self.free[i - 1].end() == self.free[i].start {
                self.free[i - 1].blocks += self.free[i].blocks;
                self.free.remove(i);
            }
        }
    }

    /// Resets the allocator to `used` blocks allocated contiguously from
    /// block 0 (the state compaction leaves a bank in).
    ///
    /// # Panics
    ///
    /// Panics if `used > total`.
    pub fn reset_compacted(&mut self, used: u64) {
        assert!(used <= self.total, "compacted size exceeds bank");
        self.free = if used == self.total {
            Vec::new()
        } else {
            vec![Extent {
                start: used,
                blocks: self.total - used,
            }]
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_free_roundtrip_coalesces_back_to_one_run() {
        let mut a = ExtentAllocator::new(100);
        let x = a.allocate(30).unwrap();
        let y = a.allocate(50).unwrap();
        assert_eq!(a.free_blocks(), 20);
        a.release(&x);
        a.release(&y);
        assert_eq!(a.free_blocks(), 100);
        assert_eq!(a.fragments(), 1, "adjacent frees must coalesce");
    }

    #[test]
    fn allocation_splits_across_fragments() {
        let mut a = ExtentAllocator::new(30);
        let x = a.allocate(10).unwrap(); // [0,10)
        let y = a.allocate(10).unwrap(); // [10,20)
        let _z = a.allocate(10).unwrap(); // [20,30)
        a.release(&x); // free [0,10)
        a.release(&y); // coalesces to [0,20)? no — adjacent: yes
        assert_eq!(a.fragments(), 1);
        let mut b = ExtentAllocator::new(30);
        let p = b.allocate(10).unwrap();
        let _q = b.allocate(10).unwrap();
        let r = b.allocate(10).unwrap();
        b.release(&p);
        b.release(&r);
        assert_eq!(b.fragments(), 2);
        // 15 blocks must span both fragments.
        let got = b.allocate(15).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got.iter().map(|e| e.blocks).sum::<u64>(), 15);
        assert_eq!(b.free_blocks(), 5);
    }

    #[test]
    fn exhaustion_allocates_nothing() {
        let mut a = ExtentAllocator::new(10);
        let x = a.allocate(6).unwrap();
        assert!(a.allocate(5).is_none());
        assert_eq!(a.free_blocks(), 4, "failed allocation must not leak");
        a.release(&x);
        assert!(a.allocate(10).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = ExtentAllocator::new(10);
        let x = a.allocate(4).unwrap();
        a.release(&x);
        a.release(&x);
    }
}
