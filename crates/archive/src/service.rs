//! The request scheduler: bounded queues in, batched archive work out.
//!
//! [`ArchiveService`] wraps an [`Archive`] with two bounded queues
//! (mutations and reads), a [`HotCache`] of corrected payloads, and a
//! drain loop that applies work in deterministic batches:
//!
//! 1. up to `batch` queued mutations, in FIFO order (ingest allocates
//!    and writes; delete releases and invalidates the cache),
//! 2. a compaction sweep of any bank whose free list fragmented past
//!    the configured threshold,
//! 3. up to `batch` queued reads: a sequential cache pass (hits answer
//!    immediately and refresh recency), then the misses fan out over
//!    the `vapp-par` worker pool against the immutable archive — the
//!    substrate decode runs the batch-BCH engine in 64-block groups —
//!    and finally a sequential insert pass (so eviction order is a pure
//!    function of the request order, not thread timing).
//!
//! Every completed request records its wall-clock latency into a
//! per-class `vapp-obs` histogram (`archive.op.<class>.ns`). Latencies
//! feed the report's quantiles only — they are *not* part of the
//! deterministic outcome, which is pinned purely by completion order,
//! payload bytes, and stable counters.

use std::time::Instant;

use crate::cache::{CachedObject, HotCache};
use crate::namespace::ObjectId;
use crate::queue::{BoundedQueue, OpClass, QueueFull};
use crate::store::{Archive, PutError};

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Capacity of each queue (mutations, reads).
    pub queue_depth: usize,
    /// Requests drained per queue per cycle.
    pub batch: usize,
    /// Hot-cache budget in payload bytes.
    pub cache_bytes: u64,
    /// Compact a bank when its free list exceeds this many runs.
    pub compact_fragments: usize,
}

/// A client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Store a new object.
    Ingest {
        /// Object id (client-assigned, unique).
        id: ObjectId,
        /// Owning tenant index.
        tenant: u32,
        /// Pristine payload bytes.
        payload: Vec<u8>,
    },
    /// Retrieve an object.
    Read {
        /// Object id.
        id: ObjectId,
    },
    /// Remove an object.
    Delete {
        /// Object id.
        id: ObjectId,
    },
}

impl Request {
    /// The request's op class.
    pub fn class(&self) -> OpClass {
        match self {
            Request::Ingest { .. } => OpClass::Ingest,
            Request::Read { .. } => OpClass::Read,
            Request::Delete { .. } => OpClass::Delete,
        }
    }
}

/// A finished request, in completion order.
#[derive(Clone, Debug)]
pub enum Completion {
    /// Ingest outcome.
    Ingested {
        /// Object id.
        id: ObjectId,
        /// `None` on success, the refusal otherwise.
        error: Option<PutError>,
    },
    /// Read outcome.
    ReadDone {
        /// Object id.
        id: ObjectId,
        /// Decoded payload; `None` if the object doesn't exist.
        bytes: Option<Vec<u8>>,
        /// Served from the hot cache.
        cache_hit: bool,
        /// At least one stream mismatched its ingest checksum.
        degraded: bool,
    },
    /// Delete outcome.
    Deleted {
        /// Object id.
        id: ObjectId,
        /// Whether the object existed.
        existed: bool,
    },
}

/// The archive service: queues + scheduler + cache over an [`Archive`].
pub struct ArchiveService {
    archive: Archive,
    cfg: ServiceConfig,
    mutations: BoundedQueue<Request>,
    reads: BoundedQueue<ObjectId>,
    cache: HotCache,
}

impl ArchiveService {
    /// Wraps an archive with bounded queues and a hot cache.
    pub fn new(archive: Archive, cfg: ServiceConfig) -> Self {
        ArchiveService {
            mutations: BoundedQueue::new(OpClass::Ingest, cfg.queue_depth, cfg.batch),
            reads: BoundedQueue::new(OpClass::Read, cfg.queue_depth, cfg.batch),
            cache: HotCache::new(cfg.cache_bytes),
            archive,
            cfg,
        }
    }

    /// The underlying archive (tests, reports).
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// Queued requests (mutations, reads).
    pub fn queue_lens(&self) -> (usize, usize) {
        (self.mutations.len(), self.reads.len())
    }

    /// Loads an object directly, bypassing the queues (fleet preload).
    pub fn preload(&mut self, id: ObjectId, tenant: u32, payload: &[u8]) -> Result<(), PutError> {
        self.archive.put(id, tenant, payload)
    }

    /// Submits a request. Counts every attempt under
    /// `archive.req.submitted`; a full queue counts
    /// `archive.req.rejected` and returns the request with a retry
    /// hint — it is never dropped, so after a full drain
    /// `submitted == completed + rejected`.
    pub fn submit(&mut self, req: Request) -> Result<(), QueueFull<Request>> {
        vapp_obs::counter!("archive.req.submitted");
        let res = match req {
            Request::Read { id } => self.reads.push(id).map_err(|e| QueueFull {
                item: Request::Read { id: e.item },
                backpressure: e.backpressure,
            }),
            other => self.mutations.push(other),
        };
        if res.is_err() {
            vapp_obs::counter!("archive.req.rejected");
        }
        res
    }

    /// One scheduler cycle: a mutation batch, a compaction sweep, a read
    /// batch. Returns completions in deterministic order.
    pub fn drain_batch(&mut self) -> Vec<Completion> {
        let _span = vapp_obs::span!("archive.drain");
        let mut out = Vec::new();
        self.drain_mutations(&mut out);
        self.sweep_compaction();
        self.drain_reads(&mut out);
        vapp_obs::counter!("archive.req.completed", out.len() as u64);
        out
    }

    /// Drains until both queues are empty.
    pub fn drain_all(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while !self.mutations.is_empty() || !self.reads.is_empty() {
            out.extend(self.drain_batch());
        }
        out
    }

    fn drain_mutations(&mut self, out: &mut Vec<Completion>) {
        for req in self.mutations.pop_batch(self.cfg.batch) {
            let start = Instant::now();
            match req {
                Request::Ingest {
                    id,
                    tenant,
                    payload,
                } => {
                    let bytes = payload.len() as u64;
                    let error = self.archive.put(id, tenant, &payload).err();
                    if error.is_none() {
                        vapp_obs::counter!("archive.ingest.objects");
                        vapp_obs::counter!("archive.ingest.bytes", bytes);
                    }
                    vapp_obs::histogram!("archive.op.ingest.ns", elapsed_ns(start));
                    out.push(Completion::Ingested { id, error });
                }
                Request::Delete { id } => {
                    let existed = self.archive.delete(id);
                    self.cache.remove(id);
                    if existed {
                        vapp_obs::counter!("archive.delete.objects");
                    }
                    vapp_obs::histogram!("archive.op.delete.ns", elapsed_ns(start));
                    out.push(Completion::Deleted { id, existed });
                }
                Request::Read { .. } => unreachable!("reads route to the read queue"),
            }
        }
    }

    fn sweep_compaction(&mut self) {
        for bank in 0..self.archive.banks() {
            if self.archive.fragments(bank) > self.cfg.compact_fragments {
                let moved = self.archive.compact_bank(bank);
                vapp_obs::counter!("archive.compact.runs");
                vapp_obs::counter!("archive.compact.moved_blocks", moved);
            }
        }
    }

    fn drain_reads(&mut self, out: &mut Vec<Completion>) {
        let ids = self.reads.pop_batch(self.cfg.batch);
        if ids.is_empty() {
            return;
        }
        // Pass 1 (sequential): answer from cache, collect misses.
        enum Slot {
            Hit(CachedObject),
            Miss(usize),
        }
        let mut slots = Vec::with_capacity(ids.len());
        let mut misses = Vec::new();
        for &id in &ids {
            let start = Instant::now();
            if let Some(obj) = self.cache.get(id) {
                vapp_obs::counter!("archive.cache.hits");
                let obj = obj.clone();
                vapp_obs::histogram!("archive.op.read_hit.ns", elapsed_ns(start));
                slots.push(Slot::Hit(obj));
            } else {
                vapp_obs::counter!("archive.cache.misses");
                slots.push(Slot::Miss(misses.len()));
                misses.push(id);
            }
        }
        // Pass 2 (parallel): decode the misses against the immutable
        // archive. par_map preserves order and propagates panics.
        let archive = &self.archive;
        let decoded = vapp_par::par_map(misses.clone(), |_, id| {
            let start = Instant::now();
            let r = archive.read(id);
            vapp_obs::histogram!("archive.op.read_miss.ns", elapsed_ns(start));
            r
        });
        // Pass 3 (sequential): fill the cache in request order so
        // evictions are deterministic, then emit completions.
        for (id, result) in misses.iter().zip(decoded.iter()) {
            if let Some(r) = result {
                let evicted = self.cache.insert(
                    *id,
                    CachedObject {
                        bytes: r.bytes.clone(),
                        degraded: r.degraded,
                    },
                );
                vapp_obs::counter!("archive.cache.evictions", evicted);
            }
        }
        for (&id, slot) in ids.iter().zip(slots) {
            let completion = match slot {
                Slot::Hit(obj) => Completion::ReadDone {
                    id,
                    bytes: Some(obj.bytes),
                    cache_hit: true,
                    degraded: obj.degraded,
                },
                Slot::Miss(k) => match &decoded[k] {
                    Some(r) => {
                        if r.degraded {
                            vapp_obs::counter!("archive.read.degraded");
                        }
                        Completion::ReadDone {
                            id,
                            bytes: Some(r.bytes.clone()),
                            cache_hit: false,
                            degraded: r.degraded,
                        }
                    }
                    None => Completion::ReadDone {
                        id,
                        bytes: None,
                        cache_hit: false,
                        degraded: false,
                    },
                },
            };
            if matches!(&completion, Completion::ReadDone { bytes: Some(_), .. }) {
                vapp_obs::counter!("archive.read.served");
            }
            out.push(completion);
        }
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}
