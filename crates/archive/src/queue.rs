//! Bounded request queues with typed backpressure.
//!
//! The service runs two FIFO queues — mutations (ingest + delete share
//! one so a delete can never overtake the upload that created its
//! object) and reads. Both are **bounded**: a full queue never drops the
//! request and never blocks; `push` hands the item straight back inside
//! a [`QueueFull`] carrying a [`Backpressure`] hint telling the client
//! how many drain cycles to wait before retrying. The
//! `tests/backpressure.rs` suite pins: no drops, no deadlock, and
//! `submitted == completed + rejected` after a full drain.

use std::collections::VecDeque;

/// Request class, for backpressure reporting and per-class latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Upload of a new object.
    Ingest,
    /// Retrieval of a stored object.
    Read,
    /// Removal of a stored object.
    Delete,
}

impl OpClass {
    /// Stable lowercase name (metric keys, report rows).
    pub fn name(&self) -> &'static str {
        match self {
            OpClass::Ingest => "ingest",
            OpClass::Read => "read",
            OpClass::Delete => "delete",
        }
    }
}

/// Retry hint returned with a rejected request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// Class of the rejected request.
    pub class: OpClass,
    /// Queue depth at rejection time (== capacity).
    pub depth: usize,
    /// Suggested wait, in scheduler drain cycles, before retrying:
    /// enough batches to make room at the current batch size.
    pub retry_after: u64,
}

/// A rejected request: the item comes back untouched — bounded queues
/// never drop work they didn't accept.
#[derive(Debug)]
pub struct QueueFull<T> {
    /// The request, returned to the caller.
    pub item: T,
    /// Why, and when to retry.
    pub backpressure: Backpressure,
}

/// A bounded FIFO queue for one request class (or class group).
pub struct BoundedQueue<T> {
    class: OpClass,
    depth: usize,
    batch: usize,
    items: VecDeque<T>,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `depth` requests, drained `batch`
    /// at a time (the batch size only shapes the retry hint).
    pub fn new(class: OpClass, depth: usize, batch: usize) -> Self {
        assert!(depth > 0 && batch > 0);
        BoundedQueue {
            class,
            depth,
            batch,
            items: VecDeque::with_capacity(depth),
        }
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueues a request, or returns it with a retry hint if full.
    pub fn push(&mut self, item: T) -> Result<(), QueueFull<T>> {
        if self.items.len() >= self.depth {
            return Err(QueueFull {
                item,
                backpressure: Backpressure {
                    class: self.class,
                    depth: self.depth,
                    retry_after: self.depth.div_ceil(self.batch) as u64,
                },
            });
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Dequeues up to `n` requests in FIFO order.
    pub fn pop_batch(&mut self, n: usize) -> Vec<T> {
        let take = n.min(self.items.len());
        self.items.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_returns_item_with_hint() {
        let mut q = BoundedQueue::new(OpClass::Read, 2, 4);
        q.push(10u64).unwrap();
        q.push(11).unwrap();
        let err = q.push(12).unwrap_err();
        assert_eq!(err.item, 12, "rejected item must come back intact");
        assert_eq!(err.backpressure.class, OpClass::Read);
        assert_eq!(err.backpressure.depth, 2);
        assert_eq!(err.backpressure.retry_after, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_is_fifo_and_bounded() {
        let mut q = BoundedQueue::new(OpClass::Ingest, 8, 3);
        for i in 0..5u64 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3), vec![3, 4]);
        assert!(q.is_empty());
    }
}
