//! The volume/object namespace: object ids → per-stream extents.
//!
//! An archived video is one **object** owned by a tenant; its payload is
//! split into protection **streams** (importance-partitioned, weakest
//! first — the archive-level analogue of the pipeline's ladder levels),
//! and each stream occupies a list of [`Extent`]s inside the object's
//! shard bank. The shard is a pure function of the object id
//! ([`shard_of`]), so placement never depends on ingest order.

use std::collections::BTreeMap;

use crate::extent::Extent;

/// An object identifier. Ids are assigned by the client namespace (the
/// fleet driver packs `client × sequence`); the archive only requires
/// uniqueness.
pub type ObjectId = u64;

/// SplitMix64 finalizer — the same mix `vapp_rand` seeds with, used here
/// as the shard hash so object placement is stable and well spread.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The bank an object lives on: `hash(id) mod banks`.
pub fn shard_of(id: ObjectId, banks: usize) -> usize {
    (mix64(id) % banks as u64) as usize
}

/// FNV-1a over a byte slice — the namespace's content checksum (pristine
/// bytes at ingest; reads compare against it to count degraded serves).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One protection stream of an object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamMeta {
    /// Protection strength (the ladder parameter `t`; 0 = unprotected).
    pub t: usize,
    /// Live payload bytes in this stream.
    pub bytes: u64,
    /// Where the stream lives inside the object's shard bank.
    pub extents: Vec<Extent>,
    /// FNV-1a of the pristine stream bytes.
    pub checksum: u64,
}

/// Namespace record for one object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Owning tenant index.
    pub tenant: u32,
    /// Protection streams, weakest-first ladder order.
    pub streams: Vec<StreamMeta>,
}

impl ObjectMeta {
    /// Total live payload bytes across streams.
    pub fn bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes).sum()
    }

    /// Total blocks occupied across streams.
    pub fn blocks(&self) -> u64 {
        self.streams
            .iter()
            .flat_map(|s| &s.extents)
            .map(|e| e.blocks)
            .sum()
    }
}

/// The object namespace. A `BTreeMap` keeps iteration order
/// deterministic — compaction walks objects in id order, so the
/// post-compaction layout is a pure function of the live set.
#[derive(Clone, Debug, Default)]
pub struct Namespace {
    objects: BTreeMap<ObjectId, ObjectMeta>,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Self {
        Namespace::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectMeta> {
        self.objects.get(&id)
    }

    /// Inserts a new object; returns `false` (and changes nothing) if
    /// the id already exists.
    pub fn insert(&mut self, id: ObjectId, meta: ObjectMeta) -> bool {
        if self.objects.contains_key(&id) {
            return false;
        }
        self.objects.insert(id, meta);
        true
    }

    /// Removes an object, returning its record.
    pub fn remove(&mut self, id: ObjectId) -> Option<ObjectMeta> {
        self.objects.remove(&id)
    }

    /// Iterates live objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &ObjectMeta)> {
        self.objects.iter()
    }

    /// Mutable iteration in id order (compaction rewrites extents).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&ObjectId, &mut ObjectMeta)> {
        self.objects.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spreads_ids() {
        let banks = 8;
        let mut counts = vec![0usize; banks];
        for id in 0..800u64 {
            counts[shard_of(id, banks)] += 1;
        }
        // Every bank gets a reasonable share of sequential ids.
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }

    #[test]
    fn insert_is_first_writer_wins() {
        let mut ns = Namespace::new();
        let meta = ObjectMeta {
            tenant: 0,
            streams: Vec::new(),
        };
        assert!(ns.insert(7, meta.clone()));
        assert!(!ns.insert(7, meta));
        assert_eq!(ns.len(), 1);
        assert!(ns.remove(7).is_some());
        assert!(ns.is_empty());
    }
}
