//! A bounded hot-object cache of *corrected* bytes.
//!
//! The archive's read path is expensive (substrate damage + batch-BCH
//! decode per stream), so the service keeps the most-recently-served
//! objects' corrected payloads in memory. Eviction is LRU by a logical
//! access tick — no wall clocks anywhere — so the cache's contents, and
//! therefore the hit/miss counters, are a pure function of the access
//! sequence. Capacity is bounded in bytes, not entries: one large video
//! can evict many small ones.
//!
//! Correctness hinges on reads being replayable: a bank read is a pure
//! function of `(stored bytes, t, seed)`, so an object that is evicted
//! and re-faulted decodes to byte-identical payload
//! (`tests/cache_correctness.rs` pins this).

use std::collections::{BTreeMap, BTreeSet};

use crate::namespace::ObjectId;

/// What the cache holds for one object: the corrected payload plus the
/// degraded verdict from the decode that produced it (so a cache hit
/// reports the same answer a cold read would).
#[derive(Clone, Debug)]
pub struct CachedObject {
    /// Corrected payload bytes.
    pub bytes: Vec<u8>,
    /// Whether any stream mismatched its ingest checksum.
    pub degraded: bool,
}

struct Entry {
    obj: CachedObject,
    tick: u64,
}

/// Byte-bounded LRU cache of corrected object payloads.
pub struct HotCache {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: BTreeMap<ObjectId, Entry>,
    /// LRU index: (last-access tick, id), oldest first.
    lru: BTreeSet<(u64, ObjectId)>,
}

impl HotCache {
    /// An empty cache bounded at `capacity` payload bytes.
    pub fn new(capacity: u64) -> Self {
        HotCache {
            capacity,
            used: 0,
            tick: 0,
            entries: BTreeMap::new(),
            lru: BTreeSet::new(),
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Looks up an object, refreshing its recency on hit.
    pub fn get(&mut self, id: ObjectId) -> Option<&CachedObject> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(&id)?;
        self.lru.remove(&(entry.tick, id));
        entry.tick = tick;
        self.lru.insert((tick, id));
        Some(&entry.obj)
    }

    /// Inserts a corrected payload, evicting least-recently-used entries
    /// until it fits. Returns the number of evictions. An object larger
    /// than the whole cache is not inserted (returns 0, caches nothing).
    pub fn insert(&mut self, id: ObjectId, obj: CachedObject) -> u64 {
        let size = obj.bytes.len() as u64;
        if size > self.capacity {
            return 0;
        }
        self.remove(id);
        let mut evicted = 0;
        while self.used + size > self.capacity {
            let &(tick, victim) = self.lru.iter().next().expect("used>0 implies entries");
            self.lru.remove(&(tick, victim));
            let e = self.entries.remove(&victim).expect("lru index in sync");
            self.used -= e.obj.bytes.len() as u64;
            evicted += 1;
        }
        self.tick += 1;
        self.used += size;
        self.lru.insert((self.tick, id));
        self.entries.insert(
            id,
            Entry {
                obj,
                tick: self.tick,
            },
        );
        evicted
    }

    /// Drops an object (delete/overwrite invalidation). Returns whether
    /// it was cached.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        match self.entries.remove(&id) {
            Some(e) => {
                self.lru.remove(&(e.tick, id));
                self.used -= e.obj.bytes.len() as u64;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: usize) -> CachedObject {
        CachedObject {
            bytes: vec![0; n],
            degraded: false,
        }
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut c = HotCache::new(30);
        c.insert(1, obj(10));
        c.insert(2, obj(10));
        c.insert(3, obj(10));
        assert!(c.get(1).is_some()); // refresh 1 → 2 is now oldest
        let evicted = c.insert(4, obj(10));
        assert_eq!(evicted, 1);
        assert!(c.get(2).is_none(), "2 was LRU");
        assert!(c.get(1).is_some() && c.get(3).is_some() && c.get(4).is_some());
    }

    #[test]
    fn oversized_object_is_not_cached() {
        let mut c = HotCache::new(8);
        assert_eq!(c.insert(1, obj(9)), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_frees_budget() {
        let mut c = HotCache::new(10);
        c.insert(1, obj(10));
        assert!(c.remove(1));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.insert(2, obj(10)), 0, "no eviction needed");
        assert!(c.get(2).is_some());
    }
}
