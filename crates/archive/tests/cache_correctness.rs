//! Cache correctness: a cache-served read must be byte-identical to a
//! cold read through the substrate decode path — including after the
//! object is evicted and re-faulted. Plus the tier-2 `#[ignore]` soak:
//! a thousands-of-clients fleet, thread-count invariant.

use std::sync::Arc;

use vapp_archive::{
    run_fleet, Archive, ArchiveService, Completion, FleetConfig, Request, ServiceConfig,
    TenantPolicy,
};
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_storage::channel::mlc_pcm;

fn payload(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<u8>()).collect()
}

fn service(cache_bytes: u64) -> ArchiveService {
    // A damaging substrate: corrected bytes are NOT the stored bytes'
    // identity function, so any cache/decode mismatch shows up.
    let archive = Archive::new(2, 4096, mlc_pcm(2e-2), TenantPolicy::default_tiers(), 31);
    ArchiveService::new(
        archive,
        ServiceConfig {
            queue_depth: 64,
            batch: 16,
            cache_bytes,
            compact_fragments: 1000,
        },
    )
}

fn read_one(svc: &mut ArchiveService, id: u64) -> Completion {
    svc.submit(Request::Read { id }).unwrap();
    let mut done = svc.drain_all();
    assert_eq!(done.len(), 1);
    done.pop().unwrap()
}

#[test]
fn cache_hit_matches_cold_read_and_refault_after_eviction() {
    with_registry(Arc::new(Registry::new()), || {
        let mut svc = service(64 * 1024);
        for id in 0..4u64 {
            svc.preload(id, id as u32 % 3, &payload(1500, id)).unwrap();
        }
        // Cold read (miss), then hot read (hit): identical payloads and
        // identical degraded verdicts.
        let cold = read_one(&mut svc, 0);
        let hot = read_one(&mut svc, 0);
        match (&cold, &hot) {
            (
                Completion::ReadDone {
                    bytes: Some(a),
                    cache_hit: false,
                    degraded: da,
                    ..
                },
                Completion::ReadDone {
                    bytes: Some(b),
                    cache_hit: true,
                    degraded: db,
                    ..
                },
            ) => {
                assert_eq!(a, b, "cache hit must serve the decode's bytes");
                assert_eq!(da, db);
            }
            other => panic!("expected miss then hit, got {other:?}"),
        }
    });
}

#[test]
fn evicted_object_refaults_byte_identical() {
    with_registry(Arc::new(Registry::new()), || {
        // Cache fits roughly one object: every switch evicts.
        let mut svc = service(2048);
        for id in 0..6u64 {
            svc.preload(id, 0, &payload(1500, 100 + id)).unwrap();
        }
        let first: Vec<Completion> = (0..6u64).map(|id| read_one(&mut svc, id)).collect();
        // Each object was evicted by its successors; re-fault them all.
        let second: Vec<Completion> = (0..6u64).map(|id| read_one(&mut svc, id)).collect();
        for (a, b) in first.iter().zip(&second) {
            match (a, b) {
                (
                    Completion::ReadDone {
                        bytes: Some(x),
                        degraded: dx,
                        ..
                    },
                    Completion::ReadDone {
                        bytes: Some(y),
                        cache_hit,
                        degraded: dy,
                        ..
                    },
                ) => {
                    assert!(!cache_hit, "a one-object cache cannot hold the sweep");
                    assert_eq!(x, y, "re-fault after eviction must replay the decode");
                    assert_eq!(dx, dy);
                }
                other => panic!("expected served reads, got {other:?}"),
            }
        }
        let snap = vapp_obs::registry::current().snapshot();
        assert!(snap.counter("archive.cache.evictions") > 0);
        assert_eq!(snap.counter("archive.cache.hits"), 0);
    });
}

#[test]
fn deleted_object_is_invalidated_not_served_stale() {
    with_registry(Arc::new(Registry::new()), || {
        let mut svc = service(64 * 1024);
        svc.preload(9, 0, &payload(900, 9)).unwrap();
        let _warm = read_one(&mut svc, 9); // now cached
        svc.submit(Request::Delete { id: 9 }).unwrap();
        svc.drain_all();
        match read_one(&mut svc, 9) {
            Completion::ReadDone { bytes: None, .. } => {}
            other => panic!("deleted object served from cache: {other:?}"),
        }
    });
}

/// Tier-2 soak: thousands of clients, full service path, 1-vs-8-thread
/// digest equality at scale. Run via the CI `--ignored` job:
/// `cargo test -q --release -- --ignored`.
#[test]
#[ignore = "tier-2 soak: thousands of clients (~minutes)"]
fn soak_fleet_thousands_of_clients_is_thread_count_invariant() {
    const SOAK_SEED: u64 = 0x50A4;
    let cfg = FleetConfig::soak();
    let seq = with_registry(Arc::new(Registry::new()), || {
        vapp_par::with_threads(1, || run_fleet(&cfg, SOAK_SEED))
    });
    let par = with_registry(Arc::new(Registry::new()), || {
        vapp_par::with_threads(8, || run_fleet(&cfg, SOAK_SEED))
    });
    assert_eq!(seq.digest, par.digest, "soak digest moved across threads");
    assert_eq!(seq.submitted, seq.completed + seq.rejected);
    assert!(seq.cache_hits > 0 && seq.reads_served > 0 && seq.ingested > 0);
}
