//! Backpressure pins: a full queue returns a typed retry signal with the
//! request intact (never drops, never deadlocks), and a saturated
//! scheduler drains to empty with `submitted == completed + rejected`.

use std::sync::Arc;

use vapp_archive::{Archive, ArchiveService, OpClass, Request, ServiceConfig, TenantPolicy};
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;
use vapp_storage::channel::mlc_pcm;

fn tiny_service(queue_depth: usize, batch: usize) -> ArchiveService {
    let archive = Archive::new(1, 2048, mlc_pcm(0.0), TenantPolicy::default_tiers(), 1);
    ArchiveService::new(
        archive,
        ServiceConfig {
            queue_depth,
            batch,
            cache_bytes: 4096,
            compact_fragments: 1000,
        },
    )
}

#[test]
fn full_queue_returns_typed_retry_signal_with_request_intact() {
    with_registry(Arc::new(Registry::new()), || {
        let mut svc = tiny_service(2, 1);
        for id in 0..4u64 {
            svc.preload(id, 0, &[7u8; 100]).unwrap();
        }
        svc.submit(Request::Read { id: 0 }).unwrap();
        svc.submit(Request::Read { id: 1 }).unwrap();
        let full = svc.submit(Request::Read { id: 2 }).unwrap_err();
        assert!(
            matches!(full.item, Request::Read { id: 2 }),
            "{:?}",
            full.item
        );
        assert_eq!(full.backpressure.class, OpClass::Read);
        assert_eq!(full.backpressure.depth, 2);
        assert_eq!(full.backpressure.retry_after, 2, "depth 2 / batch 1");
        // The read queue being full must not reject mutations.
        svc.submit(Request::Delete { id: 3 }).unwrap();
        let snap = vapp_obs::registry::current().snapshot();
        assert_eq!(snap.counter("archive.req.submitted"), 4);
        assert_eq!(snap.counter("archive.req.rejected"), 1);
    });
}

#[test]
fn saturated_scheduler_drains_to_empty_and_accounts_every_request() {
    with_registry(Arc::new(Registry::new()), || {
        let mut svc = tiny_service(4, 2);
        for id in 0..8u64 {
            svc.preload(id, 0, &[3u8; 200]).unwrap();
        }
        // Hammer far past capacity, retrying exactly once per rejection
        // after a drain — a client loop that must terminate.
        let mut completions = Vec::new();
        for wave in 0..10u64 {
            for id in 0..8u64 {
                let mut req = if wave % 3 == 2 && id >= 6 {
                    Request::Ingest {
                        id: 1000 + wave * 10 + id,
                        tenant: 0,
                        payload: vec![wave as u8; 150],
                    }
                } else {
                    Request::Read { id }
                };
                loop {
                    match svc.submit(req) {
                        Ok(()) => break,
                        Err(full) => {
                            req = full.item;
                            completions.extend(svc.drain_batch());
                        }
                    }
                }
            }
        }
        completions.extend(svc.drain_all());
        assert_eq!(svc.queue_lens(), (0, 0), "drain_all must empty both queues");

        let snap = vapp_obs::registry::current().snapshot();
        let submitted = snap.counter("archive.req.submitted");
        let rejected = snap.counter("archive.req.rejected");
        let completed = snap.counter("archive.req.completed");
        assert!(rejected > 0, "this workload must saturate depth-4 queues");
        assert_eq!(
            submitted,
            completed + rejected,
            "no request may be dropped or double-counted"
        );
        assert_eq!(completions.len() as u64, completed);
    });
}

#[test]
fn drain_on_empty_queues_is_a_noop() {
    with_registry(Arc::new(Registry::new()), || {
        let mut svc = tiny_service(2, 2);
        assert!(svc.drain_batch().is_empty());
        assert!(svc.drain_all().is_empty());
        assert_eq!(svc.queue_lens(), (0, 0));
    });
}
