//! Property pins for the namespace/extent allocator (`vapp-check`):
//! allocate/free/realloc round-trips conserve blocks, live extents never
//! overlap (each other or the free list), and free-list compaction
//! preserves every live object's bytes.

use vapp_archive::{Archive, ExtentAllocator, TenantPolicy};
use vapp_check::{check, gen};
use vapp_rand::rngs::StdRng;
use vapp_rand::RngExt;
use vapp_storage::channel::mlc_pcm;
use vapp_storage::BLOCK_BYTES;

/// Every block is in exactly one place: allocations are pairwise
/// disjoint and disjoint from what the allocator still counts free.
fn assert_no_overlap(live: &[Vec<vapp_archive::Extent>], total: u64) {
    let mut owner = vec![false; total as usize];
    for extents in live {
        for e in extents {
            assert!(e.blocks > 0 && e.end() <= total, "extent out of range");
            for b in e.start..e.end() {
                assert!(!owner[b as usize], "block {b} allocated twice");
                owner[b as usize] = true;
            }
        }
    }
}

#[test]
fn allocate_free_realloc_roundtrips_conserve_blocks() {
    check("archive.alloc.roundtrip", 200, |rng| {
        let total = rng.random_range(16..256u64);
        let mut alloc = ExtentAllocator::new(total);
        let mut live: Vec<Vec<vapp_archive::Extent>> = Vec::new();
        for _ in 0..40 {
            let free = alloc.free_blocks();
            if !live.is_empty() && rng.random_bool(0.4) {
                let k = gen::index(rng, live.len());
                alloc.release(&live.swap_remove(k));
            } else {
                let want = rng.random_range(1..(total / 2).max(2));
                match alloc.allocate(want) {
                    Some(extents) => {
                        assert_eq!(
                            extents.iter().map(|e| e.blocks).sum::<u64>(),
                            want,
                            "allocation must deliver exactly what was asked"
                        );
                        live.push(extents);
                    }
                    None => {
                        assert!(free < want, "refusal only when short on blocks");
                        assert_eq!(alloc.free_blocks(), free, "failed alloc must not leak");
                    }
                }
            }
            let used: u64 = live.iter().flatten().map(|e| e.blocks).sum();
            assert_eq!(alloc.used_blocks(), used, "block conservation");
            assert_no_overlap(&live, total);
        }
        // Free everything: one coalesced run, all blocks back.
        for extents in live.drain(..) {
            alloc.release(&extents);
        }
        assert_eq!(alloc.free_blocks(), total);
        assert_eq!(alloc.fragments(), 1);
        assert!(alloc.allocate(total).is_some(), "full realloc after drain");
    });
}

/// Random put/delete churn, then compaction of every bank: every
/// surviving object reads back the same bytes with the same degraded
/// verdict, and the free lists collapse to single runs.
#[test]
fn compaction_preserves_every_live_objects_bytes() {
    check("archive.alloc.compaction", 25, |rng| {
        let seed = rng.random::<u64>();
        let banks = rng.random_range(1..4u64) as usize;
        let mut archive = Archive::new(
            banks,
            2048,
            mlc_pcm(1e-3),
            TenantPolicy::default_tiers(),
            seed,
        );
        let mut payloads = Vec::new();
        for id in 0..rng.random_range(8..20u64) {
            let payload = gen::bytes(rng, 1..3 * BLOCK_BYTES * 4);
            archive.put(id, (id % 3) as u32, &payload).unwrap();
            payloads.push(id);
        }
        let victims = gen::distinct(rng, 0..payloads.len(), payloads.len() / 3);
        for &v in &victims {
            assert!(archive.delete(payloads[v]));
        }
        let survivors: Vec<u64> = (0..payloads.len())
            .filter(|i| !victims.contains(i))
            .map(|i| payloads[i])
            .collect();
        let before: Vec<_> = survivors
            .iter()
            .map(|&id| archive.read(id).unwrap())
            .collect();
        for bank in 0..banks {
            archive.compact_bank(bank);
            assert_eq!(archive.fragments(bank), 1, "compaction must defragment");
        }
        for (&id, want) in survivors.iter().zip(&before) {
            let got = archive.read(id).unwrap();
            assert_eq!(
                got.bytes, want.bytes,
                "object {id} changed across compaction"
            );
            assert_eq!(got.degraded, want.degraded);
        }
    });
}

/// Namespace-level no-overlap: after arbitrary churn, the extents of
/// all live objects on each bank are pairwise disjoint.
#[test]
fn live_object_extents_never_overlap() {
    check("archive.alloc.no_overlap", 40, |rng: &mut StdRng| {
        let mut archive = Archive::new(
            2,
            1024,
            mlc_pcm(0.0),
            TenantPolicy::default_tiers(),
            rng.random::<u64>(),
        );
        let mut next_id = 0u64;
        let mut live = Vec::new();
        for _ in 0..60 {
            if !live.is_empty() && rng.random_bool(0.35) {
                let k = gen::index(rng, live.len());
                assert!(archive.delete(live.swap_remove(k)));
            } else {
                let payload = gen::bytes(rng, 1..6 * BLOCK_BYTES);
                if archive.put(next_id, 0, &payload).is_ok() {
                    live.push(next_id);
                }
                next_id += 1;
            }
        }
        for bank in 0..2 {
            let extents: Vec<Vec<vapp_archive::Extent>> = archive
                .namespace()
                .iter()
                .filter(|(&id, _)| vapp_archive::shard_of(id, 2) == bank)
                .flat_map(|(_, meta)| meta.streams.iter().map(|s| s.extents.clone()))
                .collect();
            assert_no_overlap(&extents, 1024);
        }
    });
}
