//! Shared machinery for the experiment regenerators (one binary per paper
//! figure/table — see `DESIGN.md` §5) and the [`harness`]-driven benches.
//!
//! Every binary honours the `VAPP_SCALE` environment variable:
//!
//! * `small` (default) — minutes-scale runs: reduced resolution, frame
//!   counts and trial counts. Shapes hold; absolute values are noisier.
//! * `full`  — closer to the paper's methodology (more frames, 30 trials).

pub mod harness;

use std::time::Instant;
use vapp_codec::{EncodeResult, Encoder, EncoderConfig};
use vapp_media::Video;
use vapp_sim::Trials;
use vapp_workloads::{suite, NamedClip};
use videoapp::pipeline::measure_loss_curve;
use videoapp::{importance_classes, Assignment, DependencyGraph, ImportanceMap, LossCurve};

/// Experiment scale knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpConfig {
    /// Clip width in pixels.
    pub width: usize,
    /// Clip height in pixels.
    pub height: usize,
    /// Frames per clip.
    pub frames: usize,
    /// Monte Carlo trials per data point (the paper uses 30).
    pub trials: usize,
    /// Number of clips from the workload suite to use.
    pub clips: usize,
}

impl ExpConfig {
    /// Reads the scale from `VAPP_SCALE` (`small` default, `full`).
    pub fn from_env() -> Self {
        match std::env::var("VAPP_SCALE").as_deref() {
            Ok("full") => ExpConfig {
                width: 320,
                height: 192,
                frames: 96,
                trials: 30,
                clips: 7,
            },
            _ => ExpConfig {
                width: 112,
                height: 64,
                frames: 24,
                trials: 5,
                clips: 3,
            },
        }
    }

    /// The workload suite at this scale.
    pub fn suite(&self) -> Vec<NamedClip> {
        let mut clips = suite(self.width, self.height, self.frames);
        clips.truncate(self.clips.max(1));
        clips
    }

    /// The paper's standard-quality encoder settings (§6.3: CRF 24).
    pub fn encoder(&self, crf: u8) -> EncoderConfig {
        EncoderConfig {
            crf,
            keyint: 24,
            bframes: 2,
            ..EncoderConfig::default()
        }
    }
}

/// An encoded clip with its analysis products.
pub struct PreparedClip {
    /// Clip name.
    pub name: &'static str,
    /// The raw input.
    pub original: Video,
    /// Encoder outputs.
    pub result: EncodeResult,
    /// The dependency graph.
    pub graph: DependencyGraph,
    /// Macroblock importances.
    pub importance: ImportanceMap,
    /// Encode wall time (for the §4.3.1 overhead claim).
    pub encode_seconds: f64,
    /// Importance-analysis wall time.
    pub analysis_seconds: f64,
}

/// Encodes and analyses every clip of the suite at the given CRF.
pub fn prepare(cfg: &ExpConfig, crf: u8) -> Vec<PreparedClip> {
    prepare_with(cfg, cfg.encoder(crf))
}

/// Encodes and analyses every clip with an explicit encoder config.
///
/// Clips are independent, so the suite fans out across workers
/// (`vapp_par`); per-clip wall times still measure the work of that clip
/// alone (each unit times its own encode/analysis).
pub fn prepare_with(cfg: &ExpConfig, enc_cfg: EncoderConfig) -> Vec<PreparedClip> {
    let encoder = Encoder::new(enc_cfg);
    vapp_par::par_map(cfg.suite(), |_, clip| {
        let t0 = Instant::now();
        let result = encoder.encode(&clip.video);
        let encode_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let graph = DependencyGraph::from_analysis(&result.analysis);
        let importance = ImportanceMap::compute(&graph);
        let analysis_seconds = t1.elapsed().as_secs_f64();
        PreparedClip {
            name: clip.name,
            original: clip.video,
            result,
            graph,
            importance,
            encode_seconds,
            analysis_seconds,
        }
    })
}

/// The error-rate sweep used by Figures 9 and 10 (x-axes 1e-10…1e-2 and
/// 1e-12…1e-2).
pub fn rate_sweep(from_exp: i32, to_exp: i32) -> Vec<f64> {
    (to_exp..=from_exp).map(|e| 10f64.powi(-e)).rev().collect()
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a table header followed by a rule.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Measures the cumulative loss curve of every importance class of one
/// clip (the Fig. 10 machinery shared by Table 1 and Fig. 11).
pub fn class_curves(p: &PreparedClip, rates: &[f64], trials: Trials) -> Vec<(u32, u64, LossCurve)> {
    let classes = importance_classes(&p.result.analysis, &p.importance);
    let mut out = Vec::with_capacity(classes.len());
    for (i, c) in classes.iter().enumerate() {
        let ranges: Vec<_> = classes[..=i]
            .iter()
            .flat_map(|cc| cc.ranges.iter().cloned())
            .collect();
        let curve = measure_loss_curve(&p.result.stream, &p.original, &ranges, rates, trials);
        out.push((c.exp, c.bits, curve));
    }
    out
}

/// Pools per-clip class curves across the suite (bits summed per class
/// exponent, worst loss per rate — the paper's conservative "across a wide
/// range of videos" empirical relationship) and runs the §7.2 assignment.
pub fn pooled_assignment(
    prepared: &[PreparedClip],
    rates: &[f64],
    trials: Trials,
    budget_db: f64,
    raw_ber: f64,
) -> Assignment {
    use std::collections::BTreeMap;
    let mut bits_by_exp: BTreeMap<u32, u64> = BTreeMap::new();
    let mut loss_by_exp: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    // Per-clip curves are independent; the pooling fold below is ordered
    // and stays sequential.
    let per_clip = vapp_par::par_map(prepared.iter().collect(), |_, p| {
        class_curves(p, rates, trials)
    });
    for clip_curves in per_clip {
        for (exp, bits, curve) in clip_curves {
            *bits_by_exp.entry(exp).or_insert(0) += bits;
            let entry = loss_by_exp
                .entry(exp)
                .or_insert_with(|| vec![0.0; rates.len()]);
            for (ri, &r) in rates.iter().enumerate() {
                entry[ri] = entry[ri].min(curve.loss_at(r));
            }
        }
    }
    // Cumulative curves must be monotone in class: pool then re-cumulate
    // (a higher class's cumulative loss includes all lower classes).
    let exps: Vec<u32> = bits_by_exp.keys().copied().collect();
    let mut pooled_curves = Vec::with_capacity(exps.len());
    let mut running = vec![0.0f64; rates.len()];
    for exp in &exps {
        let l = &loss_by_exp[exp];
        for (ri, &v) in l.iter().enumerate() {
            running[ri] = running[ri].min(v);
        }
        pooled_curves.push(LossCurve::new(
            rates.iter().copied().zip(running.iter().copied()).collect(),
        ));
    }
    let classes: Vec<(u32, u64)> = exps.iter().map(|e| (*e, bits_by_exp[e])).collect();
    Assignment::compute(&classes, &pooled_curves, budget_db, raw_ber)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_sweep_is_ascending() {
        let r = rate_sweep(10, 2);
        assert_eq!(r.len(), 9);
        assert!((r[0] - 1e-10).abs() < 1e-22);
        assert!((r.last().unwrap() - 1e-2).abs() < 1e-12);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn small_config_prepares_quickly() {
        let cfg = ExpConfig {
            width: 48,
            height: 32,
            frames: 4,
            trials: 1,
            clips: 1,
        };
        let prepared = prepare(&cfg, 24);
        assert_eq!(prepared.len(), 1);
        let p = &prepared[0];
        assert!(p.result.stream.payload_bits() > 0);
        assert!(p.importance.max() >= 1.0);
    }
}
