//! Asserts the parallel layer actually scales, from a finished bench run.
//!
//! ```text
//! scaling_check BENCH_parallel.json [--min-speedup 1.5] [--cores N] [--obs OBS.json]
//! ```
//!
//! Reads the `parallel` bench group emitted by `benches/parallel.rs` and
//! requires `loss_curve_w4` to beat `loss_curve_w1` by at least the
//! minimum speedup. The workloads are byte-identical by the vapp-par
//! determinism invariant, so the ratio of their medians is a pure
//! scaling measurement.
//!
//! With `--obs OBS_parallel.json` (an obs snapshot from the same run,
//! e.g. via `VAPP_OBS_OUT`), the per-worker `par.worker.<w>.busy_ns` /
//! `idle_ns` utilization counters are rendered as busy fractions, and a
//! failing gate says *why* scaling fell short — workers starved for
//! tasks (low busy fraction) look very different from workers saturated
//! by an inherently serial stage.
//!
//! On a host with fewer than 4 cores the 4-worker lane cannot physically
//! fan out, so a shortfall there is reported as a `::warning::`
//! annotation instead of a failure — the gate only binds where the
//! hardware can satisfy it. `--cores` overrides the detected count
//! (used by the tests; CI relies on detection).

use std::process::ExitCode;
use vapp_obs::json::Value;
use vapp_obs::Snapshot;

/// One worker's utilization, read from the `par.worker.<w>.*` counters.
#[derive(Debug, PartialEq)]
struct WorkerUtil {
    worker: usize,
    tasks: u64,
    busy_ns: u64,
    idle_ns: u64,
}

impl WorkerUtil {
    fn busy_fraction(&self) -> f64 {
        let wall = self.busy_ns + self.idle_ns;
        if wall == 0 {
            0.0
        } else {
            self.busy_ns as f64 / wall as f64
        }
    }
}

/// Extracts per-worker utilization rows from a snapshot's counters.
fn worker_utilization(snap: &Snapshot) -> Vec<WorkerUtil> {
    let mut out = Vec::new();
    for (name, tasks) in &snap.counters {
        let Some(rest) = name.strip_prefix("par.worker.") else {
            continue;
        };
        let Some(w) = rest.strip_suffix(".tasks") else {
            continue;
        };
        let Ok(worker) = w.parse::<usize>() else {
            continue;
        };
        out.push(WorkerUtil {
            worker,
            tasks: *tasks,
            busy_ns: snap.counter(&format!("par.worker.{worker}.busy_ns")),
            idle_ns: snap.counter(&format!("par.worker.{worker}.idle_ns")),
        });
    }
    out.sort_by_key(|u| u.worker);
    out
}

/// Renders the utilization table (empty string when the snapshot has no
/// worker counters, e.g. a single-threaded run).
fn render_utilization(utils: &[WorkerUtil]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for u in utils {
        let _ = writeln!(
            out,
            "  worker {:>2}: {:>6} tasks, busy {:>6.1}% ({:.1} ms busy / {:.1} ms idle)",
            u.worker,
            u.tasks,
            100.0 * u.busy_fraction(),
            u.busy_ns as f64 / 1e6,
            u.idle_ns as f64 / 1e6,
        );
    }
    out
}

fn load_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let results = v
        .get("results")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: no `results` array"))?;
    let mut out = Vec::new();
    for r in results {
        let name = r
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: result without `name`"))?;
        let median = r
            .get("median_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: `{name}` without `median_ns`"))?;
        out.push((name.to_string(), median));
    }
    Ok(out)
}

/// How the scaling assertion resolved.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// Speedup met the bar (or the host has enough cores and it passed).
    Pass { speedup: f64 },
    /// Speedup below the bar, but the host cannot run 4 workers in
    /// parallel — reported, not enforced.
    SoftPass { speedup: f64, cores: usize },
}

/// Evaluates w1-vs-w4 scaling from the bench medians. Fails hard only
/// when the host has at least 4 cores and the speedup is below the bar.
fn evaluate(medians: &[(String, f64)], min_speedup: f64, cores: usize) -> Result<Outcome, String> {
    let find = |name: &str| -> Result<f64, String> {
        medians
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| *m)
            .ok_or_else(|| format!("bench `{name}` not found in the parallel group"))
    };
    let w1 = find("loss_curve_w1")?;
    let w4 = find("loss_curve_w4")?;
    if w4 <= 0.0 {
        return Err(format!("loss_curve_w4 median is not positive ({w4})"));
    }
    let speedup = w1 / w4;
    if speedup >= min_speedup {
        Ok(Outcome::Pass { speedup })
    } else if cores < 4 {
        Ok(Outcome::SoftPass { speedup, cores })
    } else {
        Err(format!(
            "parallel scaling regressed: loss_curve speedup at 4 workers is \
             {speedup:.2}x (w1 {w1:.0} ns / w4 {w4:.0} ns), required >= \
             {min_speedup:.2}x on this {cores}-core host"
        ))
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut min_speedup = 1.5f64;
    let mut cores = None;
    let mut obs_path = None;
    let mut paths = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--min-speedup" {
            min_speedup = it
                .next()
                .ok_or("--min-speedup needs a value")?
                .parse()
                .map_err(|_| "--min-speedup: invalid value".to_string())?;
        } else if a == "--cores" {
            cores = Some(
                it.next()
                    .ok_or("--cores needs a value")?
                    .parse()
                    .map_err(|_| "--cores: invalid value".to_string())?,
            );
        } else if a == "--obs" {
            obs_path = Some(it.next().ok_or("--obs needs a path")?);
        } else {
            paths.push(a);
        }
    }
    let [path] = paths.as_slice() else {
        return Err(
            "usage: scaling_check BENCH_parallel.json [--min-speedup 1.5] [--cores N] \
             [--obs OBS.json]"
                .into(),
        );
    };
    let cores = cores.unwrap_or_else(vapp_par::available);
    let medians = load_medians(path)?;
    let utilization = match &obs_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            let (_, snap) = Snapshot::from_json(&text).map_err(|e| format!("{p}: {e}"))?;
            let utils = worker_utilization(&snap);
            if utils.is_empty() {
                println!("scaling_check: {p} has no par.worker.* counters (single-threaded run?)");
            } else {
                println!("scaling_check: worker utilization from {p}:");
                print!("{}", render_utilization(&utils));
            }
            render_utilization(&utils)
        }
        None => String::new(),
    };
    match evaluate(&medians, min_speedup, cores).map_err(|e| {
        if utilization.is_empty() {
            e
        } else {
            format!("{e}\nworker utilization for this run:\n{utilization}")
        }
    })? {
        Outcome::Pass { speedup } => {
            println!(
                "scaling_check: 4-worker speedup {speedup:.2}x >= {min_speedup:.2}x \
                 ({cores} cores) — ok"
            );
        }
        Outcome::SoftPass { speedup, cores } => {
            // GitHub annotation syntax: visible in the job summary without
            // failing the run.
            println!(
                "::warning::scaling_check: 4-worker speedup {speedup:.2}x is below \
                 {min_speedup:.2}x, but this host has only {cores} cores — \
                 not enforced (needs >= 4 cores to bind)"
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scaling_check: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(w1: f64, w4: f64) -> Vec<(String, f64)> {
        vec![
            ("loss_curve_w1".to_string(), w1),
            ("loss_curve_w2".to_string(), (w1 + w4) / 2.0),
            ("loss_curve_w4".to_string(), w4),
            ("loss_curve_w8".to_string(), w4),
        ]
    }

    #[test]
    fn good_scaling_passes() {
        let out = evaluate(&medians(1000.0, 400.0), 1.5, 8).expect("pass");
        match out {
            Outcome::Pass { speedup } => assert!((speedup - 2.5).abs() < 1e-12),
            other => panic!("expected Pass, got {other:?}"),
        }
    }

    #[test]
    fn poor_scaling_fails_on_a_big_host() {
        let err = evaluate(&medians(1000.0, 900.0), 1.5, 8).expect_err("must fail");
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("1.11x"), "reports the measured speedup: {err}");
    }

    #[test]
    fn poor_scaling_soft_passes_on_a_small_host() {
        let out = evaluate(&medians(1000.0, 900.0), 1.5, 2).expect("soft pass");
        match out {
            Outcome::SoftPass { speedup, cores } => {
                assert!((speedup - 1000.0 / 900.0).abs() < 1e-12);
                assert_eq!(cores, 2);
            }
            other => panic!("expected SoftPass, got {other:?}"),
        }
    }

    #[test]
    fn good_scaling_on_a_small_host_is_a_plain_pass() {
        // A 2-core box that still clears the bar (e.g. SMT) passes
        // normally — the soft path is only for shortfalls.
        let out = evaluate(&medians(1000.0, 500.0), 1.5, 2).expect("pass");
        assert!(matches!(out, Outcome::Pass { .. }));
    }

    #[test]
    fn missing_lanes_are_an_error() {
        let only_w1 = vec![("loss_curve_w1".to_string(), 1000.0)];
        let err = evaluate(&only_w1, 1.5, 8).expect_err("must fail");
        assert!(err.contains("loss_curve_w4"), "{err}");
    }

    #[test]
    fn worker_utilization_reads_counters_and_renders_fractions() {
        let snap = Snapshot {
            counters: vec![
                ("core.flips.injected".to_string(), 5),
                ("par.worker.0.busy_ns".to_string(), 3_000_000),
                ("par.worker.0.idle_ns".to_string(), 1_000_000),
                ("par.worker.0.tasks".to_string(), 12),
                ("par.worker.1.busy_ns".to_string(), 2_000_000),
                ("par.worker.1.idle_ns".to_string(), 2_000_000),
                ("par.worker.1.tasks".to_string(), 9),
                ("par.worker.bogus.tasks".to_string(), 1),
            ],
            ..Snapshot::default()
        };
        let utils = worker_utilization(&snap);
        assert_eq!(utils.len(), 2, "non-numeric worker ids are skipped");
        assert_eq!(utils[0].worker, 0);
        assert_eq!(utils[0].tasks, 12);
        assert!((utils[0].busy_fraction() - 0.75).abs() < 1e-12);
        assert!((utils[1].busy_fraction() - 0.50).abs() < 1e-12);
        let table = render_utilization(&utils);
        assert!(table.contains("worker  0"), "{table}");
        assert!(table.contains("75.0%"), "{table}");
        assert!(table.contains("12 tasks"), "{table}");
    }

    #[test]
    fn empty_snapshot_yields_no_utilization() {
        assert!(worker_utilization(&Snapshot::default()).is_empty());
        assert_eq!(render_utilization(&[]), "");
    }
}
