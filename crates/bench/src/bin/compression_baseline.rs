//! **§6.3 / §7.2 baseline**: the quality cost of *deterministic
//! compression* — how many dB the encoder loses when asked to shave the
//! same 10–15% of storage that approximation saves. The paper measures
//! 0.4–0.6 dB and sizes the approximation budget at 0.3 dB so that
//! approximation always wins.

use vapp_bench::{prepare, print_header, print_row, ExpConfig};
use vapp_metrics::video_psnr;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Compression baseline: dB lost per % of storage saved ==\n");
    let widths = [10usize, 12, 14, 14];
    print_header(
        &["CRF step", "bits saved %", "PSNR loss dB", "dB per 10%"],
        &widths,
    );

    let base = prepare(&cfg, 24);
    for &delta in &[1u8, 2, 3] {
        let tighter = prepare(&cfg, 24 + delta);
        let mut saved = 0.0;
        let mut loss = 0.0;
        for (a, b) in base.iter().zip(&tighter) {
            let bits_a = a.result.stream.payload_bits() as f64;
            let bits_b = b.result.stream.payload_bits() as f64;
            saved += 1.0 - bits_b / bits_a;
            let psnr_a = video_psnr(&a.original, &a.result.reconstruction);
            let psnr_b = video_psnr(&b.original, &b.result.reconstruction);
            loss += psnr_a - psnr_b;
        }
        let n = base.len() as f64;
        let saved_pct = 100.0 * saved / n;
        let loss_db = loss / n;
        print_row(
            &[
                format!("+{delta}"),
                format!("{saved_pct:.1}"),
                format!("{loss_db:.2}"),
                format!("{:.2}", loss_db * 10.0 / saved_pct.max(0.1)),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: 10-15% storage via compression costs 0.4-0.6 dB; hence the 0.3 dB \
         approximation budget guarantees approximation beats compression)"
    );
}
