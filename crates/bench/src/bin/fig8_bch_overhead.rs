//! **Figure 8**: storage overhead and correction capability of the BCH
//! codes used, for 512-bit blocks at a raw bit error rate of 1e-3.

use vapp_bench::{print_header, print_row};
use vapp_storage::bch::Bch;
use vapp_storage::channel::{
    burst_erasure, data_in_video, mlc_pcm, BurstConfig, Substrate, VideoChannelConfig,
};
use vapp_storage::uber::block_failure_rate;

fn main() {
    println!("== Figure 8: BCH overhead and correction capability ==");
    println!("(512-bit blocks, raw BER 1e-3; self-correcting codes)\n");
    let widths = [8, 12, 14, 22, 18];
    print_header(
        &[
            "code",
            "parity",
            "overhead %",
            "uncorrectable rate",
            "paper (approx)",
        ],
        &widths,
    );
    for (t, paper) in [
        (6usize, "1e-6"),
        (7, "1e-7"),
        (8, "1e-8"),
        (9, "1e-9"),
        (10, "1e-10"),
        (11, "1e-11"),
        (16, "1e-16"),
    ] {
        let code = Bch::new(t);
        let q = block_failure_rate(&code, 1e-3);
        print_row(
            &[
                format!("BCH-{t}"),
                format!("{}", code.parity_bits()),
                format!("{:.2}", code.overhead() * 100.0),
                format!("{q:.2e}"),
                paper.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "paper reference points: BCH-6 = 11.7% overhead, BCH-16 = 31.3% overhead \
         (both match exactly: parity is 10 bits per corrected error)"
    );

    // The substrate axis: what the same ladder strengths cost — and how
    // often a protected block fails — on each pluggable error channel.
    // The burst/video substrates realize strength t with interleaved
    // Reed-Solomon (t/102 symbol overhead, near-identical to BCH's
    // 10t/512), so the assignment transfers but the failure model is the
    // channel's own.
    println!();
    println!("== per-substrate realization of the ladder ==");
    let subs: Vec<(&str, std::sync::Arc<dyn Substrate>)> = vec![
        ("mlc", mlc_pcm(1e-3)),
        ("burst", burst_erasure(BurstConfig::default())),
        ("video", data_in_video(VideoChannelConfig::default())),
    ];
    let swidths = [8usize, 10, 9, 13, 18];
    print_header(
        &["channel", "raw BER", "t", "overhead %", "block fail rate"],
        &swidths,
    );
    for (name, sub) in &subs {
        for t in [6usize, 10, 16] {
            print_row(
                &[
                    name.to_string(),
                    format!("{:.1e}", sub.raw_ber()),
                    format!("{t}"),
                    format!("{:.2}", sub.overhead(t) * 100.0),
                    format!("{:.2e}", sub.block_failure_rate(t)),
                ],
                &swidths,
            );
        }
    }
    println!();
    println!(
        "(block-fail rates for burst/video are i.i.d. approximations after\n\
         interleaving; the corruption simulators are the ground truth)"
    );
}
