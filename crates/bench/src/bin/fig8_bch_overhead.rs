//! **Figure 8**: storage overhead and correction capability of the BCH
//! codes used, for 512-bit blocks at a raw bit error rate of 1e-3.

use vapp_bench::{print_header, print_row};
use vapp_storage::bch::Bch;
use vapp_storage::uber::block_failure_rate;

fn main() {
    println!("== Figure 8: BCH overhead and correction capability ==");
    println!("(512-bit blocks, raw BER 1e-3; self-correcting codes)\n");
    let widths = [8, 12, 14, 22, 18];
    print_header(
        &[
            "code",
            "parity",
            "overhead %",
            "uncorrectable rate",
            "paper (approx)",
        ],
        &widths,
    );
    for (t, paper) in [
        (6usize, "1e-6"),
        (7, "1e-7"),
        (8, "1e-8"),
        (9, "1e-9"),
        (10, "1e-10"),
        (11, "1e-11"),
        (16, "1e-16"),
    ] {
        let code = Bch::new(t);
        let q = block_failure_rate(&code, 1e-3);
        print_row(
            &[
                format!("BCH-{t}"),
                format!("{}", code.parity_bits()),
                format!("{:.2}", code.overhead() * 100.0),
                format!("{q:.2e}"),
                paper.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "paper reference points: BCH-6 = 11.7% overhead, BCH-16 = 31.3% overhead \
         (both match exactly: parity is 10 bits per corrected error)"
    );
}
