//! Compares a `BENCH_<group>.json` run against a committed baseline and
//! fails (exit 1) on per-bench median regressions beyond a threshold.
//!
//! ```text
//! bench_compare BASELINE.json CURRENT.json [--threshold 0.25] \
//!               [--allow-missing NAME]...
//! ```
//!
//! A baseline bench missing from the current run is a hard failure: a
//! silently dropped bench is a silently dropped perf gate. Intentional
//! removals are declared with `--allow-missing NAME` (repeatable), which
//! documents the removal in the CI invocation itself.
//!
//! Raw medians are machine-dependent, so absolute comparison against a
//! committed baseline would flag every slower CI runner. Instead the
//! comparison is *normalized*: the per-bench ratio `current / baseline`
//! is divided by the median ratio across all shared benches (the "machine
//! factor" — how much slower this machine is overall). A bench regresses
//! only when its ratio exceeds `(1 + threshold) x machine factor`, i.e.
//! when it slowed down relative to its group, which survives arbitrary
//! uniform machine-speed differences.

use std::process::ExitCode;
use vapp_obs::json::Value;

struct Row {
    name: String,
    base_ns: f64,
    cur_ns: f64,
    ratio: f64,
}

fn load_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let results = v
        .get("results")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: no `results` array"))?;
    let mut out = Vec::new();
    for r in results {
        let name = r
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: result without `name`"))?;
        let median = r
            .get("median_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: `{name}` without `median_ns`"))?;
        if median > 0.0 {
            out.push((name.to_string(), median));
        }
    }
    if out.is_empty() {
        return Err(format!("{path}: no usable results"));
    }
    Ok(out)
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

/// Compares baseline medians against the current run's. Returns whether
/// any bench regressed past the normalized limit. Baseline benches absent
/// from the current run are an error unless named in `allow_missing`.
fn compare(
    base: &[(String, f64)],
    cur: &[(String, f64)],
    threshold: f64,
    allow_missing: &[String],
) -> Result<bool, String> {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (name, base_ns) in base {
        if let Some((_, cur_ns)) = cur.iter().find(|(n, _)| n == name) {
            rows.push(Row {
                name: name.clone(),
                base_ns: *base_ns,
                cur_ns: *cur_ns,
                ratio: cur_ns / base_ns,
            });
        } else if allow_missing.iter().any(|a| a == name) {
            println!("bench-compare: `{name}` missing from current run (allowed by flag)");
        } else {
            missing.push(name.clone());
        }
    }
    if !missing.is_empty() {
        // A dropped bench would silently bypass its perf gate; make the
        // removal explicit with --allow-missing.
        return Err(format!(
            "baseline benches missing from current run: {} \
             (pass --allow-missing NAME per intentionally removed bench)",
            missing.join(", ")
        ));
    }
    // New benches have no baseline yet: warn and leave them ungated until
    // the baseline is regenerated, rather than failing or silently
    // pretending they were compared.
    for (name, _) in cur {
        if !base.iter().any(|(n, _)| n == name) {
            println!("bench-compare: `{name}` not in baseline yet (skipped; regenerate baseline)");
        }
    }
    if rows.is_empty() {
        return Err("no benches shared between baseline and current run".into());
    }

    let mut ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
    let machine_factor = median(&mut ratios);
    let limit = (1.0 + threshold) * machine_factor;
    println!(
        "bench-compare: {} benches, machine factor {machine_factor:.3}, \
         regression limit {limit:.3}x baseline",
        rows.len()
    );

    let mut regressed = false;
    for r in &rows {
        let verdict = if r.ratio > limit {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<28} base {:>12.0} ns  cur {:>12.0} ns  ratio {:>6.3}  {verdict}",
            r.name, r.base_ns, r.cur_ns, r.ratio
        );
    }
    Ok(regressed)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.25f64;
    let mut allow_missing = Vec::new();
    let mut paths = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            threshold = it
                .next()
                .ok_or("--threshold needs a value")?
                .parse()
                .map_err(|_| "--threshold: invalid value".to_string())?;
        } else if a == "--allow-missing" {
            allow_missing.push(it.next().ok_or("--allow-missing needs a bench name")?);
        } else {
            paths.push(a);
        }
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(
            "usage: bench_compare BASELINE.json CURRENT.json [--threshold 0.25] \
             [--allow-missing NAME]..."
                .into(),
        );
    };

    let base = load_medians(baseline)?;
    let cur = load_medians(current)?;
    compare(&base, &cur, threshold, &allow_missing)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench-compare: median regression beyond threshold detected");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-compare: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_bench(dir: &std::path::Path, name: &str, medians: &[(&str, f64)]) -> String {
        let results: Vec<String> = medians
            .iter()
            .map(|(n, m)| format!("{{\"name\":\"{n}\",\"median_ns\":{m}}}"))
            .collect();
        let json = format!("{{\"group\":\"t\",\"results\":[{}]}}", results.join(","));
        let path = dir.join(name);
        std::fs::write(&path, json).expect("write");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn uniform_slowdown_is_not_a_regression() {
        let dir = std::env::temp_dir().join("vapp-bench-compare-test-1");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let base = write_bench(
            &dir,
            "base.json",
            &[("a", 100.0), ("b", 200.0), ("c", 50.0)],
        );
        // The whole machine is 3x slower: every ratio is 3, the machine
        // factor is 3, and nothing exceeds 1.25 x 3.
        let cur = write_bench(
            &dir,
            "cur.json",
            &[("a", 300.0), ("b", 600.0), ("c", 150.0)],
        );
        let b = load_medians(&base).expect("base");
        let c = load_medians(&cur).expect("cur");
        let mut ratios: Vec<f64> = b.iter().zip(&c).map(|((_, bm), (_, cm))| cm / bm).collect();
        let factor = median(&mut ratios);
        assert!((factor - 3.0).abs() < 1e-12);
        assert!(ratios.iter().all(|&r| r <= 1.25 * factor));
    }

    #[test]
    fn single_bench_blowup_is_flagged() {
        let dir = std::env::temp_dir().join("vapp-bench-compare-test-2");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let base = write_bench(
            &dir,
            "base.json",
            &[("a", 100.0), ("b", 200.0), ("c", 50.0)],
        );
        let cur = write_bench(
            &dir,
            "cur.json",
            &[("a", 100.0), ("b", 200.0), ("c", 500.0)],
        );
        let b = load_medians(&base).expect("base");
        let c = load_medians(&cur).expect("cur");
        let ratios: Vec<f64> = b.iter().zip(&c).map(|((_, bm), (_, cm))| cm / bm).collect();
        let mut sorted = ratios.clone();
        let factor = median(&mut sorted);
        assert!((factor - 1.0).abs() < 1e-12);
        assert!(ratios.iter().any(|&r| r > 1.25 * factor));
    }

    #[test]
    fn missing_baseline_bench_is_a_hard_failure() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 200.0)];
        let cur = vec![("a".to_string(), 100.0)];
        let err = compare(&base, &cur, 0.25, &[]).expect_err("must fail");
        assert!(err.contains("b"), "error names the dropped bench: {err}");
        assert!(
            err.contains("--allow-missing"),
            "error points at the flag: {err}"
        );
    }

    #[test]
    fn allow_missing_permits_declared_removals() {
        let base = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 200.0),
            ("c".to_string(), 50.0),
        ];
        let cur = vec![("a".to_string(), 110.0), ("c".to_string(), 55.0)];
        let regressed = compare(&base, &cur, 0.25, &["b".to_string()]).expect("allowed");
        assert!(!regressed);
        // The allowlist only covers the named bench: dropping another
        // still fails.
        let cur2 = vec![("a".to_string(), 110.0)];
        assert!(compare(&base, &cur2, 0.25, &["b".to_string()]).is_err());
    }

    #[test]
    fn compare_flags_relative_regressions_only() {
        let base = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 200.0),
            ("c".to_string(), 50.0),
        ];
        // Uniform 3x slowdown: no regression.
        let uniform = vec![
            ("a".to_string(), 300.0),
            ("b".to_string(), 600.0),
            ("c".to_string(), 150.0),
        ];
        assert!(!compare(&base, &uniform, 0.25, &[]).expect("uniform"));
        // One bench blows up 10x while the rest hold: regression.
        let blowup = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 200.0),
            ("c".to_string(), 500.0),
        ];
        assert!(compare(&base, &blowup, 0.25, &[]).expect("blowup"));
    }

    #[test]
    fn new_benches_without_baseline_stay_ungated() {
        let base = vec![("a".to_string(), 100.0)];
        let cur = vec![("a".to_string(), 100.0), ("brand_new".to_string(), 1e9)];
        assert!(!compare(&base, &cur, 0.25, &[]).expect("new bench is not gated"));
    }

    #[test]
    fn medians_load_and_reject_garbage() {
        let dir = std::env::temp_dir().join("vapp-bench-compare-test-3");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let good = write_bench(&dir, "good.json", &[("x", 10.0)]);
        assert_eq!(load_medians(&good).expect("good"), vec![("x".into(), 10.0)]);
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "not json").expect("write");
        assert!(load_medians(&bad.to_string_lossy()).is_err());
    }
}
