//! **Figure 3**: frame PSNR after a single bit flip, as a function of the
//! affected macroblock's position within the frame.
//!
//! Protocol (paper §3.1): inject one flip at a time into a chosen MB of an
//! inter-coded frame, decode, and measure that frame's PSNR against the
//! error-free decode; average over many frames per MB position. Frames
//! using intra prediction are excluded so compensation errors don't mix
//! into the picture. The expected shape: flips near the top-left corner
//! (early in scan order) hurt far more than flips near the bottom-right.

use vapp_bench::{print_header, print_row, ExpConfig};
use vapp_codec::{decode, FrameType};
use vapp_metrics::video_psnr_per_frame;
use videoapp::pipeline::flip_global_bits;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Figure 3: frame PSNR vs flipped-MB position ==");
    println!("(higher = less damage; origin = top-left corner)\n");

    // Inter-only structure: P frames, no B reordering.
    let mut enc = cfg.encoder(24);
    enc.bframes = 0;
    enc.keyint = cfg.frames as u16; // one I frame, everything else P
    let prepared = vapp_bench::prepare_with(&cfg, enc);

    let grid = vapp_media::MbGrid::for_frame(cfg.width, cfg.height);
    let (cols, rows) = (grid.mb_cols(), grid.mb_rows());
    let mut sum = vec![0.0f64; cols * rows];
    let mut count = vec![0u32; cols * rows];

    for p in &prepared {
        let stream = &p.result.stream;
        let error_free = decode(stream);
        let bases = videoapp::payload_layout(&p.result.analysis);
        for f in &p.result.analysis.frames {
            if f.frame_type != FrameType::P {
                continue;
            }
            // Exclude frames that used any intra prediction (paper §3.1).
            if f.mbs.iter().any(|m| m.intra) {
                continue;
            }
            for (mb, a) in f.mbs.iter().enumerate() {
                if a.bits() == 0 {
                    continue;
                }
                // Flip the middle bit of the MB's span.
                let pos = bases[f.coding_index] + (a.bit_start + a.bit_end) / 2;
                let mut dirty = stream.clone();
                flip_global_bits(&mut dirty, &[pos]);
                let decoded = decode(&dirty);
                let psnr = video_psnr_per_frame(&error_free, &decoded)[f.display_index];
                sum[mb] += psnr;
                count[mb] += 1;
            }
        }
    }

    let widths: Vec<usize> = std::iter::once(5)
        .chain(std::iter::repeat_n(7, cols))
        .collect();
    let header: Vec<&str> = std::iter::once("y\\x")
        .chain((0..cols).map(|_| "PSNR"))
        .collect();
    print_header(&header, &widths);
    let mut corner_tl = 0.0;
    let mut corner_br = 0.0;
    for r in 0..rows {
        let mut cells = vec![format!("{r}")];
        for c in 0..cols {
            let i = r * cols + c;
            let v = if count[i] > 0 {
                sum[i] / count[i] as f64
            } else {
                f64::NAN
            };
            if r == 0 && c == 0 {
                corner_tl = v;
            }
            if r == rows - 1 && c == cols - 1 {
                corner_br = v;
            }
            cells.push(format!("{v:.1}"));
        }
        print_row(&cells, &widths);
    }
    println!();
    println!(
        "top-left corner: {corner_tl:.1} dB, bottom-right corner: {corner_br:.1} dB \
         (paper Fig. 3: bottom-right flips cause much less damage)"
    );
    assert!(
        corner_br > corner_tl,
        "expected the Fig. 3 shape: bottom-right flips less damaging"
    );
}
