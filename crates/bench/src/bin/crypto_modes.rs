//! **§5 / Fig. 7**: which AES modes of operation are compatible with
//! approximate video storage. Empirically verifies the three requirements
//! of §5.1 per mode and reports single-bit-flip damage.

use vapp_bench::{print_header, print_row};
use vapp_crypto::{evaluate_mode, flip_damage, CipherMode};

fn main() {
    println!("== AES modes over approximate storage (paper §5) ==\n");
    let key = [0x2Bu8; 16];
    let iv = [0x7Eu8; 16];
    let plaintext: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();

    let widths = [6usize, 14, 12, 13, 13, 12];
    print_header(
        &[
            "mode",
            "flip damage",
            "unreadable",
            "contained",
            "transparent",
            "compatible",
        ],
        &widths,
    );
    for mode in CipherMode::ALL {
        let d = flip_damage(mode, &key, &iv, &plaintext, 1234);
        let r = evaluate_mode(mode, &key, &iv, 509);
        let damage = if d.exact {
            "1 bit".to_string()
        } else {
            format!("{}b/{}blk", d.damaged_bits, d.damaged_blocks)
        };
        print_row(
            &[
                format!("{mode:?}"),
                damage,
                yes_no(r.unreadable),
                yes_no(r.contained),
                yes_no(r.transparent),
                yes_no(r.compatible()),
            ],
            &widths,
        );
        assert_eq!(r.compatible(), mode.approximation_compatible());
    }
    println!(
        "\n(paper §5.2: ECB fails requirement #1 — dictionary attacks; CBC fails #2/#3 — \
         flips scramble a block and touch the next; OFB and CTR contain a flip to \
         exactly that bit and are fully compatible)"
    );
}

fn yes_no(v: bool) -> String {
    if v {
        "yes".into()
    } else {
        "no".into()
    }
}
