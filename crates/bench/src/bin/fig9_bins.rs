//! **Figure 9**: (a) quality loss vs error rate for 16 equal-storage bins
//! ordered by importance; (b) the maximum macroblock importance in each
//! bin (log2).
//!
//! This is the paper's §7.1 methodology validation: if VideoApp's
//! importance metric is meaningful, the quality-degradation curves must
//! appear in bin order — higher bins (more important bits) degrade at
//! lower error rates.

use vapp_bench::{prepare, print_header, print_row, rate_sweep, ExpConfig};
use vapp_sim::Trials;
use videoapp::pipeline::measure_loss_curve;
use videoapp::{equal_storage_bins, LossCurve};

const BINS: usize = 16;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Figure 9: quality loss per equal-storage importance bin ==\n");
    let prepared = prepare(&cfg, 24);
    let rates = rate_sweep(10, 2);

    // Worst loss curve per bin across the suite (conservative, §6.4).
    // Every (clip, bin) cell of the grid is an independent Monte Carlo
    // experiment with its own per-clip trial seed, so the whole grid fans
    // out; only the worst-case fold below is sequential.
    let mut per_bin: Vec<Vec<f64>> = vec![vec![0.0; rates.len()]; BINS];
    let mut max_importance = [0.0f64; BINS];

    let units: Vec<(usize, videoapp::Bin)> = prepared
        .iter()
        .enumerate()
        .flat_map(|(ci, p)| {
            equal_storage_bins(&p.result.analysis, &p.importance, BINS)
                .into_iter()
                .map(move |b| (ci, b))
        })
        .collect();
    let curves = vapp_par::par_map(units, |_, (ci, b)| {
        let p = &prepared[ci];
        let curve: LossCurve = measure_loss_curve(
            &p.result.stream,
            &p.original,
            &b.ranges,
            &rates,
            Trials::new(cfg.trials, 1000 + ci as u64),
        );
        (b.index, b.max_importance, curve)
    });
    for (bin, max_imp, curve) in curves {
        max_importance[bin] = max_importance[bin].max(max_imp);
        for (ri, &r) in rates.iter().enumerate() {
            per_bin[bin][ri] = per_bin[bin][ri].min(curve.loss_at(r));
        }
    }
    for p in &prepared {
        vapp_obs::info!("bench.fig9.clip", "[{}] done", p.name);
    }

    // (a) loss table: rows = rates, columns = bins.
    let widths: Vec<usize> = std::iter::once(9)
        .chain(std::iter::repeat_n(7, BINS))
        .collect();
    let bin_names: Vec<String> = (0..BINS).map(|b| format!("bin{b}")).collect();
    let header: Vec<&str> = std::iter::once("rate")
        .chain(bin_names.iter().map(|s| s.as_str()))
        .collect();
    println!("(a) worst quality change (dB) vs error rate, per bin:");
    print_header(&header, &widths);
    for (ri, &r) in rates.iter().enumerate() {
        let mut cells = vec![format!("{r:.0e}")];
        for bin in per_bin.iter() {
            cells.push(format!("{:.2}", bin[ri]));
        }
        print_row(&cells, &widths);
    }

    // (b) max importance per bin, log2.
    println!("\n(b) max importance per bin (log2):");
    let widths2 = [6usize, 16];
    print_header(&["bin", "log2(max imp)"], &widths2);
    for (b, &mi) in max_importance.iter().enumerate() {
        print_row(
            &[format!("{b}"), format!("{:.1}", mi.max(1.0).log2())],
            &widths2,
        );
    }

    // Validation: curve order follows bin order at the highest rate.
    let worst_rate = rates.len() - 1;
    let mut violations = 0;
    for b in 0..BINS - 1 {
        if per_bin[b][worst_rate] < per_bin[b + 1][worst_rate] - 0.5 {
            violations += 1;
        }
    }
    println!(
        "\norder check at rate 1e-2: {violations} inversions > 0.5 dB across {} boundaries",
        BINS - 1
    );
    println!("(paper §7.1: loss curves strictly follow the bin importance order)");
}
