//! **Figure 11 + headline numbers**: PSNR vs storage cells per encoded
//! pixel for three designs on the 8-level MLC PCM substrate —
//!
//! * *Uniform Correction*: BCH-16 on every payload bit,
//! * *Variable Correction*: VideoApp's Table-1 assignment,
//! * *Ideal*: perfect, overhead-free correction;
//!
//! swept over quality targets CRF 16 / 20 / 24 (§6.3), plus the SLC
//! comparison and the §7.3 headline numbers (47% EC overhead cut,
//! 2.57x vs SLC, 12.5% vs uniform MLC, <0.3 dB loss).

use vapp_bench::{pooled_assignment, prepare, print_header, print_row, rate_sweep, ExpConfig};
use vapp_codec::decode;
use vapp_metrics::video_psnr;
use vapp_rand::SeedableRng;
use vapp_sim::Trials;
use videoapp::{ApproxStore, PivotTable, StoragePolicy, QUALITY_BUDGET_DB};

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Figure 11: quality vs storage density ==");
    println!("(8-level MLC PCM, raw BER 1e-3, 3-month scrub)\n");
    let rates = rate_sweep(12, 2);
    let widths = [6usize, 10, 13, 11, 13, 11, 13, 11];
    print_header(
        &["CRF", "design", "", "uniform", "", "variable", "", "ideal"],
        &widths,
    );
    print_header(
        &[
            "", "", "cells/px", "PSNR", "cells/px", "PSNR", "cells/px", "PSNR",
        ],
        &widths,
    );

    let mut headline: Option<(f64, f64, f64, f64)> = None;
    for &crf in &[16u8, 20, 24] {
        let prepared = prepare(&cfg, crf);
        let assignment = pooled_assignment(
            &prepared,
            &rates,
            Trials::new(cfg.trials, 4000 + crf as u64),
            QUALITY_BUDGET_DB,
            1e-3,
        );
        let policy = StoragePolicy::from_assignment_mlc(&assignment, 1e-3);

        let mut sums = [0.0f64; 6]; // cpp/psnr for uniform, variable, ideal
        let mut worst_delta = 0.0f64;

        // Per-clip setup is cheap and sequential; the clip x trial grid of
        // store/decode rounds fans out (each trial already owns a distinct
        // seed, so the fold is order-free).
        let setups: Vec<_> = prepared
            .iter()
            .map(|p| {
                let table =
                    PivotTable::build(&p.result.analysis, &p.importance, &policy.thresholds);
                let store = ApproxStore::new(policy.clone());
                (table, store)
            })
            .collect();
        let units: Vec<(usize, usize)> = (0..prepared.len())
            .flat_map(|ci| (0..cfg.trials).map(move |t| (ci, t)))
            .collect();
        let trial_psnrs = vapp_par::par_map(units, |_, (ci, t)| {
            let p = &prepared[ci];
            let (table, store) = &setups[ci];
            let mut rng = vapp_rand::rngs::StdRng::seed_from_u64(5000 + (ci * 97 + t) as u64);
            let loaded = store.store_load(&p.result.stream, table, &mut rng);
            let decoded = decode(&loaded);
            (ci, video_psnr(&p.original, &decoded))
        });
        let mut variable_psnrs = vec![f64::MAX; prepared.len()];
        for (ci, psnr) in trial_psnrs {
            variable_psnrs[ci] = variable_psnrs[ci].min(psnr);
        }

        for (ci, p) in prepared.iter().enumerate() {
            let (table, store) = &setups[ci];
            let report = store.report(&p.result.stream, table, p.original.total_pixels() as u64);
            let base_psnr = video_psnr(&p.original, &p.result.reconstruction);
            let variable_psnr = variable_psnrs[ci];
            worst_delta = worst_delta.min(variable_psnr - base_psnr);

            let px = p.original.total_pixels() as f64;
            sums[0] += report.cells_uniform / px;
            sums[1] += base_psnr; // uniform at 1e-16: error-free
            sums[2] += report.cells_per_pixel();
            sums[3] += variable_psnr;
            sums[4] += report.cells_ideal / px;
            sums[5] += base_psnr;

            if crf == 16 && ci == 0 {
                headline = Some((
                    report.ec_overhead_reduction(),
                    report.density_vs_slc(),
                    report.savings_vs_uniform(),
                    0.0,
                ));
            }
        }
        let n = prepared.len() as f64;
        print_row(
            &[
                format!("{crf}"),
                "".into(),
                format!("{:.4}", sums[0] / n),
                format!("{:.2}", sums[1] / n),
                format!("{:.4}", sums[2] / n),
                format!("{:.2}", sums[3] / n),
                format!("{:.4}", sums[4] / n),
                format!("{:.2}", sums[5] / n),
            ],
            &widths,
        );
        if crf == 16 {
            if let Some(h) = headline.as_mut() {
                h.3 = worst_delta;
            }
        }
        vapp_obs::info!(
            "bench.fig11.crf",
            "[crf {crf}] worst quality delta: {worst_delta:.3} dB"
        );
    }

    if let Some((ec_cut, vs_slc, vs_uniform, worst)) = headline {
        println!("\n== headline numbers (CRF 16, most error-intolerant settings) ==");
        println!(
            "EC overhead eliminated:     {:.0}%   (paper: 47%)",
            ec_cut * 100.0
        );
        println!("density vs SLC:             {vs_slc:.2}x (paper: 2.57x)");
        println!(
            "storage saved vs uniform:   {:.1}%  (paper: 12.5%)",
            vs_uniform * 100.0
        );
        println!("worst quality change:       {worst:.2} dB (paper: < 0.3 dB)");
    }
}
