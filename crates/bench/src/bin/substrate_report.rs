//! **§6.2 substrate**: the error substrates behind every storage number.
//!
//! With no arguments (or `--substrate mlc`) this prints the original MLC
//! PCM deep-dive — calibration to raw BER 1e-3 at the 3-month scrub
//! interval, the effect of drift-biased level placement (Guo et al.'s
//! non-uniform partitioning), and physical validation via a Gray-coded
//! cell array.
//!
//! `--substrate mlc|burst|video|all` additionally reruns the paper's
//! headline comparison — importance-partitioned vs uniform precise
//! protection — on the selected error channel(s): i.i.d. MLC PCM flips,
//! bursty page erasure under interleaved Reed–Solomon, and payload
//! round-tripped through the lossy codec itself. This is ROADMAP item 4's
//! question: does the EC-overhead saving survive when errors stop being
//! i.i.d.?

use std::sync::Arc;
use vapp_bench::{print_header, print_row};
use vapp_codec::{decode, Encoder, EncoderConfig};
use vapp_metrics::video_psnr;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_storage::array::CellArray;
use vapp_storage::bits::BitBuf;
use vapp_storage::channel::{
    burst_erasure, data_in_video, mlc_pcm, BurstConfig, Substrate, VideoChannelConfig,
};
use vapp_storage::mlc::{MlcConfig, MlcSubstrate, DEFAULT_SCRUB_DAYS, TARGET_RAW_BER};
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{ApproxStore, DependencyGraph, EcScheme, ImportanceMap, PivotTable, StoragePolicy};

fn substrates_for(name: &str) -> Vec<(&'static str, Arc<dyn Substrate>)> {
    let mlc: (&'static str, Arc<dyn Substrate>) = ("mlc", mlc_pcm(TARGET_RAW_BER));
    let burst: (&'static str, Arc<dyn Substrate>) =
        ("burst", burst_erasure(BurstConfig::default()));
    let video: (&'static str, Arc<dyn Substrate>) =
        ("video", data_in_video(VideoChannelConfig::default()));
    match name {
        "mlc" => vec![mlc],
        "burst" => vec![burst],
        "video" => vec![video],
        "all" => vec![mlc, burst, video],
        other => {
            eprintln!("unknown substrate `{other}` (expected mlc, burst, video or all)");
            std::process::exit(2);
        }
    }
}

/// The §6.2 MLC PCM deep-dive (calibration, drift, cell-array check).
fn mlc_deep_dive() {
    println!("== §6.2: the 8-level MLC PCM substrate ==\n");

    let tuned = MlcSubstrate::tuned_for_ber(MlcConfig::default(), TARGET_RAW_BER);
    println!(
        "calibrated write-noise sigma: {:.5} (targets raw BER 1e-3 at {} days)\n",
        tuned.config().sigma,
        DEFAULT_SCRUB_DAYS
    );

    // BER over the scrub window: biased vs naive placement.
    let naive = MlcSubstrate::new(MlcConfig {
        biased: false,
        sigma: tuned.config().sigma,
        ..Default::default()
    });
    println!("(a) raw BER over the scrub window:");
    let widths = [10usize, 14, 14];
    print_header(&["t (days)", "optimised", "naive"], &widths);
    for t in [0.0f64, 10.0, 30.0, 60.0, 90.0, 180.0] {
        print_row(
            &[
                format!("{t:.0}"),
                format!("{:.2e}", tuned.raw_ber(t)),
                format!("{:.2e}", naive.raw_ber(t)),
            ],
            &widths,
        );
    }
    println!(
        "(the optimised substrate equalises start-of-life and scrub-time error\n\
         rates; the naive one explodes as resistance drifts — Guo et al.'s\n\
         non-uniform level partitioning, paper §2.2)\n"
    );

    // Physical validation: store bits, age, read back.
    println!("(b) physical cell-array validation at the scrub interval:");
    let mut data = BitBuf::zeroed(600_000);
    let mut s = 0xDEAD_BEEFu64;
    for i in 0..data.len() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        data.set(i, (s >> 60) & 1 == 1);
    }
    let array = CellArray::write(&tuned, &data);
    let mut rng = StdRng::seed_from_u64(90);
    let read = array.read(&tuned, DEFAULT_SCRUB_DAYS, &mut rng);
    let flips = read.hamming_distance(&data);
    let measured = flips as f64 / data.len() as f64;
    println!(
        "  stored {} bits in {} cells (3 bits/cell, Gray-coded)",
        data.len(),
        array.cell_count()
    );
    println!(
        "  measured BER {:.2e} vs analytic {:.2e} (paper premise: 1e-3)",
        measured,
        tuned.raw_ber(DEFAULT_SCRUB_DAYS)
    );
    assert!(
        (measured.log10() - (-3.0)).abs() < 0.5,
        "calibration drifted"
    );

    println!("\n(c) level placement (write targets, normalised resistance):");
    let centers: Vec<String> = tuned.centers().iter().map(|c| format!("{c:.3}")).collect();
    println!("  optimised: [{}]", centers.join(", "));
    let ncenters: Vec<String> = naive.centers().iter().map(|c| format!("{c:.3}")).collect();
    println!("  naive:     [{}]", ncenters.join(", "));
    println!();
}

/// Partitioned-vs-uniform EC overhead + worst quality change, rerun on
/// one substrate. The ladder is the paper-shaped [None, BCH-6, BCH-10]
/// assignment; uniform is precise strength-16 everywhere. Each
/// substrate realizes the strengths with its own code, so the overhead
/// columns are the channel's actual parity cost.
fn headline_on(name: &str, substrate: Arc<dyn Substrate>, widths: &[usize]) {
    let video = ClipSpec::new(96, 64, 8, SceneKind::MovingBlocks)
        .seed(23)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 4,
        bframes: 1,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let thresholds = [4.0, 64.0];
    let table = PivotTable::build(&result.analysis, &importance, &thresholds);

    let partitioned = ApproxStore::new(StoragePolicy {
        ladder_levels: vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)],
        thresholds: thresholds.to_vec(),
        substrate: substrate.clone(),
        exact_bch: true,
    });
    let report = partitioned.report(&result.stream, &table, video.total_pixels() as u64);

    // Worst quality change across seeded trials, against the error-free
    // reconstruction.
    let base_psnr = video_psnr(&video, &result.reconstruction);
    let mut worst = 0.0f64;
    for trial in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED + trial);
        let loaded = partitioned.store_load(&result.stream, &table, &mut rng);
        let decoded = decode(&loaded);
        worst = worst.min(video_psnr(&video, &decoded) - base_psnr);
    }

    print_row(
        &[
            name.to_string(),
            format!("{:.1e}", substrate.raw_ber()),
            format!("{:.2}", report.precise_overhead * 100.0),
            format!("{:.2}", report.avg_payload_overhead * 100.0),
            format!("{:.0}%", report.ec_overhead_reduction() * 100.0),
            format!("{worst:.2}"),
        ],
        widths,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut substrate_arg: Option<String> = None;
    while let Some(a) = args.next() {
        if a == "--substrate" {
            substrate_arg = Some(args.next().unwrap_or_else(|| {
                eprintln!("--substrate needs a value");
                std::process::exit(2);
            }));
        } else {
            eprintln!("unknown argument `{a}` (usage: substrate_report [--substrate mlc|burst|video|all])");
            std::process::exit(2);
        }
    }
    let selection = substrate_arg.unwrap_or_else(|| "mlc".to_string());
    if selection == "mlc" || selection == "all" {
        mlc_deep_dive();
    }

    println!("== partitioned vs uniform EC overhead, per error channel ==");
    println!("(ladder [None, BCH-6, BCH-10] over thresholds [4, 64] vs uniform t=16;");
    println!(" each substrate realizes strength t with its own code)\n");
    let widths = [8usize, 10, 13, 13, 9, 11];
    print_header(
        &[
            "channel",
            "raw BER",
            "uniform ov%",
            "partit. ov%",
            "EC cut",
            "worst dPSNR",
        ],
        &widths,
    );
    for (name, substrate) in substrates_for(&selection) {
        headline_on(name, substrate, &widths);
    }
    println!();
    println!(
        "(uniform ov% is the substrate's precise strength-16 realization —\n\
         BCH parity for i.i.d. MLC, Reed-Solomon parity for burst/video;\n\
         EC cut is the fraction of that overhead the partition eliminates)"
    );
}
