//! **§6.2 substrate**: the optimised MLC PCM model behind every storage
//! number — calibration to raw BER 1e-3 at the 3-month scrub interval,
//! the effect of drift-biased level placement (Guo et al.'s non-uniform
//! partitioning), and physical validation via a Gray-coded cell array.

use vapp_bench::{print_header, print_row};
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_storage::array::CellArray;
use vapp_storage::bits::BitBuf;
use vapp_storage::mlc::{MlcConfig, MlcSubstrate, DEFAULT_SCRUB_DAYS, TARGET_RAW_BER};

fn main() {
    println!("== §6.2: the 8-level MLC PCM substrate ==\n");

    let tuned = MlcSubstrate::tuned_for_ber(MlcConfig::default(), TARGET_RAW_BER);
    println!(
        "calibrated write-noise sigma: {:.5} (targets raw BER 1e-3 at {} days)\n",
        tuned.config().sigma,
        DEFAULT_SCRUB_DAYS
    );

    // BER over the scrub window: biased vs naive placement.
    let naive = MlcSubstrate::new(MlcConfig {
        biased: false,
        sigma: tuned.config().sigma,
        ..Default::default()
    });
    println!("(a) raw BER over the scrub window:");
    let widths = [10usize, 14, 14];
    print_header(&["t (days)", "optimised", "naive"], &widths);
    for t in [0.0f64, 10.0, 30.0, 60.0, 90.0, 180.0] {
        print_row(
            &[
                format!("{t:.0}"),
                format!("{:.2e}", tuned.raw_ber(t)),
                format!("{:.2e}", naive.raw_ber(t)),
            ],
            &widths,
        );
    }
    println!(
        "(the optimised substrate equalises start-of-life and scrub-time error\n\
         rates; the naive one explodes as resistance drifts — Guo et al.'s\n\
         non-uniform level partitioning, paper §2.2)\n"
    );

    // Physical validation: store bits, age, read back.
    println!("(b) physical cell-array validation at the scrub interval:");
    let mut data = BitBuf::zeroed(600_000);
    let mut s = 0xDEAD_BEEFu64;
    for i in 0..data.len() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        data.set(i, (s >> 60) & 1 == 1);
    }
    let array = CellArray::write(&tuned, &data);
    let mut rng = StdRng::seed_from_u64(90);
    let read = array.read(&tuned, DEFAULT_SCRUB_DAYS, &mut rng);
    let flips = read.hamming_distance(&data);
    let measured = flips as f64 / data.len() as f64;
    println!(
        "  stored {} bits in {} cells (3 bits/cell, Gray-coded)",
        data.len(),
        array.cell_count()
    );
    println!(
        "  measured BER {:.2e} vs analytic {:.2e} (paper premise: 1e-3)",
        measured,
        tuned.raw_ber(DEFAULT_SCRUB_DAYS)
    );
    assert!(
        (measured.log10() - (-3.0)).abs() < 0.5,
        "calibration drifted"
    );

    println!("\n(c) level placement (write targets, normalised resistance):");
    let centers: Vec<String> = tuned.centers().iter().map(|c| format!("{c:.3}")).collect();
    println!("  optimised: [{}]", centers.join(", "));
    let ncenters: Vec<String> = naive.centers().iter().map(|c| format!("{c:.3}")).collect();
    println!("  naive:     [{}]", ncenters.join(", "));
}
