//! **Archive service report**: runs the deterministic fleet workload
//! against the sharded multi-tenant archive and prints the
//! `archive_report` — throughput, request accounting, cache behaviour,
//! and p50/p99/p999 latency per op class from the `vapp-obs` sketches.
//!
//! ```sh
//! cargo run --release -p vapp-bench --bin archive_report            # smoke
//! cargo run --release -p vapp-bench --bin archive_report -- --soak  # 2000 clients
//! cargo run --release -p vapp-bench --bin archive_report -- --seed 7 --clients 100
//! ```
//!
//! Same-seed runs print identical digests and counters at any
//! `VAPP_THREADS`; only the wall-clock column moves.

use std::sync::Arc;

use vapp_archive::{report, run_fleet, FleetConfig};
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;

fn main() {
    let mut cfg = FleetConfig::smoke();
    let mut seed = 0xA2C4_17E0u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cfg = FleetConfig::smoke(),
            "--soak" => cfg = FleetConfig::soak(),
            "--clients" => cfg.clients = need(&mut args, "--clients"),
            "--rounds" => cfg.rounds = need(&mut args, "--rounds"),
            "--seed" => seed = need(&mut args, "--seed"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let reg = Arc::new(Registry::new());
    let outcome = with_registry(Arc::clone(&reg), || run_fleet(&cfg, seed));
    print!("{}", report::render(&outcome, &reg.snapshot()));
}

fn need<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric value");
        std::process::exit(2);
    })
}
