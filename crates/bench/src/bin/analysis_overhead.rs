//! **§4.3.1**: time and space overhead of the VideoApp analysis — the
//! paper reports a 2–3% time overhead relative to encoding, with the
//! dependency structures an order of magnitude smaller than the raw
//! video.

use vapp_bench::{prepare, print_header, print_row, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== §4.3.1: analysis time and space overhead ==\n");
    let prepared = prepare(&cfg, 24);

    let widths = [16usize, 12, 12, 10, 14, 14];
    print_header(
        &[
            "clip",
            "encode s",
            "analysis s",
            "time %",
            "graph bytes",
            "raw bytes",
        ],
        &widths,
    );
    for p in &prepared {
        // Space: dependency records ≈ deps * 24B + spans * 16B per MB.
        let mut dep_edges = 0usize;
        for f in &p.result.analysis.frames {
            for m in &f.mbs {
                dep_edges += m.deps.len();
            }
        }
        let graph_bytes = dep_edges * 24 + p.result.analysis.total_mbs() * 16;
        let raw_bytes = p.original.total_pixels();
        print_row(
            &[
                p.name.to_string(),
                format!("{:.3}", p.encode_seconds),
                format!("{:.3}", p.analysis_seconds),
                format!("{:.1}", 100.0 * p.analysis_seconds / p.encode_seconds),
                format!("{graph_bytes}"),
                format!("{raw_bytes}"),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper §4.3.1: 2-3% time overhead; graph structures an order of \
         magnitude smaller than the raw video; per-GOP streaming evaluation \
         keeps both bounded — see ImportanceMap::compute_streaming)"
    );
}
