//! **Table 1**: error-correction assignment per importance class, derived
//! by the paper's §7.2 algorithm — a 0.3 dB worst-case budget distributed
//! proportionally to class storage, each class getting the weakest scheme
//! whose incremental loss fits its share.

use vapp_bench::{pooled_assignment, prepare, print_header, print_row, rate_sweep, ExpConfig};
use vapp_sim::Trials;
use videoapp::QUALITY_BUDGET_DB;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Table 1: error-correction assignment ==");
    println!("(budget {QUALITY_BUDGET_DB} dB, raw BER 1e-3, 512-bit blocks)\n");
    let prepared = prepare(&cfg, 24);
    let rates = rate_sweep(12, 2);
    let assignment = pooled_assignment(
        &prepared,
        &rates,
        Trials::new(cfg.trials, 3000),
        QUALITY_BUDGET_DB,
        1e-3,
    );

    let widths = [16usize, 12, 12, 14, 12];
    print_header(
        &["importance", "scheme", "error rate", "overhead %", "bits %"],
        &widths,
    );
    let total_bits: u64 = assignment.per_class.iter().map(|&(_, b, _)| b).sum();
    let mut lo = 0u64;
    for &(exp, bits, scheme) in &assignment.per_class {
        let hi = 2u64.saturating_pow(exp);
        print_row(
            &[
                format!("{}-{}", lo, hi),
                format!("{scheme}"),
                format!("{:.1e}", scheme.residual_ber(1e-3)),
                format!("{:.2}", scheme.overhead() * 100.0),
                format!("{:.1}", 100.0 * bits as f64 / total_bits as f64),
            ],
            &widths,
        );
        lo = hi + 1;
    }
    print_row(
        &[
            "frame header".into(),
            format!("{}", assignment.header_scheme),
            format!("{:.0e}", 1e-16),
            format!("{:.2}", assignment.header_scheme.overhead() * 100.0),
            "<0.1".into(),
        ],
        &widths,
    );
    println!(
        "\naverage payload ECC overhead: {:.2}% (uniform BCH-16 would cost 31.25%)",
        assignment.average_overhead() * 100.0
    );
    println!(
        "EC overhead eliminated: {:.0}% (paper: 47% under the most error-intolerant settings)",
        (1.0 - assignment.average_overhead() / 0.3125) * 100.0
    );
}
