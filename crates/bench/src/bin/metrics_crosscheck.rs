//! **§6.1**: the paper reports PSNR but verified its methodology against
//! SSIM, MS-SSIM and VIF-P too ("our methodology relates well to all of
//! these metrics in case of bit-flip related distortions"). This
//! experiment injects flips at increasing rates and shows all four
//! metrics degrading monotonically, and in agreement.

use vapp_bench::{prepare, print_header, print_row, ExpConfig};
use vapp_codec::decode;
use vapp_metrics::{video_ms_ssim, video_psnr, video_ssim, video_vifp};
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use videoapp::pipeline::flip_global_bits;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== §6.1: metric agreement under bit-flip distortions ==\n");
    let prepared = prepare(&cfg, 24);
    let p = &prepared[0];
    let error_free = decode(&p.result.stream);

    let widths = [10usize, 10, 10, 10, 10];
    print_header(&["rate", "PSNR dB", "SSIM", "MS-SSIM", "VIF-P"], &widths);
    let mut last = (f64::MAX, f64::MAX, f64::MAX, f64::MAX);
    let mut monotone = true;
    for &rate in &[0.0, 1e-6, 1e-5, 1e-4, 1e-3] {
        let mut dirty = p.result.stream.clone();
        if rate > 0.0 {
            let total = dirty.payload_bits();
            let mut rng = StdRng::seed_from_u64(123);
            let flips = vapp_sim::pick_positions(&[0..total], rate, &mut rng);
            flip_global_bits(&mut dirty, &flips);
        }
        let decoded = decode(&dirty);
        let m = (
            video_psnr(&error_free, &decoded),
            video_ssim(&error_free, &decoded),
            video_ms_ssim(&error_free, &decoded),
            video_vifp(&error_free, &decoded),
        );
        print_row(
            &[
                format!("{rate:.0e}"),
                format!("{:.2}", m.0),
                format!("{:.4}", m.1),
                format!("{:.4}", m.2),
                format!("{:.4}", m.3),
            ],
            &widths,
        );
        if m.0 > last.0 + 0.5 || m.1 > last.1 + 0.01 || m.3 > last.3 + 0.02 {
            monotone = false;
        }
        last = m;
    }
    println!(
        "\nall four metrics degrade together: {}",
        if monotone {
            "yes"
        } else {
            "mostly (small inversions)"
        }
    );
}
