//! **§8 ablations**: the paper's discussion knobs —
//!
//! 1. slices per frame (bounds coding-error propagation, costs storage),
//! 2. CAVLC vs CABAC (error resilience vs density),
//! 3. B-frame count (unreferenced frames cannot propagate errors).

use vapp_bench::{prepare_with, print_header, print_row, rate_sweep, ExpConfig};
use vapp_codec::EntropyMode;
use vapp_sim::Trials;
use videoapp::payload_layout;
use videoapp::pipeline::measure_loss_curve;

fn main() {
    let cfg = ExpConfig::from_env();
    let rates = rate_sweep(7, 3);
    println!("== §8 ablations ==\n");

    // --- 1. slices ---
    println!("(1) slices per frame: loss at selected rates + storage cost");
    let widths = [8usize, 12, 12, 12, 12];
    print_header(
        &["slices", "bits/px", "@1e-6 dB", "@1e-5 dB", "@1e-4 dB"],
        &widths,
    );
    for &slices in &[1u8, 2, 4] {
        let mut enc = cfg.encoder(24);
        enc.slices = slices;
        let (bpp, losses) = sweep(&cfg, enc, &rates);
        print_row(
            &[
                format!("{slices}"),
                format!("{bpp:.3}"),
                format!("{:.2}", losses[0]),
                format!("{:.2}", losses[1]),
                format!("{:.2}", losses[2]),
            ],
            &widths,
        );
    }
    println!("(more slices: curves shift right — less loss — at extra storage)\n");

    // --- 2. entropy coder ---
    println!("(2) entropy coder: CABAC vs CAVLC");
    print_header(
        &["coder", "bits/px", "@1e-6 dB", "@1e-5 dB", "@1e-4 dB"],
        &widths,
    );
    for entropy in [EntropyMode::Cabac, EntropyMode::Cavlc] {
        let mut enc = cfg.encoder(24);
        enc.entropy = entropy;
        let (bpp, losses) = sweep(&cfg, enc, &rates);
        print_row(
            &[
                format!("{entropy:?}"),
                format!("{bpp:.3}"),
                format!("{:.2}", losses[0]),
                format!("{:.2}", losses[1]),
                format!("{:.2}", losses[2]),
            ],
            &widths,
        );
    }
    println!("(paper: CAVLC is more error-tolerant but costs 10-15% storage)\n");

    // --- 3. B frames ---
    println!("(3) B frames between anchors: unreferenced (importance<=2) storage");
    let widths3 = [8usize, 12, 18];
    print_header(&["bframes", "bits/px", "low-imp bits %"], &widths3);
    for &bframes in &[0u8, 2, 3] {
        let mut enc = cfg.encoder(24);
        enc.bframes = bframes;
        let prepared = prepare_with(&cfg, enc);
        let mut bpp = 0.0;
        let mut low = 0.0;
        for p in &prepared {
            let total = *payload_layout(&p.result.analysis).last().unwrap();
            bpp += total as f64 / p.original.total_pixels() as f64;
            let low_bits: u64 = videoapp::classes::mb_bit_ranges(&p.result.analysis, &p.importance)
                .into_iter()
                .filter(|(imp, _)| *imp <= 2.0)
                .map(|(_, r)| r.end - r.start)
                .sum();
            low += 100.0 * low_bits as f64 / total as f64;
        }
        let n = prepared.len() as f64;
        print_row(
            &[
                format!("{bframes}"),
                format!("{:.3}", bpp / n),
                format!("{:.1}", low / n),
            ],
            &widths3,
        );
    }
    println!(
        "(paper §8: more unreferenced B frames polarise the video into important \
         and unimportant bits — ideal for approximation — but may cost storage)\n"
    );

    // --- 4. approximability-aware encoding (the paper's open question) ---
    println!("(4) approximability-aware mode decision (skip/intra bias):");
    let widths4 = [10usize, 12, 12, 12, 18];
    print_header(
        &["mode", "bits/px", "PSNR dB", "skip %", "low-imp bits %"],
        &widths4,
    );
    for &bias in &[false, true] {
        let mut enc = cfg.encoder(24);
        enc.approx_bias = bias;
        let prepared = prepare_with(&cfg, enc);
        let (mut bpp, mut psnr, mut low, mut skip) = (0.0, 0.0, 0.0, 0.0);
        for p in &prepared {
            let total = *payload_layout(&p.result.analysis).last().unwrap();
            bpp += total as f64 / p.original.total_pixels() as f64;
            psnr += vapp_metrics::video_psnr(&p.original, &p.result.reconstruction);
            let (mut skipped, mut mbs) = (0usize, 0usize);
            for f in &p.result.analysis.frames {
                skipped += f.mbs.iter().filter(|m| m.skip).count();
                mbs += f.mbs.len();
            }
            skip += 100.0 * skipped as f64 / mbs as f64;
            let low_bits: u64 = videoapp::classes::mb_bit_ranges(&p.result.analysis, &p.importance)
                .into_iter()
                .filter(|(imp, _)| *imp <= 16.0)
                .map(|(_, r)| r.end - r.start)
                .sum();
            low += 100.0 * low_bits as f64 / total as f64;
        }
        let n = prepared.len() as f64;
        print_row(
            &[
                if bias { "aware" } else { "standard" }.to_string(),
                format!("{:.3}", bpp / n),
                format!("{:.2}", psnr / n),
                format!("{:.1}", skip / n),
                format!("{:.1}", low / n),
            ],
            &widths4,
        );
    }
    println!(
        "(the paper's §8 open question, honestly reproduced: the aware encoder \
         skips far more and shrinks the stream, but skips also *remove* cheap \
         low-importance bits, so the share of tolerant bits can even drop — \
         'sometimes cancelling out the benefits …, leaving us without a clear \
         conclusion')"
    );
}

/// Encodes the suite with `enc` and measures whole-payload loss at the
/// first three rates of `rates`. Returns (bits/pixel, losses).
fn sweep(cfg: &ExpConfig, enc: vapp_codec::EncoderConfig, rates: &[f64]) -> (f64, [f64; 3]) {
    let prepared = prepare_with(cfg, enc);
    let mut bpp = 0.0;
    let mut losses = [0.0f64; 3];
    for (ci, p) in prepared.iter().enumerate() {
        let total = p.result.stream.payload_bits();
        bpp += total as f64 / p.original.total_pixels() as f64;
        let curve = measure_loss_curve(
            &p.result.stream,
            &p.original,
            &[0..total],
            rates,
            Trials::new(cfg.trials, 6000 + ci as u64),
        );
        for (i, probe) in [1e-6, 1e-5, 1e-4].iter().enumerate() {
            losses[i] = losses[i].min(curve.loss_at(*probe));
        }
    }
    (bpp / prepared.len() as f64, losses)
}
