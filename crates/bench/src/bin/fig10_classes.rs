//! **Figure 10**: (a) cumulative quality loss vs error rate per log2
//! importance class (class i = all macroblocks with importance ≤ 2^i);
//! (b) cumulative storage per class.
//!
//! These curves, together with Fig. 8, drive the Table 1 assignment.

use vapp_bench::{prepare, print_header, print_row, rate_sweep, ExpConfig};
use vapp_sim::Trials;
use videoapp::pipeline::measure_loss_curve;
use videoapp::{importance_classes, payload_layout};

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Figure 10: cumulative loss and storage per importance class ==\n");
    let prepared = prepare(&cfg, 24);
    let rates = rate_sweep(12, 2);

    // Collect the union of class exponents over the suite.
    let mut all_exps: Vec<u32> = Vec::new();
    for p in &prepared {
        for c in importance_classes(&p.result.analysis, &p.importance) {
            if !all_exps.contains(&c.exp) {
                all_exps.push(c.exp);
            }
        }
    }
    all_exps.sort_unstable();

    let mut loss: Vec<Vec<f64>> = vec![vec![0.0; rates.len()]; all_exps.len()];
    let mut cum_storage = vec![0u64; all_exps.len()];
    let mut total_storage = 0u64;

    // The storage accounting is a cheap sequential pass; it also collects
    // the (clip, class) Monte Carlo experiments, which then fan out —
    // each owns its cumulative range list and a per-clip trial seed.
    let mut units: Vec<(usize, usize, Vec<std::ops::Range<u64>>)> = Vec::new();
    for (ci, p) in prepared.iter().enumerate() {
        let classes = importance_classes(&p.result.analysis, &p.importance);
        total_storage += *payload_layout(&p.result.analysis).last().unwrap();
        for (ei, &exp) in all_exps.iter().enumerate() {
            // Cumulative ranges: all classes with exponent <= exp.
            let ranges: Vec<_> = classes
                .iter()
                .filter(|c| c.exp <= exp)
                .flat_map(|c| c.ranges.iter().cloned())
                .collect();
            cum_storage[ei] += classes
                .iter()
                .filter(|c| c.exp <= exp)
                .map(|c| c.bits)
                .sum::<u64>();
            if !ranges.is_empty() {
                units.push((ci, ei, ranges));
            }
        }
    }
    let curves = vapp_par::par_map(units, |_, (ci, ei, ranges)| {
        let p = &prepared[ci];
        let curve = measure_loss_curve(
            &p.result.stream,
            &p.original,
            &ranges,
            &rates,
            Trials::new(cfg.trials, 2000 + ci as u64),
        );
        (ei, curve)
    });
    for (ei, curve) in curves {
        for (ri, &r) in rates.iter().enumerate() {
            loss[ei][ri] = loss[ei][ri].min(curve.loss_at(r));
        }
    }
    for p in &prepared {
        vapp_obs::info!("bench.fig10.clip", "[{}] done", p.name);
    }

    println!("(a) cumulative worst quality change (dB); class i = importance <= 2^i:");
    let widths: Vec<usize> = std::iter::once(9)
        .chain(std::iter::repeat_n(8, all_exps.len()))
        .collect();
    let class_names: Vec<String> = all_exps.iter().map(|e| format!("<=2^{e}")).collect();
    let header: Vec<&str> = std::iter::once("rate")
        .chain(class_names.iter().map(|s| s.as_str()))
        .collect();
    print_header(&header, &widths);
    for (ri, &r) in rates.iter().enumerate() {
        let mut cells = vec![format!("{r:.0e}")];
        for class_loss in loss.iter() {
            cells.push(format!("{:.2}", class_loss[ri]));
        }
        print_row(&cells, &widths);
    }

    println!("\n(b) cumulative storage per class (% of payload):");
    let widths2 = [10usize, 14];
    print_header(&["class", "storage %"], &widths2);
    for (ei, &exp) in all_exps.iter().enumerate() {
        print_row(
            &[
                format!("<=2^{exp}"),
                format!(
                    "{:.1}",
                    100.0 * cum_storage[ei] as f64 / total_storage as f64
                ),
            ],
            &widths2,
        );
    }
    println!(
        "\n(paper Fig. 10: lower classes tolerate orders of magnitude higher error \
         rates; storage is dominated by mid/low importance classes)"
    );
}
