//! A minimal `std::time::Instant` timing harness replacing `criterion`,
//! exposing the same call shape (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/
//! `criterion_main!`) so the bench files changed imports only.
//!
//! Each `bench_function` runs one warmup call to size the batch, then
//! times `sample_size` batches and reports per-iteration statistics.
//! Every group writes `BENCH_<group>.json` with machine-readable
//! timings — the benchmark trajectory across PRs is diffed from these
//! files, so the JSON shape is a compatibility surface:
//!
//! ```json
//! {
//!   "group": "codec",
//!   "harness": "vapp-bench",
//!   "results": [
//!     {
//!       "name": "encode_Cabac",
//!       "samples": 10,
//!       "iters_per_sample": 3,
//!       "mean_ns": 1234.5,
//!       "median_ns": 1200.0,
//!       "min_ns": 1100.0,
//!       "max_ns": 1400.0,
//!       "p50_ns": 1201.0,
//!       "p90_ns": 1380.0,
//!       "p95_ns": 1391.0,
//!       "p99_ns": 1399.0,
//!       "stddev_ns": 55.0,
//!       "throughput_bytes": 65536,
//!       "bytes_per_sec": 5.2e10
//!     }
//!   ]
//! }
//! ```
//!
//! Env knobs:
//!
//! * `VAPP_BENCH_OUT` — output directory (default `target/bench-results`,
//!   resolved against the workspace root when run via cargo).
//! * `VAPP_BENCH_MS` — per-sample time budget in milliseconds
//!   (default 10; set 1 for a fast CI smoke pass).

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Top-level harness state: where results go.
pub struct Criterion {
    out_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        let out_dir = std::env::var_os("VAPP_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                // Under cargo, land next to the build artifacts; bare
                // invocation falls back to the current directory.
                let target = std::env::var_os("CARGO_TARGET_DIR")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("target"));
                target.join("bench-results")
            });
        Criterion { out_dir }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks; results are written when the
    /// group is [`finish`](BenchmarkGroup::finish)ed.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
            results: Vec::new(),
        }
    }
}

/// Work-per-iteration declaration, for derived throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// One benchmark's measured statistics (per iteration, nanoseconds).
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark id within the group.
    pub name: String,
    /// Number of timed batches.
    pub samples: usize,
    /// Iterations per timed batch.
    pub iters_per_sample: u64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Fastest batch's per-iteration time.
    pub min_ns: f64,
    /// Slowest batch's per-iteration time.
    pub max_ns: f64,
    /// Sample standard deviation across batches.
    pub stddev_ns: f64,
    /// Sketch-estimated per-iteration percentiles (each batch's
    /// per-iteration time weighted by its iteration count; ~1% relative
    /// error — see `vapp_obs::sketch`).
    pub p50_ns: f64,
    /// 90th percentile per-iteration time.
    pub p90_ns: f64,
    /// 95th percentile per-iteration time.
    pub p95_ns: f64,
    /// 99th percentile per-iteration time.
    pub p99_ns: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl BenchStats {
    fn from_samples(
        name: String,
        iters: u64,
        mut per_iter_ns: Vec<f64>,
        throughput: Option<Throughput>,
    ) -> Self {
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter_ns.len().max(1);
        let mean = per_iter_ns.iter().sum::<f64>() / n as f64;
        let var =
            per_iter_ns.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0).max(1.0);
        // Percentiles come from a quantile sketch fed one entry per
        // batch, weighted by that batch's iteration count — so an entry
        // like `p99_ns` reads as "99% of iterations were at least this
        // fast" rather than "the 99th-best batch".
        let mut sketch = vapp_obs::Sketch::new();
        for &s in &per_iter_ns {
            sketch.record_n(s.round().max(0.0) as u64, iters.max(1));
        }
        BenchStats {
            name,
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
            mean_ns: mean,
            median_ns: per_iter_ns.get(n / 2).copied().unwrap_or(mean),
            min_ns: per_iter_ns.first().copied().unwrap_or(mean),
            max_ns: per_iter_ns.last().copied().unwrap_or(mean),
            stddev_ns: var.sqrt(),
            p50_ns: sketch.quantile(0.50),
            p90_ns: sketch.quantile(0.90),
            p95_ns: sketch.quantile(0.95),
            p99_ns: sketch.quantile(0.99),
            throughput,
        }
    }

    /// Derived rate in units (bytes or elements) per second.
    pub fn rate_per_sec(&self) -> Option<(f64, &'static str)> {
        let per_iter = match self.throughput? {
            Throughput::Bytes(b) => (b as f64, "bytes_per_sec"),
            Throughput::Elements(e) => (e as f64, "elements_per_sec"),
        };
        if self.median_ns <= 0.0 {
            return None;
        }
        Some((per_iter.0 * 1e9 / self.median_ns, per_iter.1))
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchStats>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark. The closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`] exactly once with the code under test.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            iters: 0,
            per_iter_ns: Vec::new(),
        };
        f(&mut bencher);
        assert!(
            !bencher.per_iter_ns.is_empty(),
            "bench `{}/{}` never called Bencher::iter",
            self.name,
            id
        );
        let stats =
            BenchStats::from_samples(id, bencher.iters, bencher.per_iter_ns, self.throughput);
        report_line(&self.name, &stats);
        self.results.push(stats);
        self
    }

    /// Writes the group's `BENCH_<group>.json` and prints its location.
    pub fn finish(self) {
        let dir = self.criterion.out_dir.clone();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("vapp-bench: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("BENCH_{}.json", self.name));
        match std::fs::write(&path, render_json(&self.name, &self.results)) {
            Ok(()) => println!("vapp-bench: wrote {}", path.display()),
            Err(e) => eprintln!("vapp-bench: cannot write {}: {e}", path.display()),
        }
    }
}

/// Times the closure passed to [`iter`](Bencher::iter).
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Runs the benchmark body: one warmup call to size the batch, then
    /// `sample_size` timed batches.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let budget_ms: u64 = std::env::var("VAPP_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        // Warmup + batch sizing: aim for ~budget per batch.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1);
        let iters = ((budget_ms as u128 * 1_000_000) / once_ns).clamp(1, 1_000_000) as u64;
        self.iters = iters;
        self.per_iter_ns.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.per_iter_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report_line(group: &str, s: &BenchStats) {
    let rate = s
        .rate_per_sec()
        .map(|(r, unit)| match unit {
            "bytes_per_sec" => format!("  ({:.1} MiB/s)", r / (1024.0 * 1024.0)),
            _ => format!("  ({r:.0} elem/s)"),
        })
        .unwrap_or_default();
    println!(
        "{group}/{name:<28} median {median:>12}  mean {mean:>12}  ±{sd:>10}  [{n} x {iters}]{rate}",
        name = s.name,
        median = human_time(s.median_ns),
        mean = human_time(s.mean_ns),
        sd = human_time(s.stddev_ns),
        n = s.samples,
        iters = s.iters_per_sample,
    );
}

/// Minimal JSON string escaping (names are ASCII identifiers in
/// practice, but stay correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn render_json(group: &str, results: &[BenchStats]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"group\": \"{}\",\n", json_escape(group)));
    out.push_str("  \"harness\": \"vapp-bench\",\n");
    out.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&s.name)));
        out.push_str(&format!("      \"samples\": {},\n", s.samples));
        out.push_str(&format!(
            "      \"iters_per_sample\": {},\n",
            s.iters_per_sample
        ));
        out.push_str(&format!("      \"mean_ns\": {},\n", json_f64(s.mean_ns)));
        out.push_str(&format!(
            "      \"median_ns\": {},\n",
            json_f64(s.median_ns)
        ));
        out.push_str(&format!("      \"min_ns\": {},\n", json_f64(s.min_ns)));
        out.push_str(&format!("      \"max_ns\": {},\n", json_f64(s.max_ns)));
        out.push_str(&format!("      \"p50_ns\": {},\n", json_f64(s.p50_ns)));
        out.push_str(&format!("      \"p90_ns\": {},\n", json_f64(s.p90_ns)));
        out.push_str(&format!("      \"p95_ns\": {},\n", json_f64(s.p95_ns)));
        out.push_str(&format!("      \"p99_ns\": {},\n", json_f64(s.p99_ns)));
        out.push_str(&format!("      \"stddev_ns\": {}", json_f64(s.stddev_ns)));
        match s.throughput {
            Some(Throughput::Bytes(b)) => {
                out.push_str(&format!(",\n      \"throughput_bytes\": {b}"));
            }
            Some(Throughput::Elements(e)) => {
                out.push_str(&format!(",\n      \"throughput_elements\": {e}"));
            }
            None => {}
        }
        if let Some((rate, unit)) = s.rate_per_sec() {
            out.push_str(&format!(",\n      \"{unit}\": {}", json_f64(rate)));
        }
        out.push_str("\n    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Bundles bench functions into one group runner (criterion-compatible
/// call shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_sane() {
        let s = BenchStats::from_samples(
            "x".into(),
            3,
            vec![100.0, 300.0, 200.0, 250.0],
            Some(Throughput::Bytes(1000)),
        );
        assert_eq!(s.min_ns, 100.0);
        assert_eq!(s.max_ns, 300.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!((s.mean_ns - 212.5).abs() < 1e-9);
        // Percentiles are ordered, bracketed by min/max, and within the
        // sketch's ~1% relative error of the exact order statistics.
        assert!(s.min_ns <= s.p50_ns && s.p50_ns <= s.p90_ns);
        assert!(s.p90_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        assert!((s.p50_ns - 200.0).abs() / 200.0 < 0.02, "p50 {}", s.p50_ns);
        assert!((s.p99_ns - 300.0).abs() / 300.0 < 0.02, "p99 {}", s.p99_ns);
        let (rate, unit) = s.rate_per_sec().expect("throughput set");
        assert_eq!(unit, "bytes_per_sec");
        assert!((rate - 1000.0 * 1e9 / s.median_ns).abs() < 1e-6);
    }

    #[test]
    fn bench_run_produces_samples_and_json() {
        let mut c = Criterion {
            out_dir: std::env::temp_dir().join("vapp-bench-harness-test"),
        };
        let mut group = c.benchmark_group("harness_selftest");
        group.sample_size(3);
        group.bench_function("busywork", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let stats = group.results.last().expect("one result").clone();
        assert_eq!(stats.samples, 3);
        assert!(stats.mean_ns > 0.0);
        let json = render_json("harness_selftest", &group.results);
        assert!(json.contains("\"group\": \"harness_selftest\""));
        assert!(json.contains("\"name\": \"busywork\""));
        assert!(json.contains("\"median_ns\":"));
        assert!(json.contains("\"p50_ns\":"));
        assert!(json.contains("\"p95_ns\":"));
        assert!(json.contains("\"p99_ns\":"));
        group.finish();
        let path = std::env::temp_dir()
            .join("vapp-bench-harness-test")
            .join("BENCH_harness_selftest.json");
        assert!(path.exists(), "JSON file written");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
