//! AES mode throughput over video-sized buffers.

use std::hint::black_box;
use vapp_bench::harness::{Criterion, Throughput};
use vapp_bench::{criterion_group, criterion_main};
use vapp_crypto::CipherMode;

fn bench_crypto(c: &mut Criterion) {
    let key = [0x11u8; 16];
    let iv = [0x22u8; 16];
    let data: Vec<u8> = (0..65536).map(|i| (i % 251) as u8).collect();

    let mut group = c.benchmark_group("crypto");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for mode in CipherMode::ALL {
        group.bench_function(format!("encrypt_{mode:?}_64k"), |b| {
            b.iter(|| black_box(mode.encrypt(&key, &iv, black_box(&data))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
