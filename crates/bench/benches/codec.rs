//! Codec throughput: encode and decode, CABAC vs CAVLC.

use std::hint::black_box;
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_codec::{decode, Encoder, EncoderConfig, EntropyMode};
use vapp_workloads::{ClipSpec, SceneKind};

fn bench_codec(c: &mut Criterion) {
    let video = ClipSpec::new(112, 64, 12, SceneKind::MovingBlocks)
        .seed(1)
        .generate();
    let mut group = c.benchmark_group("codec");
    group.sample_size(10);

    for entropy in [EntropyMode::Cabac, EntropyMode::Cavlc] {
        let cfg = EncoderConfig {
            entropy,
            keyint: 12,
            bframes: 2,
            ..EncoderConfig::default()
        };
        group.bench_function(format!("encode_{entropy:?}"), |b| {
            let encoder = Encoder::new(cfg);
            b.iter(|| black_box(encoder.encode(black_box(&video))));
        });
        let stream = Encoder::new(cfg).encode(&video).stream;
        group.bench_function(format!("decode_{entropy:?}"), |b| {
            b.iter(|| black_box(decode(black_box(&stream))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
