//! Codec throughput: encode and decode, CABAC vs CAVLC, plus the
//! word-parallel inner-loop kernels (SAD, fused transform/quant, half-pel
//! motion compensation) and an encoder frames-per-second figure.

use std::hint::black_box;
use vapp_bench::harness::{Criterion, Throughput};
use vapp_bench::{criterion_group, criterion_main};
use vapp_codec::inter::{mc_block_halfpel_into, MAX_BLOCK_PIXELS};
use vapp_codec::quant::{dequant_inverse, forward_quant};
use vapp_codec::transform::Block4x4;
use vapp_codec::types::MotionVector;
use vapp_codec::{decode, Encoder, EncoderConfig, EntropyMode};
use vapp_media::{Plane, MB_SIZE};
use vapp_workloads::{ClipSpec, SceneKind};

fn bench_codec(c: &mut Criterion) {
    let video = ClipSpec::new(112, 64, 12, SceneKind::MovingBlocks)
        .seed(1)
        .generate();
    let mut group = c.benchmark_group("codec");
    group.sample_size(10);

    for entropy in [EntropyMode::Cabac, EntropyMode::Cavlc] {
        let cfg = EncoderConfig {
            entropy,
            keyint: 12,
            bframes: 2,
            ..EncoderConfig::default()
        };
        group.bench_function(format!("encode_{entropy:?}"), |b| {
            let encoder = Encoder::new(cfg);
            b.iter(|| black_box(encoder.encode(black_box(&video))));
        });
        let stream = Encoder::new(cfg).encode(&video).stream;
        group.bench_function(format!("decode_{entropy:?}"), |b| {
            b.iter(|| black_box(decode(black_box(&stream))));
        });
    }
    group.finish();
}

/// A deterministic textured plane (splitmix-style) for kernel benches.
fn textured_plane(w: usize, h: usize, seed: u64) -> Plane {
    let mut state = seed;
    let data: Vec<u8> = (0..w * h)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect();
    Plane::from_data(w, h, data)
}

fn bench_codec_kernels(c: &mut Criterion) {
    let cur = textured_plane(128, 128, 7);
    let refp = textured_plane(128, 128, 9);
    let mut group = c.benchmark_group("codec_kernels");
    group.sample_size(30);

    // 16x16 SAD, footprint fully interior: the word-parallel fast path.
    group.bench_function("sad_16x16_interior", |b| {
        b.iter(|| black_box(cur.sad(48, 48, MB_SIZE, MB_SIZE, &refp, 50, 47)));
    });
    // Reference block straddles the plane border: clamped scalar path.
    group.bench_function("sad_16x16_edge", |b| {
        b.iter(|| black_box(cur.sad(0, 0, MB_SIZE, MB_SIZE, &refp, -3, -2)));
    });
    // Bounded SAD with a tight bound: measures the early-exit win.
    let full = cur.sad(48, 48, MB_SIZE, MB_SIZE, &refp, 50, 47);
    group.bench_function("sad_16x16_pruned", |b| {
        b.iter(|| black_box(cur.sad_bounded(48, 48, MB_SIZE, MB_SIZE, &refp, 50, 47, full / 8)));
    });

    // Fused forward transform + quantise and dequantise + inverse.
    let residual: Block4x4 = core::array::from_fn(|i| ((i as i32 * 37) % 200) - 100);
    group.bench_function("transform_quant_roundtrip", |b| {
        b.iter(|| {
            let levels = forward_quant(black_box(&residual), 26, false);
            black_box(dequant_inverse(&levels, 26))
        });
    });

    // Half-pel diagonal motion compensation (the 4-tap average), interior.
    let mut pred = [0u8; MAX_BLOCK_PIXELS];
    group.bench_function("mc_halfpel_diag_16x16", |b| {
        b.iter(|| {
            mc_block_halfpel_into(
                black_box(&refp),
                48,
                48,
                MB_SIZE,
                MB_SIZE,
                MotionVector::new(5, 7),
                &mut pred,
            );
            black_box(pred[0])
        });
    });
    group.finish();
}

fn bench_encoder_fps(c: &mut Criterion) {
    let frames = 12usize;
    let video = ClipSpec::new(112, 64, frames, SceneKind::MovingBlocks)
        .seed(1)
        .generate();
    let mut group = c.benchmark_group("encoder_fps");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames as u64));

    for entropy in [EntropyMode::Cabac, EntropyMode::Cavlc] {
        let cfg = EncoderConfig {
            entropy,
            keyint: 12,
            bframes: 2,
            ..EncoderConfig::default()
        };
        group.bench_function(format!("encode_{entropy:?}"), |b| {
            let encoder = Encoder::new(cfg);
            b.iter(|| black_box(encoder.encode(black_box(&video))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_codec_kernels, bench_encoder_fps);
criterion_main!(benches);
