//! Archive service timing: the smoke fleet end to end, the raw read
//! decode path, and the cache-hit fast path. `BENCH_archive.json` is
//! gated against `baselines/BENCH_archive.json` by `bench_compare` in
//! CI; the workload is seed-pinned so only wall-clock may move.

use std::hint::black_box;
use std::sync::Arc;

use vapp_archive::{run_fleet, Archive, FleetConfig, TenantPolicy};
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_storage::channel::mlc_pcm;

fn payload(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<u8>()).collect()
}

fn bench_archive(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive");
    group.sample_size(10);

    // The whole tier-1 fleet: queues, scheduler, cache, compaction.
    group.bench_function("fleet_smoke", |b| {
        let cfg = FleetConfig::smoke();
        b.iter(|| {
            with_registry(Arc::new(Registry::new()), || {
                black_box(run_fleet(&cfg, 0xA2C4_17E0))
            })
        });
    });

    // The miss path alone: substrate damage + batch-BCH decode of a
    // three-tier object mix, no queue/cache machinery.
    let mut archive = Archive::new(2, 8192, mlc_pcm(1e-3), TenantPolicy::default_tiers(), 5);
    for id in 0..24u64 {
        archive
            .put(id, (id % 3) as u32, &payload(1536, id))
            .unwrap();
    }
    group.bench_function("read_decode_24_objects", |b| {
        b.iter(|| {
            for id in 0..24u64 {
                black_box(archive.read(id).unwrap());
            }
        });
    });

    // The hit path alone: LRU bookkeeping + payload clone.
    group.bench_function("cache_hit", |b| {
        let mut cache = vapp_archive::HotCache::new(1 << 20);
        for id in 0..16u64 {
            cache.insert(
                id,
                vapp_archive::CachedObject {
                    bytes: payload(1536, id),
                    degraded: false,
                },
            );
        }
        b.iter(|| {
            for id in 0..16u64 {
                black_box(cache.get(id).unwrap());
            }
        });
    });

    group.finish();
    vapp_obs::maybe_write_run_snapshot("archive");
}

criterion_group!(benches, bench_archive);
criterion_main!(benches);
