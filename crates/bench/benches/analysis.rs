//! VideoApp analysis cost: graph construction, importance (global and
//! streaming), bins/classes/pivots — the §4.3.1 overhead claim.

use std::hint::black_box;
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_codec::{Encoder, EncoderConfig};
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{
    equal_storage_bins, importance_classes, DependencyGraph, ImportanceMap, PivotTable,
};

fn bench_analysis(c: &mut Criterion) {
    let video = ClipSpec::new(112, 64, 24, SceneKind::MovingBlocks)
        .seed(2)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 12,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let rec = &result.analysis;

    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    group.bench_function("graph_build", |b| {
        b.iter(|| black_box(DependencyGraph::from_analysis(black_box(rec))));
    });
    let graph = DependencyGraph::from_analysis(rec);
    group.bench_function("importance_global", |b| {
        b.iter(|| black_box(ImportanceMap::compute(black_box(&graph))));
    });
    group.bench_function("importance_streaming", |b| {
        b.iter(|| black_box(ImportanceMap::compute_streaming(black_box(&graph))));
    });
    let imp = ImportanceMap::compute(&graph);
    group.bench_function("equal_storage_bins", |b| {
        b.iter(|| black_box(equal_storage_bins(rec, &imp, 16)));
    });
    group.bench_function("importance_classes", |b| {
        b.iter(|| black_box(importance_classes(rec, &imp)));
    });
    group.bench_function("pivot_table", |b| {
        b.iter(|| black_box(PivotTable::build(rec, &imp, &[4.0, 32.0, 256.0])));
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
