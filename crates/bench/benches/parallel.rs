//! Scaling of the deterministic parallel layer: the same
//! `measure_loss_curve` workload pinned to 1 / 2 / 4 / 8 workers via
//! `vapp_par::with_threads`. By the vapp-par invariant the outputs are
//! byte-identical at every point on this curve — only wall-clock moves —
//! so the per-worker medians in `BENCH_parallel.json` read directly as a
//! scaling curve.

use std::hint::black_box;
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_codec::{Encoder, EncoderConfig};
use vapp_sim::Trials;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::pipeline::measure_loss_curve;

fn bench_parallel(c: &mut Criterion) {
    let video = ClipSpec::new(112, 64, 8, SceneKind::MovingBlocks)
        .seed(7)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 8,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let ranges = [0..result.stream.payload_bits()];
    let rates = [1e-4, 1e-3];

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("loss_curve_w{workers}"), |b| {
            b.iter(|| {
                vapp_par::with_threads(workers, || {
                    black_box(measure_loss_curve(
                        &result.stream,
                        &video,
                        &ranges,
                        &rates,
                        Trials::new(8, 42),
                    ))
                })
            });
        });
    }
    group.finish();
    // Expose the run's counters — notably the par.worker.* utilization
    // series — for scaling_check --obs (and VAPP_OBS_TRACE if set).
    vapp_obs::maybe_write_run_snapshot("parallel");
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
