//! End-to-end pipeline: split/merge streams and full store/load rounds
//! with the analytic and exact BCH block simulators.

use std::hint::black_box;
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_codec::{Encoder, EncoderConfig};
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{
    mlc_pcm, split_streams, ApproxStore, DependencyGraph, EcScheme, ImportanceMap, PivotTable,
    StoragePolicy,
};

fn bench_pipeline(c: &mut Criterion) {
    let video = ClipSpec::new(112, 64, 12, SceneKind::MovingBlocks)
        .seed(3)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 12,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &imp, &[4.0, 64.0]);
    let stream = &result.stream;

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("split_streams", |b| {
        b.iter(|| black_box(split_streams(black_box(stream), &table)));
    });

    let policy = StoragePolicy {
        ladder_levels: vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)],
        thresholds: vec![4.0, 64.0],
        substrate: mlc_pcm(1e-3),
        exact_bch: false,
    };
    group.bench_function("store_load_analytic", |b| {
        let store = ApproxStore::new(policy.clone());
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| black_box(store.store_load(stream, &table, &mut rng)));
    });
    group.bench_function("store_load_exact_bch", |b| {
        let mut exact = policy.clone();
        exact.exact_bch = true;
        let store = ApproxStore::new(exact);
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| black_box(store.store_load(stream, &table, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
