//! Storage-substrate throughput: BCH encode/decode per 512-bit block and
//! MLC model queries.

use std::hint::black_box;
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_storage::bch::{Bch, DATA_BITS};
use vapp_storage::bits::BitBuf;
use vapp_storage::mlc::{MlcConfig, MlcSubstrate};
use vapp_storage::uber::block_failure_rate;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(20);

    let mut data = BitBuf::zeroed(DATA_BITS);
    for i in (0..DATA_BITS).step_by(3) {
        data.set(i, true);
    }

    for t in [6usize, 16] {
        let code = Bch::new(t);
        group.bench_function(format!("bch{t}_encode"), |b| {
            b.iter(|| black_box(code.encode(black_box(&data))));
        });
        let clean = code.encode(&data);
        group.bench_function(format!("bch{t}_decode_clean"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_decode_{t}errors"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                for e in 0..t {
                    cw.flip((e * 83 + 11) % cw.len());
                }
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_failure_rate"), |b| {
            b.iter(|| black_box(block_failure_rate(&code, black_box(1e-3))));
        });
    }

    group.bench_function("mlc_raw_ber", |b| {
        let substrate = MlcSubstrate::new(MlcConfig::default());
        b.iter(|| black_box(substrate.raw_ber(black_box(90.0))));
    });
    group.bench_function("mlc_calibration", |b| {
        b.iter(|| black_box(MlcSubstrate::tuned_for_ber(MlcConfig::default(), 1e-3)));
    });
    group.finish();
}

/// The word-parallel BCH kernels across the code strengths the figures
/// use: per-block encode, the clean-decode fast path, and a decode at
/// the full correction radius (syndromes + BM + root location).
fn bench_bch(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch");
    group.sample_size(20);

    let mut data = BitBuf::zeroed(DATA_BITS);
    for i in (0..DATA_BITS).step_by(3) {
        data.set(i, true);
    }

    for t in [6usize, 10, 16] {
        let code = Bch::new(t);
        group.bench_function(format!("bch{t}_encode"), |b| {
            b.iter(|| black_box(code.encode(black_box(&data))));
        });
        let clean = code.encode(&data);
        group.bench_function(format!("bch{t}_decode_clean"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_decode_{t}errors"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                for e in 0..t {
                    cw.flip((e * 83 + 11) % cw.len());
                }
                black_box(code.decode(&mut cw))
            });
        });
    }
    group.finish();
}

/// The bitsliced batch engine against its per-block reference: 64-block
/// encode, all-clean batch detection, mixed clean/dirty decode, and the
/// pipeline's sparse error-pattern shape.
fn bench_bch_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_batch");
    group.sample_size(20);

    let blocks: Vec<BitBuf> = (0..vapp_storage::batch::LANES)
        .map(|i| {
            let mut d = BitBuf::zeroed(DATA_BITS);
            for k in (i % 7..DATA_BITS).step_by(3 + i % 5) {
                d.set(k, true);
            }
            d
        })
        .collect();

    for t in [6usize, 10] {
        let code = Bch::cached(t);
        group.bench_function(format!("bch{t}_encode64_batch"), |b| {
            b.iter(|| black_box(code.encode_batch(black_box(&blocks))));
        });
        group.bench_function(format!("bch{t}_encode64_perblock"), |b| {
            b.iter(|| {
                let cws: Vec<BitBuf> = blocks.iter().map(|d| code.encode(d)).collect();
                black_box(cws)
            });
        });
        let clean: Vec<BitBuf> = blocks.iter().map(|d| code.encode(d)).collect();
        group.bench_function(format!("bch{t}_decode64_clean_batch"), |b| {
            b.iter(|| {
                let mut cws = clean.clone();
                black_box(code.decode_blocks(&mut cws))
            });
        });
        group.bench_function(format!("bch{t}_decode64_clean_perblock"), |b| {
            b.iter(|| {
                let mut cws = clean.clone();
                let out: Vec<_> = cws.iter_mut().map(|cw| code.decode(cw)).collect();
                black_box(out)
            });
        });
        // Mixed batch: every fourth lane carries t errors (a much higher
        // dirty fraction than the pipeline sees at raw BER 1e-3).
        let mut mixed = clean.clone();
        for (lane, cw) in mixed.iter_mut().enumerate().step_by(4) {
            for e in 0..t {
                cw.flip((lane * 131 + e * 83 + 11) % cw.len());
            }
        }
        group.bench_function(format!("bch{t}_decode64_mixed_batch"), |b| {
            b.iter(|| {
                let mut cws = mixed.clone();
                black_box(code.decode_blocks(&mut cws))
            });
        });
        group.bench_function(format!("bch{t}_decode64_mixed_perblock"), |b| {
            b.iter(|| {
                let mut cws = mixed.clone();
                let out: Vec<_> = cws.iter_mut().map(|cw| code.decode(cw)).collect();
                black_box(out)
            });
        });
        // The pipeline's shape: sparse error patterns, ~9 dirty lanes.
        group.bench_function(format!("bch{t}_decode9_sparse_errors"), |b| {
            b.iter(|| {
                let mut batch = vapp_storage::batch::BlockBatch::zeroed(code, 9);
                for lane in 0..9 {
                    batch.flip(lane, (lane * 61 + 17) % code.codeword_bits());
                }
                black_box(code.decode_batch(&mut batch))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage, bench_bch, bench_bch_batch);
criterion_main!(benches);
