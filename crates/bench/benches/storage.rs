//! Storage-substrate throughput: BCH encode/decode per 512-bit block and
//! MLC model queries.

use std::hint::black_box;
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_storage::bch::{Bch, DATA_BITS};
use vapp_storage::bits::BitBuf;
use vapp_storage::channel::{
    burst_erasure, data_in_video, mlc_pcm, BurstConfig, Substrate, VideoChannelConfig,
};
use vapp_storage::interleave::Interleaver;
use vapp_storage::mlc::{MlcConfig, MlcSubstrate};
use vapp_storage::rs::Rs;
use vapp_storage::uber::block_failure_rate;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(20);

    let mut data = BitBuf::zeroed(DATA_BITS);
    for i in (0..DATA_BITS).step_by(3) {
        data.set(i, true);
    }

    for t in [6usize, 16] {
        let code = Bch::new(t);
        group.bench_function(format!("bch{t}_encode"), |b| {
            b.iter(|| black_box(code.encode(black_box(&data))));
        });
        let clean = code.encode(&data);
        group.bench_function(format!("bch{t}_decode_clean"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_decode_{t}errors"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                for e in 0..t {
                    cw.flip((e * 83 + 11) % cw.len());
                }
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_failure_rate"), |b| {
            b.iter(|| black_box(block_failure_rate(&code, black_box(1e-3))));
        });
    }

    group.bench_function("mlc_raw_ber", |b| {
        let substrate = MlcSubstrate::new(MlcConfig::default());
        b.iter(|| black_box(substrate.raw_ber(black_box(90.0))));
    });
    group.bench_function("mlc_calibration", |b| {
        b.iter(|| black_box(MlcSubstrate::tuned_for_ber(MlcConfig::default(), 1e-3)));
    });
    group.finish();
}

/// The word-parallel BCH kernels across the code strengths the figures
/// use: per-block encode, the clean-decode fast path, and a decode at
/// the full correction radius (syndromes + BM + root location).
fn bench_bch(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch");
    group.sample_size(20);

    let mut data = BitBuf::zeroed(DATA_BITS);
    for i in (0..DATA_BITS).step_by(3) {
        data.set(i, true);
    }

    for t in [6usize, 10, 16] {
        let code = Bch::new(t);
        group.bench_function(format!("bch{t}_encode"), |b| {
            b.iter(|| black_box(code.encode(black_box(&data))));
        });
        let clean = code.encode(&data);
        group.bench_function(format!("bch{t}_decode_clean"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_decode_{t}errors"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                for e in 0..t {
                    cw.flip((e * 83 + 11) % cw.len());
                }
                black_box(code.decode(&mut cw))
            });
        });
    }
    group.finish();
}

/// The bitsliced batch engine against its per-block reference: 64-block
/// encode, all-clean batch detection, mixed clean/dirty decode, and the
/// pipeline's sparse error-pattern shape.
fn bench_bch_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_batch");
    group.sample_size(20);

    let blocks: Vec<BitBuf> = (0..vapp_storage::batch::LANES)
        .map(|i| {
            let mut d = BitBuf::zeroed(DATA_BITS);
            for k in (i % 7..DATA_BITS).step_by(3 + i % 5) {
                d.set(k, true);
            }
            d
        })
        .collect();

    for t in [6usize, 10] {
        let code = Bch::cached(t);
        group.bench_function(format!("bch{t}_encode64_batch"), |b| {
            b.iter(|| black_box(code.encode_batch(black_box(&blocks))));
        });
        group.bench_function(format!("bch{t}_encode64_perblock"), |b| {
            b.iter(|| {
                let cws: Vec<BitBuf> = blocks.iter().map(|d| code.encode(d)).collect();
                black_box(cws)
            });
        });
        let clean: Vec<BitBuf> = blocks.iter().map(|d| code.encode(d)).collect();
        group.bench_function(format!("bch{t}_decode64_clean_batch"), |b| {
            b.iter(|| {
                let mut cws = clean.clone();
                black_box(code.decode_blocks(&mut cws))
            });
        });
        group.bench_function(format!("bch{t}_decode64_clean_perblock"), |b| {
            b.iter(|| {
                let mut cws = clean.clone();
                let out: Vec<_> = cws.iter_mut().map(|cw| code.decode(cw)).collect();
                black_box(out)
            });
        });
        // Mixed batch: every fourth lane carries t errors (a much higher
        // dirty fraction than the pipeline sees at raw BER 1e-3).
        let mut mixed = clean.clone();
        for (lane, cw) in mixed.iter_mut().enumerate().step_by(4) {
            for e in 0..t {
                cw.flip((lane * 131 + e * 83 + 11) % cw.len());
            }
        }
        group.bench_function(format!("bch{t}_decode64_mixed_batch"), |b| {
            b.iter(|| {
                let mut cws = mixed.clone();
                black_box(code.decode_blocks(&mut cws))
            });
        });
        group.bench_function(format!("bch{t}_decode64_mixed_perblock"), |b| {
            b.iter(|| {
                let mut cws = mixed.clone();
                let out: Vec<_> = cws.iter_mut().map(|cw| code.decode(cw)).collect();
                black_box(out)
            });
        });
        // The pipeline's shape: sparse error patterns, ~9 dirty lanes.
        group.bench_function(format!("bch{t}_decode9_sparse_errors"), |b| {
            b.iter(|| {
                let mut batch = vapp_storage::batch::BlockBatch::zeroed(code, 9);
                for lane in 0..9 {
                    batch.flip(lane, (lane * 61 + 17) % code.codeword_bits());
                }
                black_box(code.decode_batch(&mut batch))
            });
        });
    }
    group.finish();
}

/// The pluggable error channels behind `StoragePolicy`: the RS
/// erasure-channel kernels (encode, errors-and-erasures decode,
/// interleaver construction) and whole-stream corruption through each
/// `Substrate`, measured on the same 64 KiB payload. The video channel
/// uses a deliberately tiny frame so the encoder round-trip stays a
/// micro-benchmark.
fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    // RS kernels at the ladder's precise strength.
    let code = Rs::cached(16);
    let data: Vec<u16> = (0..code.data_syms() as u16)
        .map(|s| (s * 37) & 0x3FF)
        .collect();
    group.bench_function("rs16_encode", |b| {
        b.iter(|| black_box(code.encode(black_box(&data))));
    });
    let clean = code.encode(&data);
    let eras: Vec<usize> = (0..16).map(|i| i * 7 + 3).collect();
    group.bench_function("rs16_decode_16eras_8errs", |b| {
        b.iter(|| {
            let mut cw = clean.clone();
            for &pos in &eras {
                cw[pos] ^= 0x155;
            }
            for e in 0..8 {
                cw[e * 3 + 110] ^= 0x2AA;
            }
            black_box(code.decode(&mut cw, &eras))
        });
    });
    group.bench_function("interleaver_build_64x134", |b| {
        b.iter(|| black_box(Interleaver::new(black_box(64), black_box(64 * 134))));
    });

    // Whole-stream corruption, 64 KiB at the BCH-6 ladder rung.
    const STREAM_BITS: u64 = 512 * 1024;
    let payload: Vec<u8> = (0..STREAM_BITS / 8).map(|i| (i * 31 % 251) as u8).collect();
    let channels: Vec<(&str, std::sync::Arc<dyn Substrate>)> = vec![
        ("mlc", mlc_pcm(1e-3)),
        (
            "burst_rs",
            burst_erasure(BurstConfig {
                page_loss: 5e-3,
                ..BurstConfig::default()
            }),
        ),
        (
            "burst_ilbch",
            burst_erasure(BurstConfig {
                page_loss: 5e-3,
                interleaved_bch: true,
                ..BurstConfig::default()
            }),
        ),
    ];
    for (name, sub) in &channels {
        group.bench_function(format!("corrupt_64k_{name}_t6"), |b| {
            b.iter(|| {
                let mut bytes = payload.clone();
                black_box(sub.corrupt_stream(&mut bytes, STREAM_BITS, 6, true, 7))
            });
        });
    }

    // Video channel: one tiny all-intra frame carries the payload.
    let video = data_in_video(VideoChannelConfig {
        frame_width: 64,
        frame_height: 32,
        crf: 44,
        ..VideoChannelConfig::default()
    });
    let small: Vec<u8> = payload[..256].to_vec();
    group.bench_function("corrupt_2k_video_raw", |b| {
        b.iter(|| {
            let mut bytes = small.clone();
            black_box(video.corrupt_stream(&mut bytes, 2048, 0, true, 7))
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_storage,
    bench_bch,
    bench_bch_batch,
    bench_substrate
);
criterion_main!(benches);
