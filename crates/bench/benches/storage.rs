//! Storage-substrate throughput: BCH encode/decode per 512-bit block and
//! MLC model queries.

use std::hint::black_box;
use vapp_bench::harness::Criterion;
use vapp_bench::{criterion_group, criterion_main};
use vapp_storage::bch::{Bch, DATA_BITS};
use vapp_storage::bits::BitBuf;
use vapp_storage::mlc::{MlcConfig, MlcSubstrate};
use vapp_storage::uber::block_failure_rate;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(20);

    let mut data = BitBuf::zeroed(DATA_BITS);
    for i in (0..DATA_BITS).step_by(3) {
        data.set(i, true);
    }

    for t in [6usize, 16] {
        let code = Bch::new(t);
        group.bench_function(format!("bch{t}_encode"), |b| {
            b.iter(|| black_box(code.encode(black_box(&data))));
        });
        let clean = code.encode(&data);
        group.bench_function(format!("bch{t}_decode_clean"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_decode_{t}errors"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                for e in 0..t {
                    cw.flip((e * 83 + 11) % cw.len());
                }
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_failure_rate"), |b| {
            b.iter(|| black_box(block_failure_rate(&code, black_box(1e-3))));
        });
    }

    group.bench_function("mlc_raw_ber", |b| {
        let substrate = MlcSubstrate::new(MlcConfig::default());
        b.iter(|| black_box(substrate.raw_ber(black_box(90.0))));
    });
    group.bench_function("mlc_calibration", |b| {
        b.iter(|| black_box(MlcSubstrate::tuned_for_ber(MlcConfig::default(), 1e-3)));
    });
    group.finish();
}

/// The word-parallel BCH kernels across the code strengths the figures
/// use: per-block encode, the clean-decode fast path, and a decode at
/// the full correction radius (syndromes + BM + root location).
fn bench_bch(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch");
    group.sample_size(20);

    let mut data = BitBuf::zeroed(DATA_BITS);
    for i in (0..DATA_BITS).step_by(3) {
        data.set(i, true);
    }

    for t in [6usize, 10, 16] {
        let code = Bch::new(t);
        group.bench_function(format!("bch{t}_encode"), |b| {
            b.iter(|| black_box(code.encode(black_box(&data))));
        });
        let clean = code.encode(&data);
        group.bench_function(format!("bch{t}_decode_clean"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                black_box(code.decode(&mut cw))
            });
        });
        group.bench_function(format!("bch{t}_decode_{t}errors"), |b| {
            b.iter(|| {
                let mut cw = clean.clone();
                for e in 0..t {
                    cw.flip((e * 83 + 11) % cw.len());
                }
                black_box(code.decode(&mut cw))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage, bench_bch);
criterion_main!(benches);
