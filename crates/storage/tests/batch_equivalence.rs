//! Property tests pinning the bitsliced batch engine bit-identical to
//! the table-driven per-block `Bch` — the per-block path stays the
//! reference implementation the batch kernels must reproduce exactly.

use vapp_check::{RngExt, StdRng};
use vapp_storage::batch::{BlockBatch, LANES};
use vapp_storage::bch::{Bch, DecodeOutcome, DATA_BITS};
use vapp_storage::bits::BitBuf;

fn random_data(rng: &mut StdRng) -> BitBuf {
    let mut d = BitBuf::zeroed(DATA_BITS);
    for w in 0..DATA_BITS / 64 {
        let bits: u64 = rng.random();
        for b in 0..64 {
            d.set(w * 64 + b, (bits >> b) & 1 == 1);
        }
    }
    d
}

#[test]
fn batch_decode_matches_per_block_reference() {
    for t in [6usize, 10, 16] {
        let code = Bch::cached(t);
        let name = format!("batch_decode_matches_per_block_t{t}");
        vapp_check::check(&name, 12, |rng| {
            // Mixed clean/dirty batches, deliberately spanning partial
            // tails (<64 blocks) and multi-batch inputs (>64 blocks).
            let blocks = rng.random_range(1..2 * LANES + 10);
            let mut cws = Vec::with_capacity(blocks);
            let mut reference = Vec::with_capacity(blocks);
            for _ in 0..blocks {
                let mut cw = code.encode(&random_data(rng));
                // 0..=t+2 injected errors: clean, correctable and
                // beyond-radius lanes all mixed in one batch.
                let errors = rng.random_range(0..t + 3);
                for pos in vapp_check::gen::distinct(rng, 0..code.codeword_bits(), errors) {
                    cw.flip(pos);
                }
                reference.push(cw.clone());
                cws.push(cw);
            }
            let ref_outcomes: Vec<DecodeOutcome> =
                reference.iter_mut().map(|cw| code.decode(cw)).collect();
            let batch_outcomes = code.decode_blocks(&mut cws);
            assert_eq!(batch_outcomes, ref_outcomes, "t={t} outcomes diverge");
            for (i, (got, want)) in cws.iter().zip(&reference).enumerate() {
                assert_eq!(got, want, "t={t} block {i} codeword diverges");
            }
        });
    }
}

#[test]
fn batch_encode_matches_per_block_reference() {
    for t in [6usize, 10, 16] {
        let code = Bch::cached(t);
        let name = format!("batch_encode_matches_per_block_t{t}");
        vapp_check::check(&name, 12, |rng| {
            let blocks = rng.random_range(1..2 * LANES + 10);
            let data: Vec<BitBuf> = (0..blocks).map(|_| random_data(rng)).collect();
            let batch = code.encode_batch(&data);
            for (i, d) in data.iter().enumerate() {
                assert_eq!(batch[i], code.encode(d), "t={t} block {i}");
            }
        });
    }
}

#[test]
fn sparse_error_batches_match_shifted_codeword_decode() {
    // The pipeline feeds the batch decoder bare error patterns instead
    // of codeword+error; syndromes are linear and vanish on codewords,
    // so outcomes must be identical. This is the invariant that keeps
    // the fast store path byte-identical to the reference.
    for t in [6usize, 10, 16] {
        let code = Bch::cached(t);
        let name = format!("sparse_error_batch_t{t}");
        vapp_check::check(&name, 12, |rng| {
            let blocks = rng.random_range(1..=LANES);
            let mut batch = BlockBatch::zeroed(code, blocks);
            let mut patterns = Vec::with_capacity(blocks);
            for lane in 0..blocks {
                let errors = rng.random_range(0..t + 3);
                let flips: Vec<usize> =
                    vapp_check::gen::distinct(rng, 0..code.codeword_bits(), errors)
                        .into_iter()
                        .collect();
                for &f in &flips {
                    batch.flip(lane, f);
                }
                patterns.push(flips);
            }
            let sparse = code.decode_batch(&mut batch);
            for (lane, flips) in patterns.iter().enumerate() {
                let mut cw = code.encode(&random_data(rng));
                for &f in flips {
                    cw.flip(f);
                }
                let want = code.decode(&mut cw);
                assert_eq!(sparse[lane], want, "t={t} lane {lane}");
            }
        });
    }
}
