//! Property tests for the substrate building blocks: Reed–Solomon
//! round-trips at the mixed erasure/error budget boundary, interleaver
//! bijectivity on arbitrary partial tails, and batch↔per-block decode
//! equivalence on burst-shaped error patterns.

use vapp_check::{RngExt, StdRng};
use vapp_storage::bch::{Bch, DecodeOutcome};
use vapp_storage::bits::BitBuf;
use vapp_storage::channel::{BurstConfig, BurstErasure, Substrate};
use vapp_storage::interleave::Interleaver;
use vapp_storage::rs::Rs;

fn random_syms(rng: &mut StdRng, n: usize) -> Vec<u16> {
    (0..n).map(|_| rng.random::<u16>() & 0x3FF).collect()
}

#[test]
fn rs_corrects_mixed_erasures_and_errors_at_the_budget() {
    // The decoding budget is 2·errors + erasures ≤ 2t. Drive it exactly
    // to the boundary: t erasures leave t budget for t/2 errors.
    for t in [4usize, 8, 16] {
        let code = Rs::cached(t);
        let name = format!("rs_mixed_budget_t{t}");
        vapp_check::check(&name, 24, |rng| {
            let data = random_syms(rng, code.data_syms());
            let clean = code.encode(&data);
            let mut cw = clean.clone();

            let n_eras = t;
            let n_errs = t / 2;
            let positions: Vec<usize> =
                vapp_check::gen::distinct(rng, 0..code.codeword_syms(), n_eras + n_errs)
                    .into_iter()
                    .collect();
            let (eras, errs) = positions.split_at(n_eras);
            for &pos in eras {
                cw[pos] = rng.random::<u16>() & 0x3FF; // may equal the original
            }
            for &pos in errs {
                cw[pos] ^= 1 + (rng.random::<u16>() & 0x3FE); // guaranteed damage
            }
            let outcome = code.decode(&mut cw, eras);
            assert!(
                matches!(outcome, DecodeOutcome::Clean | DecodeOutcome::Corrected(_)),
                "t={t}: {n_eras} erasures + {n_errs} errors must decode, got {outcome:?}"
            );
            assert_eq!(cw, clean, "t={t}: decoded codeword diverges");
        });
    }
}

#[test]
fn rs_erasure_only_budget_is_double_the_error_budget() {
    for t in [3usize, 6] {
        let code = Rs::cached(t);
        let name = format!("rs_2t_erasures_t{t}");
        vapp_check::check(&name, 24, |rng| {
            let data = random_syms(rng, code.data_syms());
            let clean = code.encode(&data);
            let mut cw = clean.clone();
            let eras: Vec<usize> = vapp_check::gen::distinct(rng, 0..code.codeword_syms(), 2 * t)
                .into_iter()
                .collect();
            for &pos in &eras {
                cw[pos] = rng.random::<u16>() & 0x3FF;
            }
            let outcome = code.decode(&mut cw, &eras);
            assert!(
                matches!(outcome, DecodeOutcome::Clean | DecodeOutcome::Corrected(_)),
                "t={t}: 2t erasures must decode, got {outcome:?}"
            );
            assert_eq!(cw, clean);
        });
    }
}

#[test]
fn interleaver_is_a_bijection_on_random_partial_tails() {
    vapp_check::check("interleaver_bijection", 64, |rng| {
        let total = rng.random_range(1..5000usize);
        let depth = rng.random_range(1..200usize);
        let il = Interleaver::new(depth, total);
        let mut seen = vec![false; total];
        for l in 0..total {
            let p = il.forward(l);
            assert!(p < total, "physical out of range");
            assert!(!seen[p], "depth {depth} total {total}: physical {p} reused");
            seen[p] = true;
            assert_eq!(il.inverse(p), l, "inverse mismatch at logical {l}");
        }
    });
}

#[test]
fn interleaver_bounds_burst_damage_per_row() {
    // The guarantee the whole design rests on: a physical burst of B
    // units touches each row at most ceil(B/depth) + 1 times.
    vapp_check::check("interleaver_burst_bound", 48, |rng| {
        let depth = rng.random_range(2..64usize);
        let total = rng.random_range(depth..4000usize);
        let il = Interleaver::new(depth, total);
        let burst = rng.random_range(1..total.min(300));
        let start = rng.random_range(0..total - burst + 1);
        let mut per_row = vec![0usize; il.depth()];
        for p in start..start + burst {
            per_row[il.inverse(p) / il.cols()] += 1;
        }
        let bound = burst.div_ceil(il.depth()) + 1;
        for (r, &hits) in per_row.iter().enumerate() {
            assert!(
                hits <= bound,
                "depth {depth} total {total} burst {burst}: row {r} hit {hits} > {bound}"
            );
        }
    });
}

/// Burst-shaped error patterns (contiguous page wipes after bit
/// interleaving plus i.i.d. background) must decode identically on the
/// batch engine and the per-block reference — this is the pattern
/// population the `BurstErasure` interleaved-BCH realization feeds to
/// `decode_blocks`.
#[test]
fn batch_matches_per_block_on_burst_patterns() {
    for t in [6usize, 10] {
        let code = Bch::cached(t);
        let nb = code.codeword_bits();
        let name = format!("batch_burst_equivalence_t{t}");
        vapp_check::check(&name, 16, |rng| {
            let blocks = rng.random_range(1..80usize);
            let depth = rng.random_range(1..=blocks);
            let il = Interleaver::new(depth, depth * nb);
            let mut patterns: Vec<BitBuf> = (0..blocks).map(|_| BitBuf::zeroed(nb)).collect();
            // A few physical bursts, each wiping a contiguous run whose
            // bits garble with probability 1/2 (what a lost page does).
            for _ in 0..rng.random_range(0..4usize) {
                let span = rng.random_range(1..3 * depth.max(2));
                let group = rng.random_range(0..blocks.div_ceil(depth));
                let start = rng.random_range(0..depth * nb - span);
                for pos in start..start + span {
                    if rng.random_bool(0.5) {
                        let l = il.inverse(pos);
                        let block = group * depth + l / nb;
                        if block < blocks {
                            patterns[block].flip(l % nb);
                        }
                    }
                }
            }
            // Background i.i.d. floor.
            for _ in 0..rng.random_range(0..20usize) {
                let block = rng.random_range(0..blocks);
                let bit = rng.random_range(0..nb);
                patterns[block].flip(bit);
            }
            let mut reference = patterns.clone();
            let ref_outcomes: Vec<DecodeOutcome> =
                reference.iter_mut().map(|p| code.decode(p)).collect();
            let batch_outcomes = code.decode_blocks(&mut patterns);
            assert_eq!(batch_outcomes, ref_outcomes, "t={t} outcomes diverge");
            for (i, (got, want)) in patterns.iter().zip(&reference).enumerate() {
                assert_eq!(got, want, "t={t} pattern {i} diverges after decode");
            }
        });
    }
}

/// The public corruption surface of `BurstErasure` must be a pure
/// function of the seed: same seed → same bytes, across construction
/// instances (nothing cached mutates results).
#[test]
fn burst_substrate_is_seed_pure_across_instances() {
    vapp_check::check("burst_seed_pure", 12, |rng| {
        let cfg = BurstConfig {
            page_loss: 0.01,
            burst_pages: rng.random_range(1..6u64),
            depth: rng.random_range(1..40usize),
            interleaved_bch: rng.random_bool(0.5),
            ..BurstConfig::default()
        };
        let bits = rng.random_range(1..60_000u64);
        let seed = rng.random::<u64>();
        let t = [0usize, 6, 10][rng.random_range(0..3usize)];
        let mut a: Vec<u8> = (0..bits.div_ceil(8)).map(|_| rng.random::<u8>()).collect();
        let mut b = a.clone();
        let ta = BurstErasure::new(cfg.clone()).corrupt_stream(&mut a, bits, t, true, seed);
        let tb = BurstErasure::new(cfg).corrupt_stream(&mut b, bits, t, true, seed);
        assert_eq!(a, b, "same seed, different bytes");
        assert_eq!(ta, tb, "same seed, different tally");
    });
}
