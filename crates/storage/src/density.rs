//! Storage-density accounting (paper §6.1: "the average number of pixels
//! that can be stored in a single cell", plotted in Fig. 11 as cells per
//! encoded pixel).

/// Cells needed to store `bits` data bits on a substrate with
/// `bits_per_cell`, after inflating by ECC `overhead` (parity/data ratio).
///
/// # Panics
///
/// Panics if `bits_per_cell` is zero or `overhead` is negative.
pub fn cells_for(bits: u64, overhead: f64, bits_per_cell: u32) -> f64 {
    assert!(bits_per_cell > 0, "bits_per_cell must be positive");
    assert!(overhead >= 0.0, "overhead cannot be negative");
    bits as f64 * (1.0 + overhead) / bits_per_cell as f64
}

/// Cells per pixel — Fig. 11's x-axis (lower = denser).
pub fn cells_per_pixel(total_cells: f64, pixels: u64) -> f64 {
    assert!(pixels > 0, "pixel count must be positive");
    total_cells / pixels as f64
}

/// Density of design A relative to design B (e.g. "2.57x higher density
/// compared to SLC" means `relative_density(mlc_cells, slc_cells) = 2.57`).
pub fn relative_density(cells_a: f64, cells_b: f64) -> f64 {
    assert!(
        cells_a > 0.0 && cells_b > 0.0,
        "cell counts must be positive"
    );
    cells_b / cells_a
}

/// Fraction of error-correction overhead eliminated by a variable scheme
/// whose average overhead is `variable` versus a uniform `uniform`
/// overhead (paper: "47% of the error correction overhead removed").
pub fn overhead_reduction(uniform: f64, variable: f64) -> f64 {
    assert!(uniform > 0.0, "uniform overhead must be positive");
    (uniform - variable) / uniform
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bch16_mlc_vs_slc_matches_paper_arithmetic() {
        // The paper's own numbers: BCH-16 costs 31.25%; 3 bits/cell MLC
        // with uniform correction is 3/1.3125 ≈ 2.29x denser than SLC.
        let bits = 1_000_000u64;
        let slc = cells_for(bits, 0.0, 1);
        let mlc_uniform = cells_for(bits, 0.3125, 3);
        let d = relative_density(mlc_uniform, slc);
        assert!((d - 2.2857).abs() < 1e-3, "density {d}");
        // And a variable scheme that halves the overhead reaches ~2.57x.
        let mlc_variable = cells_for(bits, 0.3125 / 2.0, 3);
        let dv = relative_density(mlc_variable, slc);
        assert!((dv - 2.594).abs() < 0.02, "density {dv}");
    }

    #[test]
    fn overhead_reduction_examples() {
        assert!((overhead_reduction(0.3125, 0.3125 / 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(overhead_reduction(0.2, 0.2), 0.0);
    }

    #[test]
    fn cells_per_pixel_division() {
        assert_eq!(cells_per_pixel(500.0, 1000), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bits_per_cell_rejected() {
        cells_for(10, 0.0, 0);
    }
}
