//! Bit-addressed helpers over byte buffers plus the word-backed
//! [`BitBuf`] (LSB-first within a byte / word).
//!
//! The storage stack moves data around as packed bit vectors: BCH
//! codewords are not byte multiples (512 data + 10·X parity bits), and MLC
//! cells hold three bits each. `BitBuf` is backed by `Vec<u64>` so the hot
//! paths (BCH encode/decode, hamming distances, cell packing) run on
//! machine words: 64 bits per shift/xor/popcount instead of one bit per
//! loop iteration.

/// Reads bit `i` (LSB-first within each byte).
#[inline]
pub fn get_bit(bytes: &[u8], i: usize) -> bool {
    (bytes[i / 8] >> (i % 8)) & 1 == 1
}

/// Sets bit `i` to `v` (LSB-first within each byte).
#[inline]
pub fn set_bit(bytes: &mut [u8], i: usize, v: bool) {
    if v {
        bytes[i / 8] |= 1 << (i % 8);
    } else {
        bytes[i / 8] &= !(1 << (i % 8));
    }
}

/// Flips bit `i`.
#[inline]
pub fn flip_bit(bytes: &mut [u8], i: usize) {
    bytes[i / 8] ^= 1 << (i % 8);
}

/// Number of bytes needed for `bits` bits.
#[inline]
pub fn bytes_for(bits: usize) -> usize {
    bits.div_ceil(8)
}

/// Number of 64-bit words needed for `bits` bits.
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// A growable, bit-addressed buffer backed by 64-bit words.
///
/// Bit `i` lives in word `i / 64` at position `i % 64` (LSB-first), which
/// byte-for-byte matches the old `Vec<u8>` LSB-first layout on any
/// little-endian serialization. Invariant: bits at or past `len` in the
/// last word are zero, so equality, hashing, popcounts and hamming
/// distances need no tail masking.
///
/// # Example
///
/// ```
/// use vapp_storage::bits::BitBuf;
///
/// let mut b = BitBuf::new();
/// b.push(true);
/// b.push(false);
/// b.push(true);
/// assert_eq!(b.len(), 3);
/// assert!(b.get(0));
/// assert!(!b.get(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BitBuf {
    words: Vec<u64>,
    len: usize,
}

impl BitBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a zeroed buffer of `bits` bits.
    pub fn zeroed(bits: usize) -> Self {
        BitBuf {
            words: vec![0u64; words_for(bits)],
            len: bits,
        }
    }

    /// Builds a buffer from the low `bits` bits of `bytes` (LSB-first
    /// within each byte). Bits past `bits` are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `bits`.
    pub fn from_bytes(bytes: &[u8], bits: usize) -> Self {
        assert!(bytes.len() * 8 >= bits, "byte buffer too short");
        let used = &bytes[..bytes_for(bits)];
        let mut words = vec![0u64; words_for(bits)];
        for (w, chunk) in words.iter_mut().zip(used.chunks(8)) {
            let mut le = [0u8; 8];
            le[..chunk.len()].copy_from_slice(chunk);
            *w = u64::from_le_bytes(le);
        }
        let mut out = BitBuf { words, len: bits };
        out.mask_tail();
        out
    }

    /// Builds a buffer directly from words (bit `i` of the buffer = bit
    /// `i % 64` of `words[i / 64]`). Bits past `bits` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words` is too short for `bits`.
    pub fn from_words(words: Vec<u64>, bits: usize) -> Self {
        assert!(words.len() >= words_for(bits), "word buffer too short");
        let mut words = words;
        words.truncate(words_for(bits));
        let mut out = BitBuf { words, len: bits };
        out.mask_tail();
        out
    }

    /// Zeroes any bits at or past `len` in the last word.
    #[inline]
    fn mask_tail(&mut self) {
        let r = self.len % 64;
        if r != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << r) - 1;
            }
        }
    }

    /// The backing words (bits past `len` in the last word are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index out of range");
        if v {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Flips bit `i` (a single word-level xor).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Appends one bit.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if v {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads `n` bits starting at `i` as an integer (bit `i` in the low
    /// position), `1 <= n <= 64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `n` is not in `1..=64`.
    #[inline]
    pub fn get_bits(&self, i: usize, n: usize) -> u64 {
        assert!((1..=64).contains(&n), "n must be 1..=64");
        assert!(i + n <= self.len, "bit range out of bounds");
        let w = i / 64;
        let s = i % 64;
        let mut v = self.words[w] >> s;
        if s != 0 && s + n > 64 {
            v |= self.words[w + 1] << (64 - s);
        }
        if n < 64 {
            v &= (1u64 << n) - 1;
        }
        v
    }

    /// Writes the low `n` bits of `v` starting at bit `i`, `1 <= n <= 64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `n` is not in `1..=64`.
    #[inline]
    pub fn set_bits(&mut self, i: usize, n: usize, v: u64) {
        assert!((1..=64).contains(&n), "n must be 1..=64");
        assert!(i + n <= self.len, "bit range out of bounds");
        let mask = if n < 64 { (1u64 << n) - 1 } else { !0u64 };
        let v = v & mask;
        let w = i / 64;
        let s = i % 64;
        self.words[w] = (self.words[w] & !(mask << s)) | (v << s);
        if s != 0 && s + n > 64 {
            let spill = s + n - 64; // bits landing in the next word
            let hi_mask = (1u64 << spill) - 1;
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | (v >> (64 - s));
        }
    }

    /// Appends the low `n` bits of `v`, `1 <= n <= 64`.
    fn push_bits(&mut self, v: u64, n: usize) {
        debug_assert!((1..=64).contains(&n));
        let v = if n < 64 { v & ((1u64 << n) - 1) } else { v };
        let o = self.len % 64;
        if o == 0 {
            self.words.push(v);
        } else {
            let last = self.words.len() - 1;
            self.words[last] |= v << o;
            if o + n > 64 {
                self.words.push(v >> (64 - o));
            }
        }
        self.len += n;
    }

    /// Appends `count` bits from `other` starting at `from`, copying up
    /// to 64 bits per step (word-shift, not bit-by-bit).
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn extend_from(&mut self, other: &BitBuf, from: usize, count: usize) {
        assert!(from + count <= other.len, "source range out of bounds");
        self.words.reserve(words_for(count) + 1);
        let mut done = 0;
        while done < count {
            let n = (count - done).min(64);
            self.push_bits(other.get_bits(from + done, n), n);
            done += n;
        }
    }

    /// The packed little-endian bytes (trailing bits of the last byte are
    /// zero).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(bytes_for(self.len));
        for &w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(bytes_for(self.len));
        out
    }

    /// XORs `other` into `self`, word by word.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_with(&mut self, other: &BitBuf) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Number of set bits (word-level popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits via `trailing_zeros`, so the
    /// cost scales with the popcount, not the length.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            cur: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Number of bits that differ from `other` (vectorized xor+popcount;
    /// the tail invariant makes padding self-cancelling).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming_distance(&self, other: &BitBuf) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Bit-at-a-time `extend_from` — the pre-word-level reference
    /// implementation, kept for equivalence property tests.
    #[cfg(test)]
    pub(crate) fn extend_from_bitwise(&mut self, other: &BitBuf, from: usize, count: usize) {
        assert!(from + count <= other.len, "source range out of bounds");
        for i in 0..count {
            self.push(other.get(from + i));
        }
    }
}

/// Transposes a 64×64 bit matrix in place: on return, bit `i` of
/// `m[j]` equals bit `j` of the input's `m[i]` (LSB-first columns).
///
/// This is the struct-of-arrays pivot behind the batch BCH kernels: 64
/// codeword words (one per block) become 64 bit-planes (one per bit
/// position), so a whole batch advances with single `u64` ops per bit
/// position. Recursive block swaps (Hacker's Delight §7-3, adapted to
/// the LSB-first column convention), six passes of masked exchanges.
pub fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Iterator over set-bit indices of a [`BitBuf`].
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    cur: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.cur == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.word_idx];
        }
        let tz = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        Some(self.word_idx * 64 + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut b = BitBuf::new();
        for i in 0..20 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 20);
        for i in 0..20 {
            assert_eq!(b.get(i), i % 3 == 0);
        }
        b.set(1, true);
        assert!(b.get(1));
        b.flip(1);
        assert!(!b.get(1));
    }

    #[test]
    fn zeroed_and_from_bytes() {
        let z = BitBuf::zeroed(17);
        assert_eq!(z.len(), 17);
        assert!((0..17).all(|i| !z.get(i)));
        let f = BitBuf::from_bytes(&[0b0000_0101, 0xFF], 10);
        assert!(f.get(0));
        assert!(!f.get(1));
        assert!(f.get(2));
        assert!(f.get(8));
    }

    #[test]
    fn from_bytes_masks_bits_past_len() {
        // Bits 10..16 of the source are set but past `len`: they must not
        // leak into equality or popcounts.
        let dirty = BitBuf::from_bytes(&[0x00, 0xFF], 10);
        let mut clean = BitBuf::zeroed(10);
        clean.set(8, true);
        clean.set(9, true);
        assert_eq!(dirty, clean);
        assert_eq!(dirty.count_ones(), 2);
    }

    #[test]
    fn from_words_and_words_round_trip() {
        let b = BitBuf::from_words(vec![0xDEAD_BEEF_0123_4567, 0xFFFF], 70);
        assert_eq!(b.words().len(), 2);
        assert_eq!(b.words()[0], 0xDEAD_BEEF_0123_4567);
        assert_eq!(b.words()[1], 0x3F, "tail masked to 6 bits");
        assert_eq!(BitBuf::from_words(b.words().to_vec(), 70), b);
    }

    #[test]
    fn get_set_bits_cross_word_boundaries() {
        let mut b = BitBuf::zeroed(200);
        b.set_bits(60, 10, 0b10_1101_0111);
        assert_eq!(b.get_bits(60, 10), 0b10_1101_0111);
        for (i, expect) in [(60, true), (61, true), (62, true), (63, false)] {
            assert_eq!(b.get(i), expect, "bit {i}");
        }
        b.set_bits(64, 64, u64::MAX);
        assert_eq!(b.get_bits(64, 64), u64::MAX);
        assert_eq!(b.get_bits(100, 1), 1);
        b.set_bits(60, 10, 0);
        // Bits 60..70 are now clear and 70..128 still set, so the 64-bit
        // window at 32 sees ones only at result positions 38..=63.
        assert_eq!(b.get_bits(32, 64), u64::MAX << 38);
    }

    #[test]
    fn extend_from_copies_ranges() {
        let mut a = BitBuf::new();
        for i in 0..16 {
            a.push(i % 2 == 0);
        }
        let mut b = BitBuf::new();
        b.extend_from(&a, 4, 8);
        assert_eq!(b.len(), 8);
        for i in 0..8 {
            assert_eq!(b.get(i), (i + 4) % 2 == 0);
        }
    }

    #[test]
    fn extend_from_matches_bitwise_reference() {
        // Word-shift copies against the bit-at-a-time reference over
        // random offsets, lengths and starting alignments.
        vapp_check::check("extend_from_matches_bitwise_reference", 128, |rng| {
            use vapp_check::RngExt;
            let src_bits = rng.random_range(1..400usize);
            let mut src = BitBuf::zeroed(src_bits);
            for i in 0..src_bits {
                if rng.random::<bool>() {
                    src.set(i, true);
                }
            }
            let from = rng.random_range(0..src_bits);
            let count = rng.random_range(0..=(src_bits - from));
            let pre = rng.random_range(0..100usize);
            let mut fast = BitBuf::zeroed(pre);
            let mut slow = fast.clone();
            fast.extend_from(&src, from, count);
            slow.extend_from_bitwise(&src, from, count);
            assert_eq!(fast, slow, "pre={pre} from={from} count={count}");
        });
    }

    #[test]
    fn to_bytes_matches_bit_layout() {
        let mut b = BitBuf::zeroed(19);
        b.set(0, true);
        b.set(9, true);
        b.set(18, true);
        assert_eq!(b.to_bytes(), vec![0b0000_0001, 0b0000_0010, 0b0000_0100]);
    }

    #[test]
    fn xor_count_and_iter_ones() {
        let mut a = BitBuf::zeroed(130);
        let mut b = BitBuf::zeroed(130);
        a.set(0, true);
        a.set(64, true);
        a.set(129, true);
        b.set(64, true);
        assert_eq!(a.count_ones(), 3);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        a.xor_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
        assert_eq!(BitBuf::zeroed(70).iter_ones().next(), None);
    }

    #[test]
    fn hamming_distance_ignores_padding() {
        let mut a = BitBuf::zeroed(9);
        let mut b = BitBuf::zeroed(9);
        a.set(8, true);
        assert_eq!(a.hamming_distance(&b), 1);
        b.set(8, true);
        assert_eq!(a.hamming_distance(&b), 0);
        a.set(0, true);
        assert_eq!(a.hamming_distance(&b), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitBuf::zeroed(4).get(4);
    }

    #[test]
    fn transpose64_matches_naive_and_is_involution() {
        vapp_check::check("transpose64_matches_naive", 32, |rng| {
            use vapp_check::RngExt;
            let mut m = [0u64; 64];
            for w in m.iter_mut() {
                *w = rng.random::<u64>();
            }
            let original = m;
            transpose64(&mut m);
            // Indexing both matrices by (i, j) is the statement of the
            // transpose property itself.
            #[allow(clippy::needless_range_loop)]
            for i in 0..64 {
                for j in 0..64 {
                    assert_eq!(
                        (m[j] >> i) & 1,
                        (original[i] >> j) & 1,
                        "bit ({i},{j}) misplaced"
                    );
                }
            }
            transpose64(&mut m);
            assert_eq!(m, original, "transpose must be an involution");
        });
    }
}
