//! Bit-addressed helpers over byte buffers (LSB-first within a byte).
//!
//! The storage stack moves data around as packed bit vectors: BCH
//! codewords are not byte multiples (512 data + 10·X parity bits), and MLC
//! cells hold three bits each.

/// Reads bit `i` (LSB-first within each byte).
#[inline]
pub fn get_bit(bytes: &[u8], i: usize) -> bool {
    (bytes[i / 8] >> (i % 8)) & 1 == 1
}

/// Sets bit `i` to `v` (LSB-first within each byte).
#[inline]
pub fn set_bit(bytes: &mut [u8], i: usize, v: bool) {
    if v {
        bytes[i / 8] |= 1 << (i % 8);
    } else {
        bytes[i / 8] &= !(1 << (i % 8));
    }
}

/// Flips bit `i`.
#[inline]
pub fn flip_bit(bytes: &mut [u8], i: usize) {
    bytes[i / 8] ^= 1 << (i % 8);
}

/// Number of bytes needed for `bits` bits.
#[inline]
pub fn bytes_for(bits: usize) -> usize {
    bits.div_ceil(8)
}

/// A growable, bit-addressed buffer.
///
/// # Example
///
/// ```
/// use vapp_storage::bits::BitBuf;
///
/// let mut b = BitBuf::new();
/// b.push(true);
/// b.push(false);
/// b.push(true);
/// assert_eq!(b.len(), 3);
/// assert!(b.get(0));
/// assert!(!b.get(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BitBuf {
    bytes: Vec<u8>,
    len: usize,
}

impl BitBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a zeroed buffer of `bits` bits.
    pub fn zeroed(bits: usize) -> Self {
        BitBuf {
            bytes: vec![0u8; bytes_for(bits)],
            len: bits,
        }
    }

    /// Builds a buffer from the low `bits` bits of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `bits`.
    pub fn from_bytes(bytes: &[u8], bits: usize) -> Self {
        assert!(bytes.len() * 8 >= bits, "byte buffer too short");
        BitBuf {
            bytes: bytes[..bytes_for(bits)].to_vec(),
            len: bits,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        get_bit(&self.bytes, i)
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index out of range");
        set_bit(&mut self.bytes, i, v);
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        flip_bit(&mut self.bytes, i);
    }

    /// Appends one bit.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        self.len += 1;
        let i = self.len - 1;
        set_bit(&mut self.bytes, i, v);
    }

    /// Appends `count` bits from `other` starting at `from`.
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn extend_from(&mut self, other: &BitBuf, from: usize, count: usize) {
        assert!(from + count <= other.len, "source range out of bounds");
        for i in 0..count {
            self.push(other.get(from + i));
        }
    }

    /// The packed bytes (trailing bits of the last byte are zero).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of bits that differ from `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming_distance(&self, other: &BitBuf) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut d = 0;
        for (i, (a, b)) in self.bytes.iter().zip(&other.bytes).enumerate() {
            let mut x = a ^ b;
            // Mask out padding bits in the final byte.
            if i == self.bytes.len() - 1 && !self.len.is_multiple_of(8) {
                x &= (1u8 << (self.len % 8)) - 1;
            }
            d += x.count_ones() as usize;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut b = BitBuf::new();
        for i in 0..20 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 20);
        for i in 0..20 {
            assert_eq!(b.get(i), i % 3 == 0);
        }
        b.set(1, true);
        assert!(b.get(1));
        b.flip(1);
        assert!(!b.get(1));
    }

    #[test]
    fn zeroed_and_from_bytes() {
        let z = BitBuf::zeroed(17);
        assert_eq!(z.len(), 17);
        assert!((0..17).all(|i| !z.get(i)));
        let f = BitBuf::from_bytes(&[0b0000_0101, 0xFF], 10);
        assert!(f.get(0));
        assert!(!f.get(1));
        assert!(f.get(2));
        assert!(f.get(8));
    }

    #[test]
    fn extend_from_copies_ranges() {
        let mut a = BitBuf::new();
        for i in 0..16 {
            a.push(i % 2 == 0);
        }
        let mut b = BitBuf::new();
        b.extend_from(&a, 4, 8);
        assert_eq!(b.len(), 8);
        for i in 0..8 {
            assert_eq!(b.get(i), (i + 4) % 2 == 0);
        }
    }

    #[test]
    fn hamming_distance_ignores_padding() {
        let mut a = BitBuf::zeroed(9);
        let mut b = BitBuf::zeroed(9);
        a.set(8, true);
        assert_eq!(a.hamming_distance(&b), 1);
        b.set(8, true);
        assert_eq!(a.hamming_distance(&b), 0);
        a.set(0, true);
        assert_eq!(a.hamming_distance(&b), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitBuf::zeroed(4).get(4);
    }
}
