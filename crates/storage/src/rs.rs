//! Reed–Solomon codes over GF(2^10), built on the same [`crate::gf`]
//! arithmetic tables as the BCH decoder.
//!
//! RS is the natural protection for *bursty* channels: a whole lost page
//! or a blocky transcode artifact damages many adjacent bits, but after
//! symbol interleaving each codeword sees only a few 10-bit symbols of
//! the burst — and RS corrects symbols, not bits, so a fully garbled
//! symbol costs the same budget as a single flipped bit inside it. With
//! known loss locations (page-granular erasure channels) the code
//! corrects twice as much: `2·errors + erasures ≤ parity`.
//!
//! Layout convention: a codeword is the coefficient vector `c[0..n]` of
//! `c(x) = d(x)·x^p + (d(x)·x^p mod g(x))` — parity in positions
//! `0..p`, data in positions `p..n` (`c[p + i]` = data symbol `i`).
//! Roots of the generator are `α^0 .. α^{p-1}`, which gives the
//! cleanest Forney magnitude formula
//! (`e_k = X_k · Ω(X_k⁻¹) / Ψ'(X_k⁻¹)`).
//!
//! Like the BCH path, pipeline callers feed the decoder bare *error
//! patterns*: syndromes are linear and vanish on codewords, so
//! `synd(cw + e) = synd(e)` and outcomes depend only on the pattern.

use crate::bch::DecodeOutcome;
use crate::gf::{Gf1024, GF_ORDER};

/// Symbol width in bits (GF(2^10)).
pub const SYM_BITS: usize = 10;

/// Data symbols per full-length codeword in the storage profile:
/// 102 symbols = 1020 bits, chosen so the RS ladder's overhead per
/// protection strength `t` (`2t/102 = t/51`) tracks the BCH ladder's
/// (`10t/512 = t/51.2`) and the importance-partitioned assignment
/// transfers across substrates without re-tuning.
pub const RS_DATA_SYMS: usize = 102;

/// A systematic Reed–Solomon code over GF(2^10).
#[derive(Clone, Debug)]
pub struct Rs {
    data_syms: usize,
    parity: usize,
    /// Generator `g(x) = Π_{i=0}^{p-1} (x + α^i)`, low `p` coefficients
    /// (monic leading term implicit).
    gen: Vec<u16>,
}

impl Rs {
    /// Builds an `(data_syms + parity, data_syms)` code.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension or a codeword longer than the field
    /// allows (`n ≤ 1023`).
    pub fn new(data_syms: usize, parity: usize) -> Self {
        assert!(data_syms > 0 && parity > 0, "degenerate RS dimensions");
        assert!(
            data_syms + parity <= GF_ORDER,
            "RS codeword exceeds field size"
        );
        let gf = Gf1024::get();
        // Multiply out g(x) = Π (x + α^i) iteratively.
        let mut gen = vec![0u16; parity + 1];
        gen[0] = 1;
        for i in 0..parity {
            let root = gf.alpha_pow(i);
            // (current g) · (x + root): shift up once, add root · g.
            for j in (1..=i + 1).rev() {
                gen[j] = gen[j - 1] ^ gf.mul(gen[j], root);
            }
            gen[0] = gf.mul(gen[0], root);
        }
        debug_assert_eq!(gen[parity], 1, "generator must be monic");
        gen.truncate(parity);
        Rs {
            data_syms,
            parity,
            gen,
        }
    }

    /// The storage-profile code for BCH-equivalent strength `t`
    /// (102 data symbols, `2t` parity symbols), from a process-wide
    /// cache. Corrects `t` symbol errors, or up to `2t` erasures.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or the ladder entry is degenerate.
    pub fn cached(t: usize) -> &'static Rs {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<usize, &'static Rs>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = match cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.entry(t)
            .or_insert_with(|| Box::leak(Box::new(Rs::new(RS_DATA_SYMS, 2 * t))))
    }

    /// Data symbols per codeword.
    pub fn data_syms(&self) -> usize {
        self.data_syms
    }

    /// Parity symbols per codeword.
    pub fn parity_syms(&self) -> usize {
        self.parity
    }

    /// Total symbols per codeword.
    pub fn codeword_syms(&self) -> usize {
        self.data_syms + self.parity
    }

    /// Storage overhead (parity / data), the RS analogue of
    /// [`crate::bch::Bch::overhead`].
    pub fn overhead(&self) -> f64 {
        self.parity as f64 / self.data_syms as f64
    }

    /// Systematic encode: returns the full codeword `parity ++ data`.
    /// Symbols must fit the field (`< 1024`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != data_syms`.
    pub fn encode(&self, data: &[u16]) -> Vec<u16> {
        assert_eq!(data.len(), self.data_syms, "wrong data length");
        let gf = Gf1024::get();
        let p = self.parity;
        let mut cw = vec![0u16; p + self.data_syms];
        cw[p..].copy_from_slice(data);
        // Synthetic division of d(x)·x^p by g(x), high coefficient first.
        let (rem, data) = cw.split_at_mut(p);
        for i in (0..data.len()).rev() {
            let coef = data[i] ^ rem[p - 1];
            for j in (1..p).rev() {
                rem[j] = rem[j - 1] ^ gf.mul(coef, self.gen[j]);
            }
            rem[0] = gf.mul(coef, self.gen[0]);
        }
        cw
    }

    /// Syndromes `S_i = c(α^i)` for `i = 0..parity`. All-zero iff `cw`
    /// is a codeword (or an undetectable error pattern).
    pub fn syndromes(&self, cw: &[u16]) -> Vec<u16> {
        let gf = Gf1024::get();
        (0..self.parity)
            .map(|i| {
                // Horner from the top coefficient down.
                let mut acc = 0u16;
                for &c in cw.iter().rev() {
                    acc = gf.mul_alpha_log(acc, i) ^ c;
                }
                acc
            })
            .collect()
    }

    /// Decodes `cw` in place, treating `erasures` (position indices into
    /// the codeword, duplicates ignored) as known-location losses.
    /// Corrects any combination with `2·errors + erasures ≤ parity`.
    ///
    /// Returns [`DecodeOutcome::Clean`] when the syndromes already
    /// vanish, `Corrected(e)` (total corrected symbols, erasures
    /// included) on success, and `Uncorrectable` — with `cw` unmodified
    /// — when the damage exceeds the code's radius.
    pub fn decode(&self, cw: &mut [u16], erasures: &[usize]) -> DecodeOutcome {
        assert_eq!(cw.len(), self.codeword_syms(), "wrong codeword length");
        let gf = Gf1024::get();
        let p = self.parity;
        let synd = self.syndromes(cw);
        if synd.iter().all(|&s| s == 0) {
            return DecodeOutcome::Clean;
        }
        // Deduplicated erasure locators X_e = α^pos.
        let mut seen = vec![false; cw.len()];
        let mut xs: Vec<u16> = Vec::with_capacity(erasures.len());
        for &e in erasures {
            assert!(e < cw.len(), "erasure position out of range");
            if !seen[e] {
                seen[e] = true;
                xs.push(gf.alpha_pow(e));
            }
        }
        let n_eras = xs.len();
        if n_eras > p {
            return DecodeOutcome::Uncorrectable;
        }
        // Erasure locator Γ(x) = Π (1 + X_e x).
        let mut gamma = vec![0u16; p + 1];
        gamma[0] = 1;
        for (i, &x) in xs.iter().enumerate() {
            for j in (1..=i + 1).rev() {
                gamma[j] ^= gf.mul(gamma[j - 1], x);
            }
        }
        // Forney syndromes T = S·Γ mod x^p expose the unknown errors.
        let t_synd = poly_mul_mod(&synd, &gamma, p);
        // Berlekamp–Massey on T_{E}..T_{p-1} finds the error locator Λ.
        let lambda = berlekamp_massey(&t_synd[n_eras..]);
        let n_errs = lambda.len() - 1;
        if 2 * n_errs + n_eras > p {
            return DecodeOutcome::Uncorrectable;
        }
        // Full locator Ψ = Λ·Γ and evaluator Ω = S·Ψ mod x^p.
        let psi = poly_mul_mod(&lambda, &gamma, p + 1);
        let omega = poly_mul_mod(&synd, &psi, p);
        // Chien search over codeword positions; Ψ must split completely
        // with exactly deg Ψ roots or the locator is bogus.
        let deg_psi = psi
            .iter()
            .rposition(|&c| c != 0)
            .expect("psi has unit constant term");
        let mut fixes: Vec<(usize, u16)> = Vec::with_capacity(deg_psi);
        for pos in 0..cw.len() {
            // x = X_pos⁻¹ = α^{-pos}
            let log_x = (GF_ORDER - pos % GF_ORDER) % GF_ORDER;
            if poly_eval_log(gf, &psi, log_x) != 0 {
                continue;
            }
            // Forney: e = X · Ω(x) / Ψ'(x); in char 2, Ψ'(x) keeps the
            // odd-degree terms of Ψ only.
            let num = poly_eval_log(gf, &omega, log_x);
            let den = poly_eval_deriv_log(gf, &psi, log_x);
            if den == 0 {
                return DecodeOutcome::Uncorrectable;
            }
            let e = gf.mul(gf.alpha_pow(pos), gf.mul(num, gf.inv(den)));
            if e != 0 {
                fixes.push((pos, e));
            }
        }
        // Every locator root must land on a codeword position. A root
        // count short of deg Ψ means roots outside [0, n) or repeated
        // factors — a bogus locator from damage past the radius. (Roots
        // with zero magnitude — erased symbols whose garbage happened to
        // match — still count as roots; they are found above with e = 0.)
        let mut roots = 0usize;
        for pos in 0..cw.len() {
            let log_x = (GF_ORDER - pos % GF_ORDER) % GF_ORDER;
            if poly_eval_log(gf, &psi, log_x) == 0 {
                roots += 1;
            }
        }
        if roots != deg_psi {
            return DecodeOutcome::Uncorrectable;
        }
        for &(pos, e) in &fixes {
            cw[pos] ^= e;
        }
        // Defensive re-check: corrected word must be a codeword.
        if self.syndromes(cw).iter().any(|&s| s != 0) {
            for &(pos, e) in &fixes {
                cw[pos] ^= e;
            }
            return DecodeOutcome::Uncorrectable;
        }
        DecodeOutcome::Corrected(fixes.len())
    }
}

/// `a·b mod x^k` (coefficients low-to-high, truncated to `k` terms).
fn poly_mul_mod(a: &[u16], b: &[u16], k: usize) -> Vec<u16> {
    let gf = Gf1024::get();
    let mut out = vec![0u16; k];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 || i >= k {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if i + j >= k {
                break;
            }
            if bj != 0 {
                out[i + j] ^= gf.mul(ai, bj);
            }
        }
    }
    out
}

/// Evaluates `p(α^log_x)` with the point already in log form.
fn poly_eval_log(gf: &Gf1024, p: &[u16], log_x: usize) -> u16 {
    let mut acc = 0u16;
    for &c in p.iter().rev() {
        acc = gf.mul_alpha_log(acc, log_x) ^ c;
    }
    acc
}

/// Evaluates the formal derivative `p'(α^log_x)`. In characteristic 2
/// the derivative keeps exactly the odd-degree coefficients:
/// `p'(x) = Σ_{j odd} p_j x^{j-1}`.
fn poly_eval_deriv_log(gf: &Gf1024, p: &[u16], log_x: usize) -> u16 {
    let mut acc = 0u16;
    let log_x2 = (2 * log_x) % GF_ORDER;
    for j in (1..p.len()).rev() {
        if j % 2 == 1 {
            acc = gf.mul_alpha_log(acc, log_x2) ^ p[j];
        }
    }
    // acc now holds Σ p_j x^{j-1} over odd j, factored as a polynomial
    // in x²; no further x factor is needed because consecutive odd
    // degrees differ by 2 and the lowest odd degree contributes x^0.
    acc
}

/// Standard Berlekamp–Massey over GF(2^10): minimal LFSR `Λ` (constant
/// term 1, low-to-high) generating the sequence `s`.
fn berlekamp_massey(s: &[u16]) -> Vec<u16> {
    let gf = Gf1024::get();
    let mut lambda = vec![0u16; s.len() + 1];
    let mut prev = vec![0u16; s.len() + 1];
    lambda[0] = 1;
    prev[0] = 1;
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = 1u16;
    for r in 0..s.len() {
        let mut delta = s[r];
        for j in 1..=l {
            delta ^= gf.mul(lambda[j], s[r - j]);
        }
        if delta == 0 {
            m += 1;
            continue;
        }
        let coef = gf.mul(delta, gf.inv(b));
        if 2 * l <= r {
            let snapshot = lambda.clone();
            for j in 0..lambda.len() - m {
                lambda[j + m] ^= gf.mul(coef, prev[j]);
            }
            prev = snapshot;
            l = r + 1 - l;
            b = delta;
            m = 1;
        } else {
            for j in 0..lambda.len() - m {
                lambda[j + m] ^= gf.mul(coef, prev[j]);
            }
            m += 1;
        }
    }
    lambda.truncate(l + 1);
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapp_rand::rngs::StdRng;
    use vapp_rand::{RngExt, SeedableRng};

    fn random_data(rng: &mut StdRng, k: usize) -> Vec<u16> {
        (0..k).map(|_| (rng.random::<u16>()) & 0x3FF).collect()
    }

    #[test]
    fn clean_roundtrip() {
        let code = Rs::new(16, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_data(&mut rng, 16);
        let mut cw = code.encode(&data);
        assert!(code.syndromes(&cw).iter().all(|&s| s == 0));
        assert_eq!(code.decode(&mut cw, &[]), DecodeOutcome::Clean);
        assert_eq!(&cw[8..], &data[..]);
    }

    #[test]
    fn corrects_t_symbol_errors() {
        let code = Rs::cached(6); // parity 12, corrects 6 errors
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let data = random_data(&mut rng, RS_DATA_SYMS);
            let clean = code.encode(&data);
            let mut cw = clean.clone();
            for pos in vapp_sim::pick_k_positions(&[0..cw.len() as u64], 6, &mut rng) {
                cw[pos as usize] ^= 1 + (rng.random::<u16>() & 0x3FE);
            }
            let out = code.decode(&mut cw, &[]);
            assert!(matches!(out, DecodeOutcome::Corrected(_)), "{out:?}");
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn corrects_2t_erasures() {
        let code = Rs::cached(4); // parity 8, corrects 8 erasures
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let data = random_data(&mut rng, RS_DATA_SYMS);
            let clean = code.encode(&data);
            let mut cw = clean.clone();
            let eras: Vec<usize> = vapp_sim::pick_k_positions(&[0..cw.len() as u64], 8, &mut rng)
                .into_iter()
                .map(|p| p as usize)
                .collect();
            for &e in &eras {
                cw[e] = rng.random::<u16>() & 0x3FF; // garbage, may equal original
            }
            let out = code.decode(&mut cw, &eras);
            assert!(
                matches!(out, DecodeOutcome::Corrected(_) | DecodeOutcome::Clean),
                "{out:?}"
            );
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn pattern_decoding_matches_content_decoding() {
        // Syndrome linearity: decoding the bare error pattern must reach
        // the same outcome as decoding content + pattern.
        let code = Rs::cached(3);
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_data(&mut rng, RS_DATA_SYMS);
        let mut content = code.encode(&data);
        let mut pattern = vec![0u16; code.codeword_syms()];
        for pos in vapp_sim::pick_k_positions(&[0..content.len() as u64], 3, &mut rng) {
            let e = 1 + (rng.random::<u16>() & 0x3FE);
            pattern[pos as usize] = e;
            content[pos as usize] ^= e;
        }
        let out_content = code.decode(&mut content, &[]);
        let out_pattern = code.decode(&mut pattern, &[]);
        assert_eq!(out_content, out_pattern);
        assert!(pattern.iter().all(|&s| s == 0), "pattern corrects to zero");
    }

    #[test]
    fn rejects_damage_past_the_radius() {
        let code = Rs::cached(2); // parity 4
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_data(&mut rng, RS_DATA_SYMS);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        // 6 errors >> capacity 2: must not silently "correct".
        for pos in vapp_sim::pick_k_positions(&[0..cw.len() as u64], 6, &mut rng) {
            cw[pos as usize] ^= 1 + (rng.random::<u16>() & 0x3FE);
        }
        let before = cw.clone();
        let out = code.decode(&mut cw, &[]);
        if out == DecodeOutcome::Uncorrectable {
            assert_eq!(cw, before, "uncorrectable must leave the word alone");
        } else {
            // Miscorrection is possible but must at least yield a valid
            // codeword (checked internally); it must not equal clean by
            // construction of 6 distinct nonzero errors.
            assert!(code.syndromes(&cw).iter().all(|&s| s == 0));
        }
    }
}
