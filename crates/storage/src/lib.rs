//! The approximate storage substrate: multi-level-cell PCM plus BCH
//! error correction (papers §2.2 and §6.2).
//!
//! * [`mlc`] — the 8-level PCM cell model: Gaussian write/read noise,
//!   log-time resistance drift, drift-biased level placement and
//!   calibration to the paper's raw bit error rate of 1e-3 at a 3-month
//!   scrub interval,
//! * [`bch`] — real BCH-X codes over GF(2^10) on 512-bit blocks
//!   (10·X parity bits, matching the paper's Fig. 8 overheads exactly),
//! * [`rs`] — Reed–Solomon over the same GF(2^10) with erasure decoding
//!   (bursty channels know *where* a page died),
//! * [`interleave`] — row/column block interleaver spreading bursts
//!   across codewords,
//! * [`channel`] — the [`channel::Substrate`] trait making the error
//!   channel pluggable: MLC PCM (i.i.d.), burst page-erasure, and
//!   data-stored-as-video,
//! * [`uber`] — binomial-tail math for uncorrectable error rates,
//! * [`bank`] — a fixed-capacity block bank (one shard of the archive
//!   layer): pristine writes, substrate-decoded reads,
//! * [`mod@array`] — a physical cell array (bits ↔ Gray-coded levels) that
//!   validates the analytic rates against stored data,
//! * [`density`] — cells-per-pixel accounting for Fig. 11,
//! * [`gf`], [`bits`] — the underlying field arithmetic and bit buffers.
//!
//! # Example
//!
//! ```
//! use vapp_storage::bch::{Bch, DecodeOutcome, DATA_BITS};
//! use vapp_storage::bits::BitBuf;
//! use vapp_storage::uber::block_failure_rate;
//!
//! let code = Bch::new(6);
//! assert_eq!(code.parity_bits(), 60); // 11.7% on a 512-bit block
//! let rate = block_failure_rate(&code, 1e-3);
//! assert!(rate < 1e-5 && rate > 1e-8); // Fig. 8: ~1e-6
//!
//! let mut cw = code.encode(&BitBuf::zeroed(DATA_BITS));
//! cw.flip(17);
//! assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected(1));
//! ```

pub mod array;
pub mod bank;
pub mod batch;
pub mod bch;
pub mod bits;
pub mod channel;
pub mod density;
pub mod gf;
pub mod interleave;
pub mod mlc;
pub mod rs;
pub mod uber;

pub use array::CellArray;
pub use bank::{Bank, BLOCK_BYTES};
pub use bch::{Bch, DecodeOutcome, DATA_BITS};
pub use bits::BitBuf;
pub use channel::{
    burst_erasure, data_in_video, mlc_pcm, slc, BurstConfig, BurstErasure, CorruptTally,
    DataInVideo, MlcPcm, Substrate, VideoChannelConfig,
};
pub use interleave::Interleaver;
pub use mlc::{MlcConfig, MlcSubstrate, SlcSubstrate, DEFAULT_SCRUB_DAYS, TARGET_RAW_BER};
pub use rs::Rs;
