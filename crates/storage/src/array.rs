//! A physical cell array: bits mapped onto Gray-coded MLC cells.
//!
//! The pipeline's fast path treats the substrate as a raw bit error rate;
//! this module closes the loop to the *physical* model: write a bit
//! stream into 3-bit cells, age them (resistance drift), read them back
//! through the threshold detectors, and observe the resulting flips.
//! Used to validate that the analytic `raw_ber` matches what stored data
//! actually experiences, and by the substrate-report experiment.

use crate::bits::BitBuf;
use crate::mlc::{gray, MlcSubstrate};
use vapp_rand::rngs::StdRng;

/// A written cell array holding one bit stream.
#[derive(Clone, Debug)]
pub struct CellArray {
    /// Written (target) level per cell.
    levels: Vec<u8>,
    bits: usize,
    bits_per_cell: u32,
}

impl CellArray {
    /// Writes a bit stream into cells on the given substrate: consecutive
    /// groups of `bits_per_cell` bits form one Gray-coded level.
    pub fn write(substrate: &MlcSubstrate, data: &BitBuf) -> Self {
        let bpc = substrate.bits_per_cell();
        let cells = data.len().div_ceil(bpc as usize);
        let mut levels = Vec::with_capacity(cells);
        for c in 0..cells {
            let i = c * bpc as usize;
            let n = (bpc as usize).min(data.len() - i);
            let g = data.get_bits(i, n) as u8;
            levels.push(substrate.gray_inverse(g));
        }
        CellArray {
            levels,
            bits: data.len(),
            bits_per_cell: bpc,
        }
    }

    /// Number of cells used.
    pub fn cell_count(&self) -> usize {
        self.levels.len()
    }

    /// Reads the array back after `t_days` of drift, through the
    /// substrate's noisy detectors (Monte Carlo).
    pub fn read(&self, substrate: &MlcSubstrate, t_days: f64, rng: &mut StdRng) -> BitBuf {
        assert_eq!(
            substrate.bits_per_cell(),
            self.bits_per_cell,
            "substrate geometry changed between write and read"
        );
        // Batched substrate access: one `read_levels` sweep over the
        // whole array (identical RNG stream to per-cell `write_read`).
        let mut read_back = Vec::new();
        substrate.read_levels(&self.levels, t_days, rng, &mut read_back);
        let mut out = BitBuf::zeroed(self.bits);
        for (c, &read_level) in read_back.iter().enumerate() {
            let g = gray(read_level);
            let i = c * self.bits_per_cell as usize;
            let n = (self.bits_per_cell as usize).min(self.bits - i);
            // A tail cell keeps only its in-range bits (set_bits masks).
            out.set_bits(i, n, g as u64);
        }
        out
    }

    /// Scrubbing (paper §2.2/§6.2): read, correct externally, rewrite.
    /// Here modelled as a fresh write of the (externally corrected) data —
    /// drift restarts from zero.
    pub fn scrub(&mut self, substrate: &MlcSubstrate, corrected: &BitBuf) {
        *self = CellArray::write(substrate, corrected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlc::{MlcConfig, DEFAULT_SCRUB_DAYS, TARGET_RAW_BER};
    use vapp_rand::SeedableRng;

    fn pattern(bits: usize) -> BitBuf {
        let mut b = BitBuf::zeroed(bits);
        let mut s = 0x1234_5678_9abc_def0u64;
        for i in 0..bits {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.set(i, (s >> 61) & 1 == 1);
        }
        b
    }

    #[test]
    fn noiseless_roundtrip_is_exact() {
        let substrate = MlcSubstrate::new(MlcConfig {
            sigma: 1e-6,
            drift_nu: 0.0,
            ..Default::default()
        });
        let data = pattern(1000);
        let array = CellArray::write(&substrate, &data);
        assert_eq!(array.cell_count(), 1000usize.div_ceil(3));
        let mut rng = StdRng::seed_from_u64(1);
        let read = array.read(&substrate, DEFAULT_SCRUB_DAYS, &mut rng);
        assert_eq!(read, data);
    }

    #[test]
    fn physical_ber_matches_analytic_model() {
        // The headline check: data stored on the tuned substrate really
        // sees ~1e-3 errors at the scrub interval. With 300k bits the
        // expected flip count is ~300; allow 3x slack either way.
        let substrate = MlcSubstrate::tuned_for_ber(MlcConfig::default(), TARGET_RAW_BER);
        let data = pattern(300_000);
        let array = CellArray::write(&substrate, &data);
        let mut rng = StdRng::seed_from_u64(2);
        let read = array.read(&substrate, DEFAULT_SCRUB_DAYS, &mut rng);
        let flips = read.hamming_distance(&data);
        assert!(
            (100..=900).contains(&flips),
            "expected ~300 flips at 1e-3, got {flips}"
        );
    }

    #[test]
    fn errors_grow_with_storage_time() {
        // Use the unbiased substrate: its thresholds ignore drift, so
        // error counts grow monotonically with time (the biased substrate
        // deliberately balances start-of-life against scrub-time).
        let substrate = MlcSubstrate::tuned_for_ber(
            MlcConfig {
                biased: false,
                ..Default::default()
            },
            1e-2,
        );
        let data = pattern(100_000);
        let array = CellArray::write(&substrate, &data);
        let mut rng = StdRng::seed_from_u64(3);
        let early = array
            .read(&substrate, 1.0, &mut rng)
            .hamming_distance(&data);
        let late = array
            .read(&substrate, 10.0 * DEFAULT_SCRUB_DAYS, &mut rng)
            .hamming_distance(&data);
        assert!(
            late > early,
            "missed scrub must hurt: {early} early vs {late} late"
        );
    }

    #[test]
    fn scrub_resets_drift() {
        let substrate = MlcSubstrate::tuned_for_ber(
            MlcConfig {
                biased: false,
                ..Default::default()
            },
            1e-2,
        );
        let data = pattern(100_000);
        let mut array = CellArray::write(&substrate, &data);
        array.scrub(&substrate, &data);
        let mut rng = StdRng::seed_from_u64(4);
        let after = array
            .read(&substrate, 1.0, &mut rng)
            .hamming_distance(&data);
        // Fresh write at t=1 day: far below the scrub-time error count.
        let at_scrub = array
            .read(&substrate, DEFAULT_SCRUB_DAYS, &mut rng)
            .hamming_distance(&data);
        assert!(after < at_scrub);
    }

    #[test]
    fn gray_inverse_lut_matches_search() {
        let substrate = MlcSubstrate::new(MlcConfig::default());
        let levels = substrate.config().levels;
        for g in 0..levels {
            // The retired linear-search definition, as the oracle.
            let searched = (0..levels).find(|&i| gray(i) == g).unwrap();
            assert_eq!(substrate.gray_inverse(g), searched);
        }
    }
}
